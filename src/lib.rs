//! # fair-submod
//!
//! **Balancing utility and fairness in submodular maximization** — a Rust
//! implementation of the BSM framework of Wang, Li, Bonchi & Wang
//! (EDBT 2024, arXiv:2211.00980), complete with the three application
//! substrates of the paper's evaluation (maximum coverage, influence
//! maximization, facility location), exact solvers, synthetic dataset
//! generators, and an experiment harness regenerating every table and
//! figure.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable paths. Depend on the individual crates for narrower builds.
//!
//! ## The problem
//!
//! Given items `V`, users `U` split into demographic groups, and
//! monotone submodular per-user utilities, **BSM** asks for a size-`k`
//! set maximizing the average utility `f(S)` subject to the maximin
//! group fairness constraint `g(S) ≥ τ·OPT_g`. BSM is inapproximable
//! within any constant factor, so the library ships the paper's two
//! instance-dependent schemes —
//! [`bsm_tsgreedy`](core::algorithms::tsgreedy::bsm_tsgreedy) and
//! [`bsm_saturate`](core::algorithms::bsm_saturate::bsm_saturate) —
//! plus exact solvers for small instances.
//!
//! ## Quickstart
//!
//! ```
//! use fair_submod::core::prelude::*;
//! use fair_submod::core::toy;
//!
//! let system = toy::figure1(); // the paper's running example
//! let out = bsm_saturate(&system, &BsmSaturateConfig::new(2, 0.8));
//! assert!(out.eval.g > 0.5); // the fairness constraint binds at τ=0.8
//! ```
//!
//! See `examples/` for end-to-end coverage, influence, and facility
//! location workflows.

pub use fair_submod_core as core;
pub use fair_submod_coverage as coverage;
pub use fair_submod_datasets as datasets;
pub use fair_submod_facility as facility;
pub use fair_submod_graphs as graphs;
pub use fair_submod_influence as influence;
pub use fair_submod_lp as lp;

/// Convenient prelude re-exporting the most common types across crates.
pub mod prelude {
    pub use fair_submod_core::prelude::*;
    pub use fair_submod_coverage::{dominating_set_system, CoverageOracle, SetSystem};
    pub use fair_submod_facility::{BenefitMatrix, FacilityOracle, PointSet};
    pub use fair_submod_graphs::{Graph, GraphBuilder, Groups};
    pub use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel, RisOracle};
}
