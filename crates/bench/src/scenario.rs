//! The declarative scenario layer: serde-backed [`ScenarioSpec`]s and
//! the runner that executes them through the solver registry.
//!
//! A spec is a list of jobs — solver *grids* (dataset recipe ×
//! substrate × solver names × `k`/`τ`/`ε` axes × repetitions) and
//! dataset *stats* tables — that fully describes one experiment
//! artifact. The 11 paper artifacts (`fig3`–`fig11`, `table1`,
//! `table2`) are thin JSON files embedded at build time
//! ([`builtin_specs`]); each legacy binary name is an alias that loads
//! its spec and hands it to [`run_spec`], and the `scenarios` binary
//! runs any built-in or on-disk spec. New experiments are new spec
//! files, not new binaries.
//!
//! `--quick` thins every grid axis to at most three points, caps
//! repetitions at one, and drops exact solvers (unless the job pins
//! `keep_exact_in_quick`), mirroring the historical smoke behavior.
//! Every run also writes a JSON report artifact with one entry per
//! cell. Typed rejections are split in two: *capability gaps*
//! (`UnsupportedGroupCount` / `GridTooLarge`) are expected outcomes a
//! spec may deliberately sweep into and do not trip `--strict`, while
//! hard errors (`UnknownSolver` / `InvalidParams`) always do.

use std::path::Path;

use serde::json::{obj, Error as JsonError, Value};
use serde::{FromJson, ToJson};

use fair_submod_core::engine::{ScenarioParams, SolverError, SolverRegistry};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::tables::{format_groups, table1_row, table2_row};
use fair_submod_datasets::{
    adult_like, dblp_like, facebook_like, foursquare_like, pokec_like, rand_fl, rand_mc, seeds,
    AdultSize, City, FlDataset, GraphDataset, PokecAttr,
};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

use crate::args::ExpArgs;
use crate::harness::{run_suite, CellOutcome, GridConfig};
use crate::report::{push_results, Table, RESULT_HEADERS};

/// A named, seed-deterministic dataset recipe.
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetRecipe {
    /// The paper's RAND SBM graph (`c ∈ {2, 4}`).
    RandMc {
        /// Number of groups.
        c: usize,
        /// Number of nodes.
        n: usize,
        /// Offset added to the canonical RAND seed.
        seed_offset: u64,
    },
    /// Facebook stand-in graph (`c ∈ {2, 4}`).
    FacebookLike {
        /// Number of groups.
        c: usize,
    },
    /// DBLP stand-in graph (`c = 5`).
    DblpLike,
    /// Pokec stand-in graph; node count comes from `--pokec-nodes`.
    PokecLike {
        /// Group attribute.
        attr: PokecAttr,
    },
    /// The paper's RAND FL blobs (`c ∈ {2, 3}`).
    RandFl {
        /// Number of groups.
        c: usize,
        /// Offset added to the canonical FL seed.
        seed_offset: u64,
    },
    /// Adult stand-in point set.
    AdultLike {
        /// Size/attribute variant.
        variant: AdultSize,
    },
    /// FourSquare stand-in point set (`c = 1000` singleton groups).
    FoursquareLike {
        /// City variant.
        city: City,
    },
}

/// A materialized dataset: either a graph (MC/IM) or a point set (FL).
pub enum BuiltDataset {
    /// Graph substrate datasets.
    Graph(GraphDataset),
    /// Facility-location datasets.
    Points(FlDataset),
}

impl BuiltDataset {
    /// The dataset's display name.
    pub fn name(&self) -> &str {
        match self {
            BuiltDataset::Graph(d) => &d.name,
            BuiltDataset::Points(d) => &d.name,
        }
    }
}

impl DatasetRecipe {
    /// Whether this recipe produces a graph (MC/IM substrates) rather
    /// than a point set (FL substrate).
    pub fn is_graph(&self) -> bool {
        matches!(
            self,
            DatasetRecipe::RandMc { .. }
                | DatasetRecipe::FacebookLike { .. }
                | DatasetRecipe::DblpLike
                | DatasetRecipe::PokecLike { .. }
        )
    }

    /// The canonical seed of the built instance — RIS sampling and
    /// Monte-Carlo evaluation derive their streams from it.
    pub fn seed(&self) -> u64 {
        match self {
            DatasetRecipe::RandMc { seed_offset, .. } => seeds::RAND + seed_offset,
            DatasetRecipe::FacebookLike { .. } => seeds::FACEBOOK,
            DatasetRecipe::DblpLike => seeds::DBLP,
            DatasetRecipe::PokecLike { .. } => seeds::POKEC,
            DatasetRecipe::RandFl { seed_offset, .. } => seeds::FL + seed_offset,
            DatasetRecipe::AdultLike { variant } => match variant {
                AdultSize::SmallRace => seeds::FL + 2,
                AdultSize::Gender => seeds::FL + 3,
                AdultSize::Race => seeds::FL + 3,
            },
            DatasetRecipe::FoursquareLike { city } => match city {
                City::Nyc => seeds::FL + 4,
                City::Tky => seeds::FL + 5,
            },
        }
    }

    /// Materializes the dataset (`--pokec-nodes` sizes the Pokec
    /// stand-in).
    pub fn build(&self, args: &ExpArgs) -> BuiltDataset {
        match self {
            DatasetRecipe::RandMc { c, n, .. } => BuiltDataset::Graph(rand_mc(*c, *n, self.seed())),
            DatasetRecipe::FacebookLike { c } => {
                BuiltDataset::Graph(facebook_like(*c, self.seed()))
            }
            DatasetRecipe::DblpLike => BuiltDataset::Graph(dblp_like(self.seed())),
            DatasetRecipe::PokecLike { attr } => {
                BuiltDataset::Graph(pokec_like(args.pokec_nodes, *attr, self.seed()))
            }
            DatasetRecipe::RandFl { c, .. } => BuiltDataset::Points(rand_fl(*c, self.seed())),
            DatasetRecipe::AdultLike { variant } => {
                BuiltDataset::Points(adult_like(*variant, self.seed()))
            }
            DatasetRecipe::FoursquareLike { city } => {
                BuiltDataset::Points(foursquare_like(*city, self.seed()))
            }
        }
    }
}

impl ToJson for DatasetRecipe {
    fn to_json(&self) -> Value {
        match self {
            DatasetRecipe::RandMc { c, n, seed_offset } => obj([
                ("kind", Value::Str("rand_mc".into())),
                ("c", Value::Num(*c as f64)),
                ("n", Value::Num(*n as f64)),
                ("seed_offset", Value::Num(*seed_offset as f64)),
            ]),
            DatasetRecipe::FacebookLike { c } => obj([
                ("kind", Value::Str("facebook_like".into())),
                ("c", Value::Num(*c as f64)),
            ]),
            DatasetRecipe::DblpLike => obj([("kind", Value::Str("dblp_like".into()))]),
            DatasetRecipe::PokecLike { attr } => obj([
                ("kind", Value::Str("pokec_like".into())),
                (
                    "attr",
                    Value::Str(
                        match attr {
                            PokecAttr::Gender => "gender",
                            PokecAttr::Age => "age",
                        }
                        .into(),
                    ),
                ),
            ]),
            DatasetRecipe::RandFl { c, seed_offset } => obj([
                ("kind", Value::Str("rand_fl".into())),
                ("c", Value::Num(*c as f64)),
                ("seed_offset", Value::Num(*seed_offset as f64)),
            ]),
            DatasetRecipe::AdultLike { variant } => obj([
                ("kind", Value::Str("adult_like".into())),
                (
                    "variant",
                    Value::Str(
                        match variant {
                            AdultSize::SmallRace => "small_race",
                            AdultSize::Gender => "gender",
                            AdultSize::Race => "race",
                        }
                        .into(),
                    ),
                ),
            ]),
            DatasetRecipe::FoursquareLike { city } => obj([
                ("kind", Value::Str("foursquare_like".into())),
                (
                    "city",
                    Value::Str(
                        match city {
                            City::Nyc => "nyc",
                            City::Tky => "tky",
                        }
                        .into(),
                    ),
                ),
            ]),
        }
    }
}

impl FromJson for DatasetRecipe {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::msg("dataset recipe needs a 'kind'"))?;
        let usize_field = |key: &str| -> Result<usize, JsonError> {
            value
                .get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| JsonError::msg(format!("recipe '{kind}' needs integer '{key}'")))
        };
        let offset = value
            .get("seed_offset")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        match kind {
            "rand_mc" => Ok(DatasetRecipe::RandMc {
                c: usize_field("c")?,
                n: usize_field("n")?,
                seed_offset: offset,
            }),
            "facebook_like" => Ok(DatasetRecipe::FacebookLike {
                c: usize_field("c")?,
            }),
            "dblp_like" => Ok(DatasetRecipe::DblpLike),
            "pokec_like" => {
                let attr = match value.get("attr").and_then(Value::as_str) {
                    Some("gender") => PokecAttr::Gender,
                    Some("age") => PokecAttr::Age,
                    other => {
                        return Err(JsonError::msg(format!(
                            "pokec_like attr must be 'gender' or 'age', got {other:?}"
                        )))
                    }
                };
                Ok(DatasetRecipe::PokecLike { attr })
            }
            "rand_fl" => Ok(DatasetRecipe::RandFl {
                c: usize_field("c")?,
                seed_offset: offset,
            }),
            "adult_like" => {
                let variant = match value.get("variant").and_then(Value::as_str) {
                    Some("small_race") => AdultSize::SmallRace,
                    Some("gender") => AdultSize::Gender,
                    Some("race") => AdultSize::Race,
                    other => {
                        return Err(JsonError::msg(format!(
                            "adult_like variant must be small_race/gender/race, got {other:?}"
                        )))
                    }
                };
                Ok(DatasetRecipe::AdultLike { variant })
            }
            "foursquare_like" => {
                let city = match value.get("city").and_then(Value::as_str) {
                    Some("nyc") => City::Nyc,
                    Some("tky") => City::Tky,
                    other => {
                        return Err(JsonError::msg(format!(
                            "foursquare_like city must be nyc/tky, got {other:?}"
                        )))
                    }
                };
                Ok(DatasetRecipe::FoursquareLike { city })
            }
            other => Err(JsonError::msg(format!("unknown dataset kind '{other}'"))),
        }
    }
}

/// Which oracle the grid runs on (and how solutions are evaluated).
#[derive(Clone, Debug, PartialEq)]
pub enum SubstrateSpec {
    /// Maximum coverage: dominating-set oracle, oracle-exact evaluation.
    Coverage,
    /// Influence maximization: RIS oracle for selection, Monte-Carlo
    /// forward simulation for evaluation.
    Influence {
        /// IC edge probability.
        p: f64,
    },
    /// Facility location: benefit-matrix oracle, oracle-exact
    /// evaluation.
    Facility,
}

impl ToJson for SubstrateSpec {
    fn to_json(&self) -> Value {
        match self {
            SubstrateSpec::Coverage => Value::Str("coverage".into()),
            SubstrateSpec::Facility => Value::Str("facility".into()),
            SubstrateSpec::Influence { p } => obj([("influence_p", Value::Num(*p))]),
        }
    }
}

impl FromJson for SubstrateSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Str(s) if s == "coverage" => Ok(SubstrateSpec::Coverage),
            Value::Str(s) if s == "facility" => Ok(SubstrateSpec::Facility),
            Value::Obj(_) => {
                let p = value
                    .get("influence_p")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| JsonError::msg("influence substrate needs 'influence_p'"))?;
                Ok(SubstrateSpec::Influence { p })
            }
            other => Err(JsonError::msg(format!("unknown substrate {other}"))),
        }
    }
}

/// One solver grid over one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct GridJob {
    /// Dataset recipe.
    pub dataset: DatasetRecipe,
    /// Substrate (must match the recipe family).
    pub substrate: SubstrateSpec,
    /// Registry names of the solvers to run.
    pub solvers: Vec<String>,
    /// Cardinality axis.
    pub ks: Vec<usize>,
    /// Balance-factor axis.
    pub taus: Vec<f64>,
    /// Error-parameter axis.
    pub epsilons: Vec<f64>,
    /// Shard-count axis (GreeDi partitioning; other solvers ignore it).
    pub shards: Vec<usize>,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// Suffix appended to the dataset name in tables (e.g. `" (MC)"`).
    pub label_suffix: String,
    /// Branch-and-bound node budget override.
    pub exact_node_limit: Option<u64>,
    /// Cap applied to `--mc-runs` for this job (slow IM datasets).
    pub mc_runs_cap: Option<usize>,
    /// Keep exact solvers in `--quick` runs (the smoke spec covers the
    /// whole registry on tiny instances).
    pub keep_exact_in_quick: bool,
}

impl GridJob {
    /// A single-dataset grid with the paper's defaults: `ε = 0.05`, one
    /// repetition, no overrides.
    pub fn new(dataset: DatasetRecipe, substrate: SubstrateSpec, solvers: &[&str]) -> Self {
        Self {
            dataset,
            substrate,
            solvers: solvers.iter().map(|s| s.to_string()).collect(),
            ks: vec![5],
            taus: vec![0.8],
            epsilons: vec![0.05],
            shards: vec![4],
            repetitions: 1,
            label_suffix: String::new(),
            exact_node_limit: None,
            mc_runs_cap: None,
            keep_exact_in_quick: false,
        }
    }

    /// Checks that the substrate matches the dataset family.
    pub fn validate(&self) -> Result<(), String> {
        let needs_graph = !matches!(self.substrate, SubstrateSpec::Facility);
        if needs_graph != self.dataset.is_graph() {
            return Err(format!(
                "substrate {:?} does not match dataset {:?}",
                self.substrate, self.dataset
            ));
        }
        if self.solvers.is_empty()
            || self.ks.is_empty()
            || self.taus.is_empty()
            || self.epsilons.is_empty()
            || self.shards.is_empty()
        {
            return Err(
                "grid job needs at least one solver, k, tau, epsilon, and shard count".into(),
            );
        }
        if self.shards.contains(&0) {
            return Err("shard counts must be >= 1".into());
        }
        Ok(())
    }
}

impl ToJson for GridJob {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(&'static str, Value)> = vec![
            ("dataset", self.dataset.to_json()),
            ("substrate", self.substrate.to_json()),
            (
                "solvers",
                Value::Arr(self.solvers.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            (
                "ks",
                Value::Arr(self.ks.iter().map(|&k| Value::Num(k as f64)).collect()),
            ),
            (
                "taus",
                Value::Arr(self.taus.iter().map(|&t| Value::Num(t)).collect()),
            ),
            (
                "epsilons",
                Value::Arr(self.epsilons.iter().map(|&e| Value::Num(e)).collect()),
            ),
            (
                "shards",
                Value::Arr(self.shards.iter().map(|&p| Value::Num(p as f64)).collect()),
            ),
            ("repetitions", Value::Num(self.repetitions as f64)),
        ];
        if !self.label_suffix.is_empty() {
            pairs.push(("label_suffix", Value::Str(self.label_suffix.clone())));
        }
        if let Some(limit) = self.exact_node_limit {
            pairs.push(("exact_node_limit", Value::Num(limit as f64)));
        }
        if let Some(cap) = self.mc_runs_cap {
            pairs.push(("mc_runs_cap", Value::Num(cap as f64)));
        }
        if self.keep_exact_in_quick {
            pairs.push(("keep_exact_in_quick", Value::Bool(true)));
        }
        obj(pairs)
    }
}

impl FromJson for GridJob {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let dataset = DatasetRecipe::from_json(
            value
                .get("dataset")
                .ok_or_else(|| JsonError::msg("grid job needs a dataset"))?,
        )?;
        let substrate = SubstrateSpec::from_json(
            value
                .get("substrate")
                .ok_or_else(|| JsonError::msg("grid job needs a substrate"))?,
        )?;
        let solvers = value
            .get("solvers")
            .and_then(Value::as_arr)
            .ok_or_else(|| JsonError::msg("grid job needs a solvers array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| JsonError::msg("solvers must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let usize_arr = |key: &str| -> Result<Option<Vec<usize>>, JsonError> {
            match value.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_usize_vec()
                    .map(Some)
                    .ok_or_else(|| JsonError::msg(format!("'{key}' must be an array of integers"))),
            }
        };
        let f64_arr = |key: &str| -> Result<Option<Vec<f64>>, JsonError> {
            match value.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64_vec()
                    .map(Some)
                    .ok_or_else(|| JsonError::msg(format!("'{key}' must be an array of numbers"))),
            }
        };
        Ok(Self {
            dataset,
            substrate,
            solvers,
            ks: usize_arr("ks")?.unwrap_or_else(|| vec![5]),
            taus: f64_arr("taus")?.unwrap_or_else(|| vec![0.8]),
            epsilons: f64_arr("epsilons")?.unwrap_or_else(|| vec![0.05]),
            shards: usize_arr("shards")?.unwrap_or_else(|| vec![4]),
            repetitions: value
                .get("repetitions")
                .and_then(Value::as_usize)
                .unwrap_or(1),
            label_suffix: value
                .get("label_suffix")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            exact_node_limit: value.get("exact_node_limit").and_then(Value::as_u64),
            mc_runs_cap: value.get("mc_runs_cap").and_then(Value::as_usize),
            keep_exact_in_quick: value
                .get("keep_exact_in_quick")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }
}

/// One job of a scenario: a solver grid or a dataset statistics table.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// A solver grid.
    Grid(GridJob),
    /// Table-1-style statistics over graph datasets.
    GraphStats(Vec<DatasetRecipe>),
    /// Table-2-style statistics over FL datasets.
    FlStats(Vec<DatasetRecipe>),
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Value {
        match self {
            JobSpec::Grid(job) => obj([("grid", job.to_json())]),
            JobSpec::GraphStats(datasets) => obj([(
                "graph_stats",
                Value::Arr(datasets.iter().map(ToJson::to_json).collect()),
            )]),
            JobSpec::FlStats(datasets) => obj([(
                "fl_stats",
                Value::Arr(datasets.iter().map(ToJson::to_json).collect()),
            )]),
        }
    }
}

impl FromJson for JobSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if let Some(grid) = value.get("grid") {
            return Ok(JobSpec::Grid(GridJob::from_json(grid)?));
        }
        let recipes = |v: &Value| -> Result<Vec<DatasetRecipe>, JsonError> {
            v.as_arr()
                .ok_or_else(|| JsonError::msg("stats job needs a dataset array"))?
                .iter()
                .map(DatasetRecipe::from_json)
                .collect()
        };
        if let Some(v) = value.get("graph_stats") {
            return Ok(JobSpec::GraphStats(recipes(v)?));
        }
        if let Some(v) = value.get("fl_stats") {
            return Ok(JobSpec::FlStats(recipes(v)?));
        }
        Err(JsonError::msg(
            "job must be one of 'grid', 'graph_stats', 'fl_stats'",
        ))
    }
}

/// A complete, serializable experiment description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Spec name (CSV/report file stem, `--spec` key).
    pub name: String,
    /// Table title.
    pub title: String,
    /// The jobs, executed in order.
    pub jobs: Vec<JobSpec>,
}

impl ScenarioSpec {
    /// Checks every grid job for substrate/dataset mismatches.
    pub fn validate(&self) -> Result<(), String> {
        for job in &self.jobs {
            if let JobSpec::Grid(grid) = job {
                grid.validate()
                    .map_err(|e| format!("spec '{}': {e}", self.name))?;
            }
        }
        Ok(())
    }
}

impl ToJson for ScenarioSpec {
    fn to_json(&self) -> Value {
        obj([
            ("name", Value::Str(self.name.clone())),
            ("title", Value::Str(self.title.clone())),
            (
                "jobs",
                Value::Arr(self.jobs.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ScenarioSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::msg("spec needs a name"))?
            .to_string();
        let title = value
            .get("title")
            .and_then(Value::as_str)
            .unwrap_or(&name)
            .to_string();
        let jobs = value
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| JsonError::msg("spec needs a jobs array"))?
            .iter()
            .map(JobSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { name, title, jobs })
    }
}

/// The built-in specs, one per paper artifact plus the CI smoke spec.
pub fn builtin_specs() -> &'static [(&'static str, &'static str)] {
    &[
        ("fig3", include_str!("../specs/fig3.json")),
        ("fig4", include_str!("../specs/fig4.json")),
        ("fig5", include_str!("../specs/fig5.json")),
        ("fig6", include_str!("../specs/fig6.json")),
        ("fig7", include_str!("../specs/fig7.json")),
        ("fig8", include_str!("../specs/fig8.json")),
        ("fig9", include_str!("../specs/fig9.json")),
        ("fig10", include_str!("../specs/fig10.json")),
        ("fig11", include_str!("../specs/fig11.json")),
        ("table1", include_str!("../specs/table1.json")),
        ("table2", include_str!("../specs/table2.json")),
        ("smoke", include_str!("../specs/smoke.json")),
    ]
}

/// Loads a spec by built-in name, falling back to a JSON file path.
pub fn load_spec(name_or_path: &str) -> Result<ScenarioSpec, String> {
    let text: String = match builtin_specs()
        .iter()
        .find(|(name, _)| *name == name_or_path)
    {
        Some((_, text)) => (*text).to_string(),
        None => {
            let path = Path::new(name_or_path);
            std::fs::read_to_string(path).map_err(|e| {
                format!("no built-in spec '{name_or_path}' and no readable file: {e}")
            })?
        }
    };
    let spec = ScenarioSpec::from_json_str(&text).map_err(|e| e.to_string())?;
    spec.validate()?;
    Ok(spec)
}

/// Counts of one scenario run, for strict/CI gating.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Spec name.
    pub name: String,
    /// Grid cells that produced a report.
    pub ok_cells: usize,
    /// Cells rejected for a *known* capability gap
    /// (`UnsupportedGroupCount` / `GridTooLarge`) — specs deliberately
    /// include these (e.g. SMSC on c ≠ 2) so the gap is recorded in the
    /// artifact; they are not failures.
    pub capability_gaps: usize,
    /// Cells that failed hard (`UnknownSolver` / `InvalidParams`):
    /// always a spec or registry bug.
    pub error_cells: usize,
    /// Successful cells whose solution came back empty.
    pub empty_solutions: usize,
    /// Stats rows emitted.
    pub stats_rows: usize,
    /// Path of the JSON report artifact.
    pub report_path: String,
}

impl RunSummary {
    /// Whether a `--strict` run should fail: nothing ran at all, a cell
    /// failed hard, or a solver returned an empty solution. Expected
    /// capability gaps do **not** trip strict mode — they are the
    /// documented behavior of specs that sweep SMSC/exact solvers over
    /// datasets beyond their reach.
    pub fn strict_failure(&self) -> bool {
        (self.ok_cells == 0 && self.stats_rows == 0)
            || self.error_cells > 0
            || self.empty_solutions > 0
    }
}

/// Thins a grid axis to at most three points (first, middle, last) for
/// `--quick` runs.
fn thin<T: Clone>(xs: &[T]) -> Vec<T> {
    if xs.len() <= 3 {
        return xs.to_vec();
    }
    vec![
        xs[0].clone(),
        xs[xs.len() / 2].clone(),
        xs[xs.len() - 1].clone(),
    ]
}

/// Executes one spec end to end: builds datasets, drives the solver
/// registry over every grid, prints/exports the tables, and writes the
/// JSON report artifact.
pub fn run_spec(spec: &ScenarioSpec, args: &ExpArgs) -> Result<RunSummary, String> {
    spec.validate()?;
    let registry = SolverRegistry::default();
    // A typo'd `--solvers` filter would silently empty every grid job
    // and exit 0; unknown names are a hard error instead.
    if let Some(filter) = &args.solvers {
        let unknown: Vec<&str> = filter
            .iter()
            .filter(|name| registry.get(name).is_none())
            .map(String::as_str)
            .collect();
        if !unknown.is_empty() {
            return Err(format!(
                "--solvers names not in the registry: {unknown:?} (known: {:?})",
                registry.names()
            ));
        }
    }
    let mut summary = RunSummary {
        name: spec.name.clone(),
        ..RunSummary::default()
    };
    let mut grid_table = Table::new(&spec.title, RESULT_HEADERS);
    let mut stats_tables: Vec<Table> = Vec::new();
    let mut report_cells: Vec<Value> = Vec::new();

    for job in &spec.jobs {
        match job {
            JobSpec::Grid(job) => {
                let grid = grid_config_for(job, &registry, args);
                if grid.solvers.is_empty() {
                    // A `--solvers` filter (or `--quick` exact-solver
                    // drop) can empty a job's solver list; skip the job
                    // instead of failing the whole spec on an empty axis.
                    eprintln!(
                        "[{}] skipping a grid job: no solvers left after filtering",
                        spec.name
                    );
                    continue;
                }
                let built = job.dataset.build(args);
                let label = format!("{}{}", built.name(), job.label_suffix);
                eprintln!("[{}] {} ...", spec.name, label);
                let results = run_grid_job(job, &built, &registry, &grid, args)?;
                for cell in &results {
                    match &cell.outcome {
                        Ok(report) => {
                            summary.ok_cells += 1;
                            if report.items.is_empty() {
                                summary.empty_solutions += 1;
                            }
                        }
                        Err(
                            SolverError::UnsupportedGroupCount { .. }
                            | SolverError::GridTooLarge { .. },
                        ) => summary.capability_gaps += 1,
                        Err(_) => summary.error_cells += 1,
                    }
                    report_cells.push(cell_to_json(&label, cell));
                }
                push_results(&mut grid_table, &label, &results);
            }
            JobSpec::GraphStats(recipes) => {
                let mut table = Table::new(&spec.title, &["dataset", "n (= m)", "|E|", "groups"]);
                for recipe in recipes {
                    let BuiltDataset::Graph(dataset) = recipe.build(args) else {
                        return Err(format!("graph_stats got non-graph recipe {recipe:?}"));
                    };
                    let row = table1_row(&dataset);
                    table.push(vec![
                        row.dataset,
                        row.n.to_string(),
                        row.edges.to_string(),
                        format_groups(&row.groups),
                    ]);
                }
                summary.stats_rows += table.len();
                stats_tables.push(table);
            }
            JobSpec::FlStats(recipes) => {
                let mut table = Table::new(&spec.title, &["dataset", "n", "m", "d", "groups"]);
                for recipe in recipes {
                    let BuiltDataset::Points(dataset) = recipe.build(args) else {
                        return Err(format!("fl_stats got non-FL recipe {recipe:?}"));
                    };
                    let row = table2_row(&dataset);
                    table.push(vec![
                        row.dataset,
                        row.n.to_string(),
                        row.m.to_string(),
                        row.d.to_string(),
                        format_groups(&row.groups),
                    ]);
                }
                summary.stats_rows += table.len();
                stats_tables.push(table);
            }
        }
    }

    if !grid_table.is_empty() {
        grid_table.print();
        grid_table
            .write_csv(&args.out_dir, &spec.name)
            .map_err(|e| format!("write csv: {e}"))?;
    }
    for (i, table) in stats_tables.iter().enumerate() {
        table.print();
        let name = if stats_tables.len() == 1 && grid_table.is_empty() {
            spec.name.clone()
        } else {
            format!("{}_stats{}", spec.name, i + 1)
        };
        table
            .write_csv(&args.out_dir, &name)
            .map_err(|e| format!("write csv: {e}"))?;
    }

    // JSON report artifact: one entry per cell, typed errors included.
    let report = obj([
        ("spec", Value::Str(spec.name.clone())),
        ("quick", Value::Bool(args.quick)),
        ("ok_cells", Value::Num(summary.ok_cells as f64)),
        (
            "capability_gaps",
            Value::Num(summary.capability_gaps as f64),
        ),
        ("error_cells", Value::Num(summary.error_cells as f64)),
        (
            "empty_solutions",
            Value::Num(summary.empty_solutions as f64),
        ),
        ("cells", Value::Arr(report_cells)),
    ]);
    let report_path = args
        .report
        .clone()
        .unwrap_or_else(|| format!("{}/{}_report.json", args.out_dir, spec.name));
    if let Some(parent) = Path::new(&report_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("create report dir: {e}"))?;
        }
    }
    std::fs::write(&report_path, report.to_pretty_string())
        .map_err(|e| format!("write report: {e}"))?;
    eprintln!(
        "[{}] {} ok / {} capability-gap / {} error cells; report at {}",
        spec.name, summary.ok_cells, summary.capability_gaps, summary.error_cells, report_path
    );
    summary.report_path = report_path;
    Ok(summary)
}

fn grid_config_for(job: &GridJob, registry: &SolverRegistry, args: &ExpArgs) -> GridConfig {
    let mut solvers: Vec<String> = if args.quick && !job.keep_exact_in_quick {
        job.solvers
            .iter()
            .filter(|name| registry.get(name).is_none_or(|s| !s.capabilities().exact))
            .cloned()
            .collect()
    } else {
        job.solvers.clone()
    };
    // `--solvers a,b` reruns the spec for a subset of registry entries
    // without editing the JSON (job order preserved).
    if let Some(filter) = &args.solvers {
        solvers.retain(|name| filter.iter().any(|f| f == name));
    }
    let mut base = ScenarioParams::new(job.ks[0], job.taus[0]);
    if let Some(limit) = job.exact_node_limit {
        base.exact_node_limit = limit;
    }
    GridConfig {
        solvers,
        ks: if args.quick {
            thin(&job.ks)
        } else {
            job.ks.clone()
        },
        taus: if args.quick {
            thin(&job.taus)
        } else {
            job.taus.clone()
        },
        epsilons: if args.quick {
            thin(&job.epsilons)
        } else {
            job.epsilons.clone()
        },
        shards: if args.quick {
            thin(&job.shards)
        } else {
            job.shards.clone()
        },
        repetitions: if args.quick { 1 } else { job.repetitions },
        warm_sweeps: !args.cold,
        base,
    }
}

fn run_grid_job(
    job: &GridJob,
    built: &BuiltDataset,
    registry: &SolverRegistry,
    grid: &GridConfig,
    args: &ExpArgs,
) -> Result<Vec<CellOutcome>, String> {
    let grid_err = |e: crate::harness::GridError| format!("grid expansion: {e}");
    match (&job.substrate, built) {
        (SubstrateSpec::Coverage, BuiltDataset::Graph(dataset)) => {
            let oracle = dataset.coverage_oracle();
            run_suite(&oracle, &|items| evaluate(&oracle, items), registry, grid).map_err(grid_err)
        }
        (SubstrateSpec::Influence { p }, BuiltDataset::Graph(dataset)) => {
            let model = DiffusionModel::ic(*p);
            let seed = job.dataset.seed();
            let oracle = dataset.ris_oracle(model, args.rr_sets, seed ^ 0x11);
            let mc_runs = job
                .mc_runs_cap
                .map_or(args.mc_runs, |cap| args.mc_runs.min(cap));
            let evaluator = |items: &[u32]| {
                monte_carlo_evaluate(
                    &dataset.graph,
                    model,
                    &dataset.groups,
                    items,
                    mc_runs,
                    seed ^ 0x22,
                )
            };
            run_suite(&oracle, &evaluator, registry, grid).map_err(grid_err)
        }
        (SubstrateSpec::Facility, BuiltDataset::Points(dataset)) => {
            let oracle = dataset.oracle();
            run_suite(&oracle, &|items| evaluate(&oracle, items), registry, grid).map_err(grid_err)
        }
        (substrate, _) => Err(format!(
            "substrate {substrate:?} does not match dataset {:?}",
            job.dataset
        )),
    }
}

/// Serializes one executed grid cell — report or typed rejection — as a
/// JSON object, tagging it with the dataset label. Shared by the
/// scenario report artifacts and the solve service's `/batch` endpoint.
pub fn cell_to_json(dataset: &str, cell: &CellOutcome) -> Value {
    let mut pairs: Vec<(&'static str, Value)> = vec![
        ("dataset", Value::Str(dataset.to_string())),
        ("solver", Value::Str(cell.solver.clone())),
        ("k", Value::Num(cell.k as f64)),
        ("tau", Value::Num(cell.tau)),
        ("epsilon", Value::Num(cell.epsilon)),
        ("shards", Value::Num(cell.shards as f64)),
        ("rep", Value::Num(cell.rep as f64)),
        ("warm", Value::Bool(cell.warm)),
    ];
    match &cell.outcome {
        Ok(report) => {
            pairs.push(("status", Value::Str("ok".into())));
            pairs.push(("report", report.to_json()));
        }
        Err(
            error @ (SolverError::UnsupportedGroupCount { .. } | SolverError::GridTooLarge { .. }),
        ) => {
            pairs.push(("status", Value::Str("rejected".into())));
            pairs.push(("error", error.to_json()));
        }
        Err(error) => {
            pairs.push(("status", Value::Str("error".into())));
            pairs.push(("error", error.to_json()));
        }
    }
    obj(pairs)
}

/// Prints the built-in specs (the `--list` flag of every binary).
pub fn list_specs() {
    println!("built-in scenario specs:");
    for (name, _) in builtin_specs() {
        let spec = load_spec(name).expect("built-in specs always parse");
        println!("  {name:<8} {}", spec.title);
    }
}

/// Entry point shared by the legacy alias binaries (`fig3` … `table2`):
/// parse the common flags, load the named built-in spec, run it, and
/// exit non-zero on failure (or on `--strict` violations).
pub fn alias_main(name: &str) {
    let args = ExpArgs::parse();
    if args.list {
        list_specs();
        return;
    }
    let spec_name = args.spec.as_deref().unwrap_or(name);
    let spec = match load_spec(spec_name) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match run_spec(&spec, &args) {
        Ok(summary) => {
            if args.strict && summary.strict_failure() {
                eprintln!(
                    "strict failure: {} ok cells, {} errors, {} empty solutions",
                    summary.ok_cells, summary.error_cells, summary.empty_solutions
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_specs_parse_and_validate() {
        for (name, text) in builtin_specs() {
            let spec =
                ScenarioSpec::from_json_str(text).unwrap_or_else(|e| panic!("spec {name}: {e}"));
            assert_eq!(&spec.name, name);
            spec.validate()
                .unwrap_or_else(|e| panic!("spec {name}: {e}"));
            assert!(!spec.jobs.is_empty(), "spec {name} has no jobs");
        }
    }

    #[test]
    fn spec_round_trips_through_the_serde_shim() {
        let spec = load_spec("fig3").unwrap();
        let json = spec.to_json_pretty();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        assert_eq!(back, spec);
        // And the smoke spec, which exercises the optional fields.
        let smoke = load_spec("smoke").unwrap();
        let back = ScenarioSpec::from_json_str(&smoke.to_json_pretty()).unwrap();
        assert_eq!(back, smoke);
    }

    #[test]
    fn mismatched_substrate_is_rejected() {
        let job = GridJob::new(
            DatasetRecipe::RandFl {
                c: 2,
                seed_offset: 0,
            },
            SubstrateSpec::Coverage,
            &["Greedy"],
        );
        assert!(job.validate().is_err());
        let spec = ScenarioSpec {
            name: "bad".into(),
            title: "bad".into(),
            jobs: vec![JobSpec::Grid(job)],
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn empty_grid_axes_are_rejected() {
        let good = GridJob::new(
            DatasetRecipe::RandMc {
                c: 2,
                n: 60,
                seed_offset: 0,
            },
            SubstrateSpec::Coverage,
            &["Greedy"],
        );
        assert!(good.validate().is_ok());
        // An empty axis would silently expand to zero cells — rejected.
        let mut bad = good.clone();
        bad.epsilons.clear();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.taus.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn thin_keeps_first_middle_last() {
        let xs: Vec<usize> = (1..=10).map(|i| i * 5).collect();
        assert_eq!(thin(&xs), vec![5, 30, 50]);
        let short = vec![1, 2];
        assert_eq!(thin(&short), short);
    }

    #[test]
    fn smoke_spec_runs_end_to_end_in_quick_mode() {
        let dir = std::env::temp_dir().join("fair-submod-smoke-test");
        let mut args = ExpArgs::from_iter(["--quick".to_string()]);
        args.out_dir = dir.to_str().unwrap().to_string();
        let spec = load_spec("smoke").unwrap();
        let summary = run_spec(&spec, &args).unwrap();
        assert!(summary.ok_cells > 0);
        assert_eq!(summary.error_cells, 0, "smoke rejected cells");
        assert_eq!(summary.empty_solutions, 0, "smoke produced empty solutions");
        assert!(!summary.strict_failure());
        // The JSON report artifact exists and parses.
        let text = std::fs::read_to_string(&summary.report_path).unwrap();
        let report = serde::json::parse(&text).unwrap();
        assert_eq!(report.get("spec").and_then(Value::as_str), Some("smoke"));
        assert!(report.get("cells").and_then(Value::as_arr).unwrap().len() > 0);
    }

    #[test]
    fn unknown_spec_is_an_error() {
        assert!(load_spec("not-a-spec").is_err());
    }
}
