//! Registry-driven grid executor: one call sweeps a solver list over a
//! `(k, τ, ε) × repetitions` grid on one oracle.
//!
//! The solver suite lives in
//! [`fair_submod_core::engine::SolverRegistry`]; this module only
//! handles the *grid* — expanding the axes into cells (checked:
//! [`GridConfig::cells`] rejects empty axes and size overflows with a
//! typed [`GridError`] instead of silently producing a zero-cell
//! sweep), running the cells concurrently across worker threads (they
//! are independent, and every solver is deterministic for a fixed seed,
//! so concurrency affects wall-clock time only), and re-evaluating each
//! solution with a caller-provided evaluator (oracle-exact for MC/FL,
//! Monte-Carlo for IM). Results come back in deterministic grid order.
//! Capability gaps (SMSC on `c ≠ 2`, exact solvers over their size
//! caps) come back as typed errors inside [`CellOutcome`], never as
//! panics, so a sweep always completes.
//!
//! ## Warm k-axis sweeps
//!
//! The paper's experiments sweep the budget `k` (Figs. 4, 6, 8, 11),
//! and for greedy-family solvers the solution at budget `k` is a strict
//! prefix of the solution at `k′ > k`. When
//! [`GridConfig::warm_sweeps`] is on (the default), the executor groups
//! grid cells by `(solver, τ, ε, rep)`, opens one resumable
//! [`SolveSession`](fair_submod_core::engine::SolveSession) at the
//! largest `k` of the axis, and serves every smaller budget by exact
//! prefix extraction — `O(max k)` greedy rounds for the whole axis
//! instead of `O(Σ k)`. Only sessions that declare
//! [`prefix_exact`](fair_submod_core::engine::SolveSession::prefix_exact)
//! take this path, and extraction is
//! bit-identical to a cold per-cell solve (items, objective, oracle
//! calls — enforced by `tests/session_equivalence.rs`); warm cells are
//! flagged via [`CellOutcome::warm`] and record the rounds and oracle
//! calls the shared session saved in their report notes
//! (`warm_saved_rounds`, `warm_saved_oracle_calls`).
//!
//! Per-cell `seconds` are measured per solver (for warm cells: the
//! share of session stepping spent between the previous budget and this
//! one, plus extraction), but on a shared machine concurrent cells can
//! inflate one another's wall-clock; for publication-grade runtime
//! plots, pin `RAYON_NUM_THREADS=1`.

use std::fmt;
use std::time::Instant;

use rayon::prelude::*;

use fair_submod_core::engine::{
    DynUtilitySystem, ScenarioParams, SessionStatus, SolveReport, SolverError, SolverRegistry,
};
use fair_submod_core::items::ItemId;
use fair_submod_core::metrics::Evaluation;

/// The five algorithms of the paper's comparison (Section 5), by
/// registry name.
pub const PAPER_SOLVERS: &[&str] = &["Greedy", "Saturate", "SMSC", "BSM-TSGreedy", "BSM-Saturate"];

/// A solver grid: names × `k` × `τ` × `ε` × repetitions, plus the
/// template parameters every cell inherits.
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Registry names of the solvers to run.
    pub solvers: Vec<String>,
    /// Cardinality axis.
    pub ks: Vec<usize>,
    /// Balance-factor axis.
    pub taus: Vec<f64>,
    /// Error-parameter axis (usually the single paper default `0.05`).
    pub epsilons: Vec<f64>,
    /// Shard-count axis (GreeDi partitioning; ignored by non-sharded
    /// solvers). Usually the single engine default `4`.
    pub shards: Vec<usize>,
    /// Repetitions per cell; repetition `r` runs with `base.seed + r`,
    /// so deterministic solvers repeat identically and randomized ones
    /// re-sample reproducibly.
    pub repetitions: usize,
    /// Serve multi-`k` axes of prefix-exact resumable solvers from one
    /// warm session per `(solver, τ, ε, rep)` group (see the module
    /// docs). Off = the historical cold per-cell execution.
    pub warm_sweeps: bool,
    /// Template parameters (seed, greedy variant, exact caps, …);
    /// `k`/`tau`/`epsilon` are overwritten per cell.
    pub base: ScenarioParams,
}

/// Typed rejection of a grid whose axes cannot expand into cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GridError {
    /// An axis is empty — the sweep would silently run zero cells.
    EmptyAxis {
        /// Which axis (`solvers`, `ks`, `taus`, `epsilons`, `shards`).
        axis: &'static str,
    },
    /// The axis-length product overflows `usize` — the sweep size is
    /// nonsensical.
    Overflow {
        /// Human-readable axis lengths.
        lengths: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyAxis { axis } => {
                write!(
                    f,
                    "grid axis '{axis}' is empty; the sweep would run zero cells"
                )
            }
            GridError::Overflow { lengths } => {
                write!(f, "grid size overflows usize (axis lengths {lengths})")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// One expanded `(solver, k, τ, ε, shards, rep)` grid point, before
/// execution.
#[derive(Clone, Debug, PartialEq)]
pub struct GridCell {
    /// Registry name of the solver.
    pub solver: String,
    /// `k` of the cell.
    pub k: usize,
    /// `τ` of the cell.
    pub tau: f64,
    /// `ε` of the cell.
    pub epsilon: f64,
    /// Shard count of the cell.
    pub shards: usize,
    /// Repetition index (0-based).
    pub rep: usize,
}

impl GridConfig {
    /// The paper's default comparison at a single `(k, τ)` grid point.
    pub fn paper(k: usize, tau: f64) -> Self {
        Self {
            solvers: PAPER_SOLVERS.iter().map(|s| s.to_string()).collect(),
            ks: vec![k],
            taus: vec![tau],
            epsilons: vec![0.05],
            shards: vec![ScenarioParams::new(k, tau).shards],
            repetitions: 1,
            warm_sweeps: true,
            base: ScenarioParams::new(k, tau),
        }
    }

    /// Adds `BSM-Optimal` to the comparison.
    pub fn with_optimal(mut self) -> Self {
        self.solvers.push("BSM-Optimal".to_string());
        self
    }

    /// Disables warm k-axis sweeps (cold per-cell execution).
    pub fn cold(mut self) -> Self {
        self.warm_sweeps = false;
        self
    }

    /// Number of cells this grid expands to, checked: empty axes and
    /// `usize` overflow are typed [`GridError`]s instead of a silent
    /// zero (or wrapped) product.
    pub fn num_cells(&self) -> Result<usize, GridError> {
        for (axis, len) in [
            ("solvers", self.solvers.len()),
            ("ks", self.ks.len()),
            ("taus", self.taus.len()),
            ("epsilons", self.epsilons.len()),
            ("shards", self.shards.len()),
        ] {
            if len == 0 {
                return Err(GridError::EmptyAxis { axis });
            }
        }
        let lengths = || {
            format!(
                "{} × {} × {} × {} × {} × {}",
                self.solvers.len(),
                self.ks.len(),
                self.taus.len(),
                self.epsilons.len(),
                self.shards.len(),
                self.repetitions.max(1)
            )
        };
        self.solvers
            .len()
            .checked_mul(self.ks.len())
            .and_then(|n| n.checked_mul(self.taus.len()))
            .and_then(|n| n.checked_mul(self.epsilons.len()))
            .and_then(|n| n.checked_mul(self.shards.len()))
            .and_then(|n| n.checked_mul(self.repetitions.max(1)))
            .ok_or_else(|| GridError::Overflow { lengths: lengths() })
    }

    /// Expands the axes into cells in the deterministic grid order
    /// `k → τ → ε → shards → rep → solver`, with the same checks as
    /// [`GridConfig::num_cells`].
    pub fn cells(&self) -> Result<Vec<GridCell>, GridError> {
        let mut cells = Vec::with_capacity(self.num_cells()?);
        for &k in &self.ks {
            for &tau in &self.taus {
                for &epsilon in &self.epsilons {
                    for &shards in &self.shards {
                        for rep in 0..self.repetitions.max(1) {
                            for solver in &self.solvers {
                                cells.push(GridCell {
                                    solver: solver.clone(),
                                    k,
                                    tau,
                                    epsilon,
                                    shards,
                                    rep,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One executed `(solver, k, τ, ε, shards, rep)` cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Registry name of the solver.
    pub solver: String,
    /// `k` of the cell.
    pub k: usize,
    /// `τ` of the cell.
    pub tau: f64,
    /// `ε` of the cell.
    pub epsilon: f64,
    /// Shard count of the cell.
    pub shards: usize,
    /// Repetition index (0-based).
    pub rep: usize,
    /// Whether this cell was served from a warm session's prefix
    /// instead of a cold per-cell solve (bit-identical either way).
    pub warm: bool,
    /// The solver's report — with `f`/`g`/`group_utilities` replaced by
    /// the caller's evaluator — or its typed rejection.
    pub outcome: Result<SolveReport, SolverError>,
}

impl CellOutcome {
    /// The report, if the cell succeeded.
    pub fn report(&self) -> Option<&SolveReport> {
        self.outcome.as_ref().ok()
    }
}

/// Cell parameters: the grid template with the cell's axes substituted.
fn cell_params(base: &ScenarioParams, cell: &GridCell) -> ScenarioParams {
    let mut params = base.clone();
    params.k = cell.k;
    params.tau = cell.tau;
    params.epsilon = cell.epsilon;
    params.shards = cell.shards;
    params.seed = base.seed.wrapping_add(cell.rep as u64);
    params
}

/// Applies the caller's evaluator to a report (harness semantics:
/// selection comes from the solver's oracle, evaluation from the
/// ground-truth evaluator).
fn re_evaluate(report: &mut SolveReport, evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync)) {
    let eval = evaluator(&report.items);
    report.f = eval.f;
    report.g = eval.g;
    report.group_utilities = eval.group_means;
}

/// One unit of parallel work: a cold cell, or a warm `(solver, τ, ε,
/// rep)` group covering a whole k-axis. `usize` indices key the results
/// back into deterministic grid order.
enum WorkUnit {
    Cold(usize, GridCell),
    Warm(Vec<(usize, GridCell)>),
}

/// Runs the grid on `system`, evaluating each solution with `evaluator`
/// (pass [`fair_submod_core::metrics::evaluate`] for oracle-exact
/// applications; a Monte-Carlo closure for IM).
///
/// Cells run concurrently (see the module docs); the result order is
/// the deterministic grid order `k → τ → ε → rep → solver`. An invalid
/// grid (empty axis, size overflow) is a typed [`GridError`] instead of
/// an empty result.
pub fn run_suite(
    system: &dyn DynUtilitySystem,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    registry: &SolverRegistry,
    grid: &GridConfig,
) -> Result<Vec<CellOutcome>, GridError> {
    let cells = grid.cells()?;
    let units = plan_units(registry, grid, cells);
    let nested: Vec<Vec<(usize, CellOutcome)>> = units
        .into_par_iter()
        .map(|unit| match unit {
            WorkUnit::Cold(index, cell) => {
                vec![(
                    index,
                    run_cold_cell(system, evaluator, registry, grid, cell),
                )]
            }
            WorkUnit::Warm(group) => run_warm_group(system, evaluator, registry, grid, group),
        })
        .collect();
    let mut outcomes: Vec<(usize, CellOutcome)> = nested.into_iter().flatten().collect();
    outcomes.sort_by_key(|(index, _)| *index);
    Ok(outcomes.into_iter().map(|(_, outcome)| outcome).collect())
}

/// Splits indexed cells into cold units and warm `(solver, τ, ε, rep)`
/// groups. A group goes warm only when warm sweeps are enabled, the
/// k-axis has more than one point, and the solver statically declares
/// `resumable` *and* `prefix_exact` — grouping a non-prefix solver
/// would serialize its whole k-axis into one work unit for nothing.
/// The opened session's own `prefix_exact()` is still re-checked at
/// run time (disagreement degrades to cold solves inside the group).
fn plan_units(registry: &SolverRegistry, grid: &GridConfig, cells: Vec<GridCell>) -> Vec<WorkUnit> {
    let multi_k = grid.ks.len() > 1;
    if !grid.warm_sweeps || !multi_k {
        return cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| WorkUnit::Cold(index, cell))
            .collect();
    }
    let mut units: Vec<WorkUnit> = Vec::new();
    // Key → position in `units`, so the expansion stays a single pass.
    let mut groups: Vec<((String, u64, u64, usize, usize), usize)> = Vec::new();
    for (index, cell) in cells.into_iter().enumerate() {
        let warm_capable = registry.get(&cell.solver).is_some_and(|s| {
            let caps = s.capabilities();
            caps.resumable && caps.prefix_exact
        });
        if !warm_capable {
            units.push(WorkUnit::Cold(index, cell));
            continue;
        }
        let key = (
            cell.solver.clone(),
            cell.tau.to_bits(),
            cell.epsilon.to_bits(),
            cell.shards,
            cell.rep,
        );
        match groups.iter().find(|(k, _)| *k == key) {
            Some(&(_, at)) => {
                if let WorkUnit::Warm(group) = &mut units[at] {
                    group.push((index, cell));
                }
            }
            None => {
                groups.push((key, units.len()));
                units.push(WorkUnit::Warm(vec![(index, cell)]));
            }
        }
    }
    units
}

fn run_cold_cell(
    system: &dyn DynUtilitySystem,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    registry: &SolverRegistry,
    grid: &GridConfig,
    cell: GridCell,
) -> CellOutcome {
    let params = cell_params(&grid.base, &cell);
    let outcome = registry
        .solve(&cell.solver, system, &params)
        .map(|mut report| {
            re_evaluate(&mut report, evaluator);
            report
        });
    CellOutcome {
        solver: cell.solver,
        k: cell.k,
        tau: cell.tau,
        epsilon: cell.epsilon,
        shards: cell.shards,
        rep: cell.rep,
        warm: false,
        outcome,
    }
}

/// Serves one `(solver, τ, ε, rep)` group's whole k-axis from a single
/// warm session: open at the largest `k`, step to each budget in
/// ascending order, and extract the (bit-identical) prefix report.
/// Sessions that are not prefix-exact — or fail to open — degrade to
/// cold per-cell execution/errors, so the group always completes.
fn run_warm_group(
    system: &dyn DynUtilitySystem,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    registry: &SolverRegistry,
    grid: &GridConfig,
    group: Vec<(usize, GridCell)>,
) -> Vec<(usize, CellOutcome)> {
    let cold_all = |group: Vec<(usize, GridCell)>| -> Vec<(usize, CellOutcome)> {
        group
            .into_iter()
            .map(|(index, cell)| {
                (
                    index,
                    run_cold_cell(system, evaluator, registry, grid, cell),
                )
            })
            .collect()
    };
    let max_k = group.iter().map(|(_, cell)| cell.k).max().unwrap_or(0);
    let template = &group[0].1;
    let mut session_cell = template.clone();
    session_cell.k = max_k;
    let params = cell_params(&grid.base, &session_cell);
    let open_start = Instant::now();
    let mut session = match registry.open_session(&template.solver, system, &params) {
        Ok(session) => session,
        Err(error) => {
            // The error is k-independent for resumable solvers (τ/ε
            // validation), so every cell of the group reports it — the
            // same outcome a cold sweep would produce cell by cell.
            return group
                .into_iter()
                .map(|(index, cell)| {
                    (
                        index,
                        CellOutcome {
                            solver: cell.solver,
                            k: cell.k,
                            tau: cell.tau,
                            epsilon: cell.epsilon,
                            shards: cell.shards,
                            rep: cell.rep,
                            warm: false,
                            outcome: Err(error.clone()),
                        },
                    )
                })
                .collect();
        }
    };
    if !session.prefix_exact() {
        return cold_all(group);
    }
    let mut opened_seconds = open_start.elapsed().as_secs_f64();

    // Ascending-k order: step the session only as far as each budget
    // needs, so per-cell seconds reflect the marginal rounds.
    let mut by_k: Vec<(usize, GridCell)> = group;
    by_k.sort_by_key(|(_, cell)| cell.k);
    let mut results: Vec<(usize, CellOutcome)> = Vec::with_capacity(by_k.len());
    let mut cold_calls_total = 0u64;
    let mut cold_rounds_total = 0u64;
    for (index, cell) in by_k {
        let start = Instant::now();
        // `rounds()` is the cheap counter — polling `snapshot()` here
        // would clone the items vector once per round.
        while session.rounds() < cell.k && !session.done() {
            if session.step(system) == SessionStatus::Done {
                break;
            }
        }
        let extracted = session.solution_at(system, cell.k);
        // Selection time only (stepping + prefix extraction) — the
        // clock stops before the caller's evaluator runs, matching the
        // cold path where `seconds` is the registry's solve timer and
        // re-evaluation happens outside it.
        let selection_seconds = opened_seconds + start.elapsed().as_secs_f64();
        opened_seconds = 0.0;
        let outcome = extracted.map(|mut report| {
            re_evaluate(&mut report, evaluator);
            cold_calls_total += report.oracle_calls;
            cold_rounds_total += report.items.len() as u64;
            report.seconds = selection_seconds;
            report
        });
        results.push((
            index,
            CellOutcome {
                solver: cell.solver,
                k: cell.k,
                tau: cell.tau,
                epsilon: cell.epsilon,
                shards: cell.shards,
                rep: cell.rep,
                warm: true,
                outcome,
            },
        ));
    }

    // Record what the shared session saved versus cold per-cell solves:
    // the prefix reports carry exactly the cold counts, so the saving is
    // their sum minus what the one session actually spent.
    let snapshot = session.snapshot();
    let saved_calls = cold_calls_total.saturating_sub(snapshot.oracle_calls);
    let saved_rounds = cold_rounds_total.saturating_sub(snapshot.round as u64);
    for (_, outcome) in &mut results {
        if let Ok(report) = &mut outcome.outcome {
            report.notes.push(("warm".into(), 1.0));
            report
                .notes
                .push(("warm_saved_oracle_calls".into(), saved_calls as f64));
            report
                .notes
                .push(("warm_saved_rounds".into(), saved_rounds as f64));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::toy;

    #[test]
    fn suite_runs_all_paper_algorithms_on_figure1() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let grid = GridConfig::paper(2, 0.5).with_optimal();
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        let names: Vec<&str> = results.iter().map(|r| r.solver.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Greedy",
                "Saturate",
                "SMSC",
                "BSM-TSGreedy",
                "BSM-Saturate",
                "BSM-Optimal"
            ]
        );
        let greedy_f = results[0].report().expect("greedy runs").f;
        for r in &results {
            let report = r.outcome.as_ref().expect("all paper solvers run on c=2");
            assert!(report.items.len() <= 2);
            assert!(report.f >= 0.0 && report.f <= 1.0);
            assert!(report.seconds >= 0.0);
            assert!(report.f <= greedy_f + 1e-9, "{} beat Greedy on f", r.solver);
        }
    }

    #[test]
    fn smsc_cell_is_a_typed_error_when_c_not_two() {
        let sys = toy::random_coverage(10, 30, 3, 0.2, 1);
        let registry = SolverRegistry::default();
        let grid = GridConfig::paper(3, 0.5);
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        let smsc = results.iter().find(|r| r.solver == "SMSC").unwrap();
        assert!(matches!(
            smsc.outcome,
            Err(SolverError::UnsupportedGroupCount { got: 3, .. })
        ));
        // The rest of the grid point still ran.
        assert!(results.iter().filter(|r| r.outcome.is_ok()).count() >= 4);
    }

    #[test]
    fn grid_axes_expand_in_deterministic_order() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(2, 0.2);
        grid.solvers = vec!["Greedy".into(), "Random".into()];
        grid.taus = vec![0.2, 0.8];
        grid.repetitions = 2;
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        assert_eq!(results.len(), grid.num_cells().unwrap());
        assert_eq!(results.len(), 8);
        assert_eq!(results[0].tau, 0.2);
        assert_eq!(results[0].rep, 0);
        assert_eq!(results[2].rep, 1);
        assert_eq!(results[4].tau, 0.8);
        // Repetitions shift the seed: Random may differ across reps but
        // both reps of a deterministic solver agree.
        let greedy: Vec<&CellOutcome> = results.iter().filter(|r| r.solver == "Greedy").collect();
        assert_eq!(
            greedy[0].report().unwrap().items,
            greedy[1].report().unwrap().items
        );
    }

    #[test]
    fn shard_axis_sweeps_greedi_partitionings() {
        let sys = toy::random_coverage(40, 120, 2, 0.1, 3);
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(5, 0.6);
        grid.solvers = vec!["GreeDi".into(), "Greedy".into()];
        grid.shards = vec![1, 2, 4];
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        assert_eq!(results.len(), grid.num_cells().unwrap());
        assert_eq!(results.len(), 6);
        // Each GreeDi cell records its shard count and actually ran
        // with it (p = 1 equals plain greedy on value).
        let greedi: Vec<&CellOutcome> = results.iter().filter(|r| r.solver == "GreeDi").collect();
        assert_eq!(
            greedi.iter().map(|c| c.shards).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        let greedy_val = results
            .iter()
            .find(|r| r.solver == "Greedy")
            .and_then(|r| r.report())
            .expect("greedy runs")
            .objective;
        let p1 = greedi[0].report().expect("greedi runs").objective;
        assert_eq!(p1.to_bits(), greedy_val.to_bits());
        // Shard counts change the partition, so reports may differ —
        // but every cell still ran to completion with k items.
        for cell in &greedi {
            assert_eq!(cell.report().expect("greedi runs").items.len(), 5);
        }
    }

    #[test]
    fn empty_axes_and_overflow_are_typed_errors() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(2, 0.5);
        grid.taus.clear();
        assert_eq!(grid.num_cells(), Err(GridError::EmptyAxis { axis: "taus" }));
        let err = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap_err();
        assert_eq!(err, GridError::EmptyAxis { axis: "taus" });
        assert!(err.to_string().contains("taus"));

        let mut grid = GridConfig::paper(2, 0.5);
        // 5 solvers × usize::MAX repetitions overflows the product.
        grid.repetitions = usize::MAX;
        assert!(matches!(grid.num_cells(), Err(GridError::Overflow { .. })));
        assert!(grid.cells().is_err());
    }

    #[test]
    fn warm_k_axis_sweep_is_bit_identical_to_cold() {
        let sys = toy::random_coverage(40, 120, 3, 0.08, 6);
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(8, 0.6);
        grid.solvers = vec!["Greedy".into(), "Random".into()];
        grid.ks = vec![2, 5, 8];
        grid.repetitions = 2;
        let warm = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        let cold = run_suite(
            &sys,
            &|items| evaluate(&sys, items),
            &registry,
            &grid.clone().cold(),
        )
        .unwrap();
        assert_eq!(warm.len(), cold.len());
        let mut warm_cells = 0;
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(
                (w.solver.as_str(), w.k, w.rep),
                (c.solver.as_str(), c.k, c.rep)
            );
            let (wr, cr) = (w.report().unwrap(), c.report().unwrap());
            assert_eq!(wr.items, cr.items, "{} k={}", w.solver, w.k);
            assert_eq!(wr.objective.to_bits(), cr.objective.to_bits());
            assert_eq!(wr.f.to_bits(), cr.f.to_bits());
            assert_eq!(wr.oracle_calls, cr.oracle_calls, "{} k={}", w.solver, w.k);
            if w.warm {
                warm_cells += 1;
                assert_eq!(w.solver, "Greedy", "only prefix-exact solvers go warm");
                assert!(wr.notes.iter().any(|(l, v)| l == "warm" && *v == 1.0));
            } else {
                assert!(wr.notes.iter().all(|(l, _)| l != "warm"));
            }
        }
        // Both Greedy reps × 3 ks rode the warm path.
        assert_eq!(warm_cells, 6);
        // The warm sweep actually saved oracle calls over the cold one.
        let saved = warm
            .iter()
            .filter_map(|c| c.report())
            .flat_map(|r| r.notes.iter())
            .find(|(l, _)| l == "warm_saved_oracle_calls")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        assert!(saved > 0.0, "k-axis reuse saved no oracle calls");
    }

    #[test]
    fn warm_groups_surface_typed_errors_per_cell() {
        // BSM-Saturate is resumable but not prefix-exact, so its cells
        // run cold even on a multi-k grid — and an invalid ε must yield
        // the same typed per-cell error either way.
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(2, 0.5);
        grid.solvers = vec!["BSM-Saturate".into()];
        grid.ks = vec![1, 2];
        grid.epsilons = vec![1.5];
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid).unwrap();
        assert_eq!(results.len(), 2);
        for cell in &results {
            assert!(matches!(
                cell.outcome,
                Err(SolverError::InvalidParams { .. })
            ));
        }
    }
}
