//! Registry-driven grid executor: one call sweeps a solver list over a
//! `(k, τ, ε) × repetitions` grid on one oracle.
//!
//! The solver suite lives in
//! [`fair_submod_core::engine::SolverRegistry`]; this module only
//! handles the *grid* — expanding the axes into cells, running the
//! cells concurrently across worker threads (they are independent, and
//! every solver is deterministic for a fixed seed, so concurrency
//! affects wall-clock time only), and re-evaluating each solution with
//! a caller-provided evaluator (oracle-exact for MC/FL, Monte-Carlo for
//! IM). Results come back in deterministic grid order. Capability gaps
//! (SMSC on `c ≠ 2`, exact solvers over their size caps) come back as
//! typed errors inside [`CellOutcome`], never as panics, so a sweep
//! always completes. Per-cell `seconds` are measured per solver, but on
//! a shared machine concurrent cells can inflate one another's
//! wall-clock; for publication-grade runtime plots, pin
//! `RAYON_NUM_THREADS=1`.

use rayon::prelude::*;

use fair_submod_core::engine::{
    DynUtilitySystem, ScenarioParams, SolveReport, SolverError, SolverRegistry,
};
use fair_submod_core::items::ItemId;
use fair_submod_core::metrics::Evaluation;

/// The five algorithms of the paper's comparison (Section 5), by
/// registry name.
pub const PAPER_SOLVERS: &[&str] = &["Greedy", "Saturate", "SMSC", "BSM-TSGreedy", "BSM-Saturate"];

/// A solver grid: names × `k` × `τ` × `ε` × repetitions, plus the
/// template parameters every cell inherits.
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Registry names of the solvers to run.
    pub solvers: Vec<String>,
    /// Cardinality axis.
    pub ks: Vec<usize>,
    /// Balance-factor axis.
    pub taus: Vec<f64>,
    /// Error-parameter axis (usually the single paper default `0.05`).
    pub epsilons: Vec<f64>,
    /// Repetitions per cell; repetition `r` runs with `base.seed + r`,
    /// so deterministic solvers repeat identically and randomized ones
    /// re-sample reproducibly.
    pub repetitions: usize,
    /// Template parameters (seed, greedy variant, exact caps, …);
    /// `k`/`tau`/`epsilon` are overwritten per cell.
    pub base: ScenarioParams,
}

impl GridConfig {
    /// The paper's default comparison at a single `(k, τ)` grid point.
    pub fn paper(k: usize, tau: f64) -> Self {
        Self {
            solvers: PAPER_SOLVERS.iter().map(|s| s.to_string()).collect(),
            ks: vec![k],
            taus: vec![tau],
            epsilons: vec![0.05],
            repetitions: 1,
            base: ScenarioParams::new(k, tau),
        }
    }

    /// Adds `BSM-Optimal` to the comparison.
    pub fn with_optimal(mut self) -> Self {
        self.solvers.push("BSM-Optimal".to_string());
        self
    }

    /// Number of cells this grid expands to.
    pub fn num_cells(&self) -> usize {
        self.solvers.len()
            * self.ks.len()
            * self.taus.len()
            * self.epsilons.len()
            * self.repetitions.max(1)
    }
}

/// One executed `(solver, k, τ, ε, rep)` cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Registry name of the solver.
    pub solver: String,
    /// `k` of the cell.
    pub k: usize,
    /// `τ` of the cell.
    pub tau: f64,
    /// `ε` of the cell.
    pub epsilon: f64,
    /// Repetition index (0-based).
    pub rep: usize,
    /// The solver's report — with `f`/`g`/`group_utilities` replaced by
    /// the caller's evaluator — or its typed rejection.
    pub outcome: Result<SolveReport, SolverError>,
}

impl CellOutcome {
    /// The report, if the cell succeeded.
    pub fn report(&self) -> Option<&SolveReport> {
        self.outcome.as_ref().ok()
    }
}

/// Runs the grid on `system`, evaluating each solution with `evaluator`
/// (pass [`fair_submod_core::metrics::evaluate`] for oracle-exact
/// applications; a Monte-Carlo closure for IM).
///
/// Cells run concurrently (see the module docs); the result order is
/// the deterministic grid order `k → τ → ε → rep → solver`.
pub fn run_suite(
    system: &dyn DynUtilitySystem,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    registry: &SolverRegistry,
    grid: &GridConfig,
) -> Vec<CellOutcome> {
    let mut cells: Vec<(String, usize, f64, f64, usize)> = Vec::with_capacity(grid.num_cells());
    for &k in &grid.ks {
        for &tau in &grid.taus {
            for &epsilon in &grid.epsilons {
                for rep in 0..grid.repetitions.max(1) {
                    for solver in &grid.solvers {
                        cells.push((solver.clone(), k, tau, epsilon, rep));
                    }
                }
            }
        }
    }
    cells
        .into_par_iter()
        .map(|(solver, k, tau, epsilon, rep)| {
            let mut params = grid.base.clone();
            params.k = k;
            params.tau = tau;
            params.epsilon = epsilon;
            params.seed = grid.base.seed.wrapping_add(rep as u64);
            let outcome = registry.solve(&solver, system, &params).map(|mut report| {
                let eval = evaluator(&report.items);
                report.f = eval.f;
                report.g = eval.g;
                report.group_utilities = eval.group_means;
                report
            });
            CellOutcome {
                solver,
                k,
                tau,
                epsilon,
                rep,
                outcome,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::toy;

    #[test]
    fn suite_runs_all_paper_algorithms_on_figure1() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let grid = GridConfig::paper(2, 0.5).with_optimal();
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid);
        let names: Vec<&str> = results.iter().map(|r| r.solver.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Greedy",
                "Saturate",
                "SMSC",
                "BSM-TSGreedy",
                "BSM-Saturate",
                "BSM-Optimal"
            ]
        );
        let greedy_f = results[0].report().expect("greedy runs").f;
        for r in &results {
            let report = r.outcome.as_ref().expect("all paper solvers run on c=2");
            assert!(report.items.len() <= 2);
            assert!(report.f >= 0.0 && report.f <= 1.0);
            assert!(report.seconds >= 0.0);
            assert!(report.f <= greedy_f + 1e-9, "{} beat Greedy on f", r.solver);
        }
    }

    #[test]
    fn smsc_cell_is_a_typed_error_when_c_not_two() {
        let sys = toy::random_coverage(10, 30, 3, 0.2, 1);
        let registry = SolverRegistry::default();
        let grid = GridConfig::paper(3, 0.5);
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid);
        let smsc = results.iter().find(|r| r.solver == "SMSC").unwrap();
        assert!(matches!(
            smsc.outcome,
            Err(SolverError::UnsupportedGroupCount { got: 3, .. })
        ));
        // The rest of the grid point still ran.
        assert!(results.iter().filter(|r| r.outcome.is_ok()).count() >= 4);
    }

    #[test]
    fn grid_axes_expand_in_deterministic_order() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let mut grid = GridConfig::paper(2, 0.2);
        grid.solvers = vec!["Greedy".into(), "Random".into()];
        grid.taus = vec![0.2, 0.8];
        grid.repetitions = 2;
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &registry, &grid);
        assert_eq!(results.len(), grid.num_cells());
        assert_eq!(results.len(), 8);
        assert_eq!(results[0].tau, 0.2);
        assert_eq!(results[0].rep, 0);
        assert_eq!(results[2].rep, 1);
        assert_eq!(results[4].tau, 0.8);
        // Repetitions shift the seed: Random may differ across reps but
        // both reps of a deterministic solver agree.
        let greedy: Vec<&CellOutcome> = results.iter().filter(|r| r.solver == "Greedy").collect();
        assert_eq!(
            greedy[0].report().unwrap().items,
            greedy[1].report().unwrap().items
        );
    }
}
