//! Algorithm suite runner: one call per `(dataset, k, τ)` grid point,
//! timing every algorithm of the paper's comparison and evaluating
//! solutions with a caller-provided evaluator (oracle-exact for MC/FL,
//! Monte-Carlo for IM).
//!
//! The algorithm cells of a grid point are independent, so
//! [`run_suite`] runs them concurrently across worker threads; results
//! come back in the configured algorithm order and every cell is
//! deterministic (all solvers are), so concurrency affects wall-clock
//! time only. Per-cell `seconds` are still measured per algorithm but
//! on a shared machine concurrent cells can inflate one another's
//! wall-clock; for publication-grade runtime plots, pin
//! `RAYON_NUM_THREADS=1`.

use std::time::Instant;

use rayon::prelude::*;

use fair_submod_core::items::ItemId;
use fair_submod_core::metrics::Evaluation;
use fair_submod_core::prelude::*;
use fair_submod_core::system::UtilitySystem;

/// The algorithms of the paper's comparison (Section 5) plus sanity
/// baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Classic greedy on `f` (fairness-unaware upper anchor for `f`).
    Greedy,
    /// Saturate on `g` (fairness-only anchor).
    Saturate,
    /// SMSC baseline (only valid when `c = 2`).
    Smsc,
    /// BSM-TSGreedy (Algorithm 1).
    TsGreedy,
    /// BSM-Saturate (Algorithm 2).
    BsmSaturate,
    /// Exact `BSM-Optimal` via submodular branch-and-bound.
    BsmOptimal,
    /// Uniform random subset.
    Random,
    /// Top-k singleton items by `f`-gain.
    TopSingletons,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Greedy => "Greedy",
            Algo::Saturate => "Saturate",
            Algo::Smsc => "SMSC",
            Algo::TsGreedy => "BSM-TSGreedy",
            Algo::BsmSaturate => "BSM-Saturate",
            Algo::BsmOptimal => "BSM-Optimal",
            Algo::Random => "Random",
            Algo::TopSingletons => "TopSingletons",
        }
    }
}

/// Grid-point configuration for [`run_suite`].
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ`.
    pub tau: f64,
    /// BSM-Saturate's `ε` (paper default 0.05).
    pub epsilon: f64,
    /// Algorithms to run.
    pub algos: Vec<Algo>,
    /// Node budget for `BSM-Optimal`.
    pub exact_node_limit: u64,
    /// Disable Saturate's exact tiny-instance path (to benchmark the
    /// pure approximation).
    pub approximate_saturate: bool,
}

impl SuiteConfig {
    /// The paper's default comparison at a `(k, τ)` grid point.
    pub fn paper(k: usize, tau: f64) -> Self {
        Self {
            k,
            tau,
            epsilon: 0.05,
            algos: vec![
                Algo::Greedy,
                Algo::Saturate,
                Algo::Smsc,
                Algo::TsGreedy,
                Algo::BsmSaturate,
            ],
            exact_node_limit: 3_000_000,
            approximate_saturate: false,
        }
    }

    /// Adds `BSM-Optimal` to the comparison.
    pub fn with_optimal(mut self) -> Self {
        self.algos.push(Algo::BsmOptimal);
        self
    }
}

/// One measured grid point for one algorithm.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Algorithm display name.
    pub algo: &'static str,
    /// `k` of the grid point.
    pub k: usize,
    /// `τ` of the grid point.
    pub tau: f64,
    /// Utility `f(S)` per the experiment's evaluator.
    pub f: f64,
    /// Fairness `g(S)` per the experiment's evaluator.
    pub g: f64,
    /// The algorithm's internal `OPT'_g` estimate (0 when not computed).
    pub opt_g_estimate: f64,
    /// Whether the weak constraint `g(S) ≥ τ·OPT'_g` holds.
    pub weakly_feasible: bool,
    /// Wall-clock seconds for selection (not evaluation).
    pub seconds: f64,
    /// Solution size.
    pub size: usize,
    /// Whether the algorithm fell back to `S_g`.
    pub fell_back: bool,
    /// The chosen items.
    pub items: Vec<ItemId>,
}

fn saturate_config(k: usize, approximate: bool) -> SaturateConfig {
    let cfg = SaturateConfig::new(k);
    if approximate {
        cfg.approximate_only()
    } else {
        cfg
    }
}

/// Runs the configured algorithms on `system`, evaluating each solution
/// with `evaluator` (pass [`fair_submod_core::metrics::evaluate`] for
/// oracle-exact applications; a Monte-Carlo closure for IM).
///
/// Cells run concurrently (see the module docs); the result order
/// matches `cfg.algos`.
pub fn run_suite<S: UtilitySystem + Sync>(
    system: &S,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    cfg: &SuiteConfig,
) -> Vec<AlgoResult> {
    let algos: Vec<Algo> = cfg
        .algos
        .iter()
        .copied()
        // SMSC is undefined for c ≠ 2, as in the paper.
        .filter(|&algo| !(algo == Algo::Smsc && system.num_groups() != 2))
        .collect();
    algos
        .into_par_iter()
        .map(|algo| run_cell(system, evaluator, cfg, algo))
        .collect()
}

/// One `(algorithm, grid point)` cell: select, time, evaluate.
fn run_cell<S: UtilitySystem>(
    system: &S,
    evaluator: &(dyn Fn(&[ItemId]) -> Evaluation + Sync),
    cfg: &SuiteConfig,
    algo: Algo,
) -> AlgoResult {
    {
        let start = Instant::now();
        let (items, opt_g_estimate, fell_back) = match algo {
            Algo::Greedy => {
                let f = MeanUtility::new(system.num_users());
                let run = greedy(system, &f, &GreedyConfig::lazy(cfg.k));
                (run.items, 0.0, false)
            }
            Algo::Saturate => {
                let run = saturate(system, &saturate_config(cfg.k, cfg.approximate_saturate));
                (run.items, run.opt_g_estimate, false)
            }
            Algo::Smsc => {
                let run = smsc(system, &SmscConfig::new(cfg.k));
                (run.items, run.opt_g_estimate, run.fell_back)
            }
            Algo::TsGreedy => {
                let mut tcfg = TsGreedyConfig::new(cfg.k, cfg.tau);
                tcfg.saturate = saturate_config(cfg.k, cfg.approximate_saturate);
                let run = bsm_tsgreedy(system, &tcfg);
                (run.items, run.opt_g_estimate, run.fell_back)
            }
            Algo::BsmSaturate => {
                let mut bcfg = BsmSaturateConfig::new(cfg.k, cfg.tau).with_epsilon(cfg.epsilon);
                bcfg.saturate = saturate_config(cfg.k, cfg.approximate_saturate);
                let run = bsm_saturate(system, &bcfg);
                (run.items, run.opt_g_estimate, run.fell_back)
            }
            Algo::BsmOptimal => {
                let mut ecfg = ExactConfig::new(cfg.k, cfg.tau);
                ecfg.node_limit = cfg.exact_node_limit;
                let run = branch_and_bound_bsm(system, &ecfg);
                (run.items, run.opt_g, !run.complete)
            }
            Algo::Random => {
                let (items, _) = random_subset(system, cfg.k, 42);
                (items, 0.0, false)
            }
            Algo::TopSingletons => {
                let f = MeanUtility::new(system.num_users());
                let (items, _) = top_singletons(system, &f, cfg.k);
                (items, 0.0, false)
            }
        };
        let seconds = start.elapsed().as_secs_f64();
        let eval = evaluator(&items);
        AlgoResult {
            algo: algo.name(),
            k: cfg.k,
            tau: cfg.tau,
            f: eval.f,
            g: eval.g,
            opt_g_estimate,
            weakly_feasible: eval.g + 1e-9 >= cfg.tau * opt_g_estimate,
            seconds,
            size: eval.size,
            fell_back,
            items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::toy;

    #[test]
    fn suite_runs_all_paper_algorithms_on_figure1() {
        let sys = toy::figure1();
        let cfg = SuiteConfig::paper(2, 0.5).with_optimal();
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &cfg);
        let names: Vec<&str> = results.iter().map(|r| r.algo).collect();
        assert_eq!(
            names,
            vec![
                "Greedy",
                "Saturate",
                "SMSC",
                "BSM-TSGreedy",
                "BSM-Saturate",
                "BSM-Optimal"
            ]
        );
        for r in &results {
            assert!(r.size <= 2);
            assert!(r.f >= 0.0 && r.f <= 1.0);
            assert!(r.seconds >= 0.0);
        }
        // Greedy maximizes f among the suite.
        let greedy_f = results[0].f;
        for r in &results {
            assert!(r.f <= greedy_f + 1e-9, "{} beat Greedy on f", r.algo);
        }
    }

    #[test]
    fn smsc_skipped_when_c_not_two() {
        let sys = toy::random_coverage(10, 30, 3, 0.2, 1);
        let cfg = SuiteConfig::paper(3, 0.5);
        let results = run_suite(&sys, &|items| evaluate(&sys, items), &cfg);
        assert!(results.iter().all(|r| r.algo != "SMSC"));
    }
}
