//! Minimal `--key value` CLI parsing shared by the experiment binaries.

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Coarser sweeps / smaller datasets for smoke runs.
    pub quick: bool,
    /// CSV output directory.
    pub out_dir: String,
    /// Node count for the Pokec stand-in.
    pub pokec_nodes: usize,
    /// Monte-Carlo evaluation runs for IM experiments.
    pub mc_runs: usize,
    /// RR sets for the RIS oracle.
    pub rr_sets: usize,
    /// Scenario spec to run (built-in name or path to a JSON file);
    /// used by the `scenarios` binary.
    pub spec: Option<String>,
    /// List the built-in specs and exit (`scenarios --list`).
    pub list: bool,
    /// Exit non-zero if any cell errored or returned an empty solution
    /// (`scenarios --strict`, used by the CI smoke run).
    pub strict: bool,
    /// Path for the JSON run report (default `<out>/<spec>_report.json`).
    pub report: Option<String>,
    /// Restrict every grid job to this comma-separated subset of
    /// registry names (`scenarios --solvers Greedy,BSM-Saturate`), so a
    /// spec can be rerun for a few solvers without editing the JSON.
    pub solvers: Option<Vec<String>>,
    /// Disable warm k-axis sweeps: run every grid cell from the empty
    /// set (`--cold`), as the pre-session harness did. The CI grid-reuse
    /// smoke diffs warm against cold solutions with this flag.
    pub cold: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            quick: false,
            out_dir: "experiments".into(),
            pokec_nodes: 100_000,
            mc_runs: 10_000,
            rr_sets: 20_000,
            spec: None,
            list: false,
            strict: false,
            report: None,
            solvers: None,
            cold: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    out.quick = true;
                    out.pokec_nodes = out.pokec_nodes.min(20_000);
                    out.mc_runs = out.mc_runs.min(1_000);
                    out.rr_sets = out.rr_sets.min(5_000);
                }
                "--out" => out.out_dir = expect_value(&mut it, "--out"),
                "--pokec-nodes" => {
                    out.pokec_nodes = expect_value(&mut it, "--pokec-nodes")
                        .parse()
                        .expect("--pokec-nodes takes an integer")
                }
                "--mc-runs" => {
                    out.mc_runs = expect_value(&mut it, "--mc-runs")
                        .parse()
                        .expect("--mc-runs takes an integer")
                }
                "--rr-sets" => {
                    out.rr_sets = expect_value(&mut it, "--rr-sets")
                        .parse()
                        .expect("--rr-sets takes an integer")
                }
                "--spec" => out.spec = Some(expect_value(&mut it, "--spec")),
                "--list" => out.list = true,
                "--strict" => out.strict = true,
                "--report" => out.report = Some(expect_value(&mut it, "--report")),
                "--solvers" => {
                    out.solvers = Some(
                        expect_value(&mut it, "--solvers")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--cold" => out.cold = true,
                other => panic!("unknown flag {other}"),
            }
        }
        out
    }
}

fn expect_value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let a = ExpArgs::from_iter(Vec::<String>::new());
        assert!(!a.quick);
        assert_eq!(a.pokec_nodes, 100_000);
        assert!(a.spec.is_none() && !a.strict && !a.list);
        let b = ExpArgs::from_iter(
            ["--quick", "--out", "/tmp/x", "--mc-runs", "123"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(b.quick);
        assert_eq!(b.out_dir, "/tmp/x");
        assert_eq!(b.mc_runs, 123);
        assert!(b.pokec_nodes <= 20_000);
    }

    #[test]
    fn scenario_flags_parse() {
        let a = ExpArgs::from_iter(
            ["--spec", "fig3", "--strict", "--report", "r.json", "--list"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.spec.as_deref(), Some("fig3"));
        assert!(a.strict && a.list);
        assert_eq!(a.report.as_deref(), Some("r.json"));
        assert!(a.solvers.is_none() && !a.cold);
    }

    #[test]
    fn solver_filter_and_cold_parse() {
        let a = ExpArgs::from_iter(
            ["--solvers", "Greedy, BSM-Saturate,", "--cold"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(
            a.solvers.as_deref(),
            Some(&["Greedy".to_string(), "BSM-Saturate".to_string()][..])
        );
        assert!(a.cold);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = ExpArgs::from_iter(["--nope".to_string()]);
    }
}
