//! Aligned-table stdout reporting and CSV export.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::harness::CellOutcome;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes CSV into `dir/name.csv` (directory created as needed).
    pub fn write_csv(&self, dir: &str, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut file = fs::File::create(path)?;
        writeln!(file, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(file, "{}", escaped.join(","))?;
        }
        Ok(())
    }
}

/// Standard headers for solver-comparison tables. Every grid axis —
/// including `epsilon` (the x-axis of the fig9 sweep) and `rep` — gets
/// a column, so cells stay distinguishable in the CSV artifact.
pub const RESULT_HEADERS: &[&str] = &[
    "dataset",
    "solver",
    "k",
    "tau",
    "epsilon",
    "rep",
    "f(S)",
    "g(S)",
    "tau*OPT'_g",
    "weak_ok",
    "size",
    "time_s",
    "status",
];

/// Appends grid cells to a table with [`RESULT_HEADERS`]. Rejected
/// cells (typed [`fair_submod_core::engine::SolverError`]s) keep their
/// row, with the error in the `status` column, so capability gaps are
/// visible in the artifact instead of silently dropped.
pub fn push_results(table: &mut Table, dataset: &str, results: &[CellOutcome]) {
    for r in results {
        let key = vec![
            dataset.to_string(),
            r.solver.clone(),
            r.k.to_string(),
            format!("{:.2}", r.tau),
            format!("{:.2}", r.epsilon),
            r.rep.to_string(),
        ];
        match &r.outcome {
            Ok(report) => {
                let mut row = key;
                row.extend([
                    format!("{:.6}", report.f),
                    format!("{:.6}", report.g),
                    format!("{:.6}", r.tau * report.opt_g_estimate),
                    if report.weakly_feasible() {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_string(),
                    report.items.len().to_string(),
                    format!("{:.3}", report.seconds),
                    "ok".to_string(),
                ]);
                table.push(row);
            }
            Err(error) => {
                let mut row = key;
                row.extend(vec!["-".to_string(); 6]);
                row.push(error.to_string());
                table.push(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a  bbbb"));
        assert!(s.contains("100     x"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec!["1,5".into(), "ok".into()]);
        let dir = std::env::temp_dir().join("fair-submod-test-csv");
        let dir = dir.to_str().unwrap();
        t.write_csv(dir, "demo").unwrap();
        let content = std::fs::read_to_string(format!("{dir}/demo.csv")).unwrap();
        assert!(content.starts_with("x,y\n"));
        assert!(content.contains("\"1,5\",ok"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
