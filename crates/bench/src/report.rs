//! Aligned-table stdout reporting and CSV export.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::harness::AlgoResult;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes CSV into `dir/name.csv` (directory created as needed).
    pub fn write_csv(&self, dir: &str, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut file = fs::File::create(path)?;
        writeln!(file, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(file, "{}", escaped.join(","))?;
        }
        Ok(())
    }
}

/// Standard headers for algorithm-comparison tables.
pub const RESULT_HEADERS: &[&str] = &[
    "dataset",
    "algo",
    "k",
    "tau",
    "f(S)",
    "g(S)",
    "tau*OPT'_g",
    "weak_ok",
    "size",
    "time_s",
];

/// Appends suite results to a table with [`RESULT_HEADERS`].
pub fn push_results(table: &mut Table, dataset: &str, results: &[AlgoResult]) {
    for r in results {
        table.push(vec![
            dataset.to_string(),
            r.algo.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.tau),
            format!("{:.6}", r.f),
            format!("{:.6}", r.g),
            format!("{:.6}", r.tau * r.opt_g_estimate),
            if r.weakly_feasible { "yes" } else { "NO" }.to_string(),
            r.size.to_string(),
            format!("{:.3}", r.seconds),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a  bbbb"));
        assert!(s.contains("100     x"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec!["1,5".into(), "ok".into()]);
        let dir = std::env::temp_dir().join("fair-submod-test-csv");
        let dir = dir.to_str().unwrap();
        t.write_csv(dir, "demo").unwrap();
        let content = std::fs::read_to_string(format!("{dir}/demo.csv")).unwrap();
        assert!(content.starts_with("x,y\n"));
        assert!(content.contains("\"1,5\",ok"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
