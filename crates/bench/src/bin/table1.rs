//! Alias binary: loads the built-in `table1` scenario spec
//! (`crates/bench/specs/table1.json`) and runs it through the shared
//! scenario runner. See `scenarios --list` and the crate docs.

fn main() {
    fair_submod_bench::scenario::alias_main("table1");
}
