//! Table 1: statistics of the datasets in the MC and IM experiments.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::report::Table;
use fair_submod_datasets::tables::{format_groups, table1_row};
use fair_submod_datasets::{dblp_like, facebook_like, pokec_like, rand_mc, seeds, PokecAttr};

fn main() {
    let args = ExpArgs::parse();
    let mut table = Table::new(
        "Table 1: statistics of datasets in the MC and IM experiments",
        &["dataset", "n (= m)", "|E|", "groups"],
    );
    let datasets = vec![
        rand_mc(2, 500, seeds::RAND),
        rand_mc(4, 500, seeds::RAND + 1),
        rand_mc(2, 100, seeds::RAND + 2),
        rand_mc(4, 100, seeds::RAND + 3),
        facebook_like(2, seeds::FACEBOOK),
        facebook_like(4, seeds::FACEBOOK),
        dblp_like(seeds::DBLP),
        pokec_like(args.pokec_nodes, PokecAttr::Gender, seeds::POKEC),
        pokec_like(args.pokec_nodes, PokecAttr::Age, seeds::POKEC),
    ];
    for d in &datasets {
        let row = table1_row(d);
        table.push(vec![
            row.dataset,
            row.n.to_string(),
            row.edges.to_string(),
            format_groups(&row.groups),
        ]);
    }
    table.print();
    table
        .write_csv(&args.out_dir, "table1")
        .expect("write table1 csv");
}
