//! Figure 9 (Appendix B): effect of BSM-Saturate's error parameter ε.
//!
//! Sweeps ε ∈ {0.05, 0.1, …, 0.5} at τ = 0.8, k = 5 on the RAND
//! datasets for MC (c=2 and c=4), IM (c=2), and FL (c=2). The paper's
//! observation to reproduce: `f(S)` and `g(S)` barely move until
//! ε approaches 0.5.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::report::Table;
use fair_submod_core::algorithms::bsm_saturate::{bsm_saturate, BsmSaturateConfig};
use fair_submod_core::metrics::{evaluate, Evaluation};
use fair_submod_core::system::UtilitySystem;
use fair_submod_datasets::{rand_fl, rand_mc, seeds};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn sweep<S: UtilitySystem>(
    table: &mut Table,
    dataset: &str,
    system: &S,
    evaluator: &dyn Fn(&[u32]) -> Evaluation,
    epsilons: &[f64],
) {
    for &eps in epsilons {
        let cfg = BsmSaturateConfig::new(5, 0.8).with_epsilon(eps);
        let start = std::time::Instant::now();
        let out = bsm_saturate(system, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let eval = evaluator(&out.items);
        table.push(vec![
            dataset.to_string(),
            format!("{eps:.2}"),
            format!("{:.6}", eval.f),
            format!("{:.6}", eval.g),
            format!("{:.3}", secs),
        ]);
    }
}

fn main() {
    let args = ExpArgs::parse();
    let epsilons: Vec<f64> = if args.quick {
        vec![0.05, 0.25, 0.5]
    } else {
        vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]
    };
    let mut table = Table::new(
        "Figure 9: BSM-Saturate, varying epsilon (tau = 0.8, k = 5)",
        &["dataset", "epsilon", "f(S)", "g(S)", "time_s"],
    );

    for c in [2usize, 4] {
        let dataset = rand_mc(c, 500, seeds::RAND + (c as u64 - 2) / 2);
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig9] MC {} ...", dataset.name);
        sweep(
            &mut table,
            &format!("{} (MC)", dataset.name),
            &oracle,
            &|items| evaluate(&oracle, items),
            &epsilons,
        );
    }

    {
        let dataset = rand_mc(2, 100, seeds::RAND + 2);
        let model = DiffusionModel::ic(0.1);
        eprintln!("[fig9] IM {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::RAND ^ 0x33);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                args.mc_runs,
                seeds::RAND ^ 0x44,
            )
        };
        sweep(
            &mut table,
            &format!("{} (IM)", dataset.name),
            &oracle,
            &evaluator,
            &epsilons,
        );
    }

    {
        let dataset = rand_fl(2, seeds::FL);
        let oracle = dataset.oracle();
        eprintln!("[fig9] FL {} ...", dataset.name);
        sweep(
            &mut table,
            &format!("{} (FL)", dataset.name),
            &oracle,
            &|items| evaluate(&oracle, items),
            &epsilons,
        );
    }

    table.print();
    table.write_csv(&args.out_dir, "fig9").expect("write csv");
}
