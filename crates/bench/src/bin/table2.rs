//! Table 2: statistics of the datasets in the FL experiments.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::report::Table;
use fair_submod_datasets::tables::{format_groups, table2_row};
use fair_submod_datasets::{adult_like, foursquare_like, rand_fl, seeds, AdultSize, City};

fn main() {
    let args = ExpArgs::parse();
    let mut table = Table::new(
        "Table 2: statistics of datasets in the FL experiments",
        &["dataset", "n", "m", "d", "groups"],
    );
    let datasets = vec![
        rand_fl(2, seeds::FL),
        rand_fl(3, seeds::FL + 1),
        adult_like(AdultSize::SmallRace, seeds::FL + 2),
        adult_like(AdultSize::Gender, seeds::FL + 3),
        adult_like(AdultSize::Race, seeds::FL + 3),
        foursquare_like(City::Nyc, seeds::FL + 4),
        foursquare_like(City::Tky, seeds::FL + 5),
    ];
    for d in &datasets {
        let row = table2_row(d);
        table.push(vec![
            row.dataset,
            row.n.to_string(),
            row.m.to_string(),
            row.d.to_string(),
            format_groups(&row.groups),
        ]);
    }
    table.print();
    table
        .write_csv(&args.out_dir, "table2")
        .expect("write table2 csv");
}
