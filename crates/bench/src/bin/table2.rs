//! Alias binary: loads the built-in `table2` scenario spec
//! (`crates/bench/specs/table2.json`) and runs it through the shared
//! scenario runner. See `scenarios --list` and the crate docs.

fn main() {
    fair_submod_bench::scenario::alias_main("table2");
}
