//! Figure 6: influence maximization, varying the solution size k
//! (τ = 0.8).
//!
//! Datasets: Facebook (Age, c=2/c=4), k ∈ {5..50}, and Pokec (Gender /
//! Age), k ∈ {10..100}. Dense graphs use IC with p = 0.01 (the paper's
//! alternative setting) so diffusion stays subcritical as in the paper's
//! reported magnitudes; evaluation is Monte-Carlo.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_datasets::{facebook_like, pokec_like, seeds, PokecAttr};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn main() {
    let args = ExpArgs::parse();
    let tau = 0.8;
    let model = DiffusionModel::ic(0.01);
    let mut table = Table::new(
        "Figure 6: IM, varying k (tau = 0.8, IC p = 0.01)",
        RESULT_HEADERS,
    );

    let fb_ks: Vec<usize> = if args.quick {
        vec![10, 30, 50]
    } else {
        (1..=10).map(|i| i * 5).collect()
    };
    for c in [2usize, 4] {
        let dataset = facebook_like(c, seeds::FACEBOOK);
        eprintln!("[fig6] {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::FACEBOOK ^ 0x11);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                args.mc_runs,
                seeds::FACEBOOK ^ 0x22,
            )
        };
        for &k in &fb_ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &evaluator, &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    let pokec_ks: Vec<usize> = if args.quick {
        vec![10, 40, 100]
    } else {
        (1..=10).map(|i| i * 10).collect()
    };
    // Monte-Carlo on the Pokec stand-in is the dominant cost; cap runs.
    let pokec_runs = args.mc_runs.min(2_000);
    for attr in [PokecAttr::Gender, PokecAttr::Age] {
        let dataset = pokec_like(args.pokec_nodes, attr, seeds::POKEC);
        eprintln!("[fig6] {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::POKEC ^ 0x11);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                pokec_runs,
                seeds::POKEC ^ 0x22,
            )
        };
        for &k in &pokec_ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &evaluator, &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig6").expect("write csv");
}
