//! Load generator for the solve daemon (`fair-submod-service`): hammers
//! a running daemon with a mixed read/solve workload over keep-alive
//! connections and writes p50/p95/p99 latency and throughput to
//! `BENCH_service.json`.
//!
//! The workload rotates three instance recipes (MC `c=2`, MC `c=4`,
//! FL `c=2`) across three solvers, interleaved with `/healthz` and
//! `/registry` reads — roughly 60% solves, 30% health checks, 10%
//! registry listings. A warmup pass touches every recipe once so the
//! timed phase measures the *resident* serving path (instance-cache
//! hits), which is the daemon's whole point; the JSON notes the
//! store's hit/miss counters so the cache effectiveness is part of the
//! artifact.
//!
//! Usage:
//!
//! ```text
//! # against a running daemon
//! cargo run -p fair-submod-bench --release --bin loadgen -- --addr 127.0.0.1:7878
//! # spawn a --quick daemon on an ephemeral port, then hammer it (CI)
//! cargo run -p fair-submod-bench --release --bin loadgen -- --quick --spawn
//! ```
//!
//! Flags: `--addr HOST:PORT`, `--spawn` (start `fair-submod-service`
//! itself and kill it afterwards), `--quick` (fewer requests, smaller
//! instances), `--requests N`, `--workers N`, `--out PATH`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::json::{obj, parse_bytes, Value};

// ── Minimal HTTP/1.1 client (keep-alive) ─────────────────────────────

struct Reply {
    status: u16,
    body: Vec<u8>,
}

fn http_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<Reply, String> {
    let _ = stream.set_nodelay(true);
    // One write per request (see the server's write_response): keeps
    // Nagle + delayed-ACK from inserting ~40ms per round trip.
    let mut message = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    message.extend_from_slice(body.as_bytes());
    stream
        .write_all(&message)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;

    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Reply { status, body })
}

// ── Workload ─────────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Class {
    Solve,
    Healthz,
    Registry,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Solve => "solve",
            Class::Healthz => "healthz",
            Class::Registry => "registry",
        }
    }
}

fn solve_bodies(quick: bool) -> Vec<String> {
    let n = if quick { 80 } else { 300 };
    let recipes = [
        (
            format!(r#"{{"kind": "rand_mc", "c": 2, "n": {n}}}"#),
            "coverage",
        ),
        (
            format!(r#"{{"kind": "rand_mc", "c": 4, "n": {n}}}"#),
            "coverage",
        ),
        (r#"{"kind": "rand_fl", "c": 2}"#.to_string(), "facility"),
    ];
    let solvers = ["Greedy", "BSM-TSGreedy", "BSM-Saturate"];
    let mut bodies = Vec::new();
    for (recipe, substrate) in &recipes {
        for solver in solvers {
            bodies.push(format!(
                r#"{{"dataset": {recipe}, "substrate": "{substrate}", "solver": "{solver}", "params": {{"k": 5, "tau": 0.8}}}}"#
            ));
        }
    }
    bodies
}

/// Deterministic 60/30/10 request mix by global request index.
fn class_for(index: usize) -> Class {
    match index % 10 {
        0..=5 => Class::Solve,
        6..=8 => Class::Healthz,
        _ => Class::Registry,
    }
}

// ── Stats ────────────────────────────────────────────────────────────

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] * 1e3
}

fn class_stats(label: &str, latencies: &mut Vec<f64>) -> Value {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    obj([
        ("class", Value::Str(label.into())),
        ("count", Value::Num(latencies.len() as f64)),
        ("p50_ms", Value::Num(percentile_ms(latencies, 0.50))),
        ("p95_ms", Value::Num(percentile_ms(latencies, 0.95))),
        ("p99_ms", Value::Num(percentile_ms(latencies, 0.99))),
        ("mean_ms", Value::Num(mean * 1e3)),
        (
            "max_ms",
            Value::Num(latencies.last().copied().unwrap_or(0.0) * 1e3),
        ),
    ])
}

// ── Daemon spawning / readiness ──────────────────────────────────────

/// Kill-on-drop handle for the spawned daemon: whether loadgen exits
/// cleanly or panics mid-run (failed warmup, worker error), the child
/// is reaped — CI must never be left with an orphaned release daemon.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `cargo run -p fair-submod-service` and parses the bound
/// address off its stdout handshake line.
fn spawn_daemon(quick: bool) -> (DaemonGuard, String) {
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args([
        "run",
        "-p",
        "fair-submod-service",
        "--release",
        "--",
        "--addr",
        "127.0.0.1:0",
    ]);
    if quick {
        cmd.arg("--quick");
    }
    // Guard the child before the fallible handshake below, so even a
    // panic while waiting for it reaps the process.
    let mut child = DaemonGuard(
        cmd.stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn fair-submod-service"),
    );
    let stdout = child.0.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before its listening handshake");
        if let Some(addr) = line
            .trim()
            .strip_prefix("fair-submod-service listening on ")
        {
            return (child, addr.to_string());
        }
    }
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            if let Ok(reply) = http_request(&mut stream, "GET", "/healthz", "") {
                if reply.status == 200 {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon at {addr} not ready within 60s"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

// ── Main ─────────────────────────────────────────────────────────────

fn main() {
    let mut addr: Option<String> = None;
    let mut spawn = false;
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--spawn" => spawn = true,
            "--quick" => quick = true,
            "--requests" => {
                requests = Some(
                    value("--requests")
                        .parse()
                        .expect("--requests takes an integer"),
                )
            }
            "--workers" => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .expect("--workers takes an integer"),
                )
            }
            "--out" => out_path = value("--out"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    let total_requests = requests.unwrap_or(if quick { 200 } else { 1_000 });
    let num_workers = workers.unwrap_or(if quick { 2 } else { 4 }).max(1);

    let (child, addr) = match addr {
        Some(addr) => (None, addr),
        None => {
            assert!(spawn, "need --addr HOST:PORT or --spawn");
            let (child, addr) = spawn_daemon(quick);
            (Some(child), addr)
        }
    };
    eprintln!("[loadgen] target daemon at {addr}");
    wait_ready(&addr);

    // Warmup: touch every solve body once so the timed phase measures
    // the resident (instance-cache-hit) path.
    let bodies = Arc::new(solve_bodies(quick));
    {
        let mut stream = TcpStream::connect(&addr).expect("connect for warmup");
        for body in bodies.iter() {
            let reply = http_request(&mut stream, "POST", "/solve", body)
                .unwrap_or_else(|e| panic!("warmup solve failed: {e}"));
            assert_eq!(
                reply.status,
                200,
                "warmup solve rejected: {}",
                String::from_utf8_lossy(&reply.body)
            );
        }
    }
    eprintln!("[loadgen] warmed {} solve cells; timing {total_requests} requests on {num_workers} workers ...", bodies.len());

    // Timed phase: workers pull global request indices off an atomic
    // cursor, each over its own keep-alive connection.
    let cursor = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..num_workers)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let bodies = Arc::clone(&bodies);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("worker connect");
                let mut samples: Vec<(Class, f64)> = Vec::new();
                let mut errors = 0usize;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total_requests {
                        return (samples, errors);
                    }
                    let class = class_for(i);
                    let (method, path, body): (&str, &str, &str) = match class {
                        Class::Solve => ("POST", "/solve", &bodies[i % bodies.len()]),
                        Class::Healthz => ("GET", "/healthz", ""),
                        Class::Registry => ("GET", "/registry", ""),
                    };
                    let start = Instant::now();
                    match http_request(&mut stream, method, path, body) {
                        Ok(reply) if reply.status == 200 => {
                            samples.push((class, start.elapsed().as_secs_f64()));
                        }
                        _ => errors += 1,
                    }
                }
            })
        })
        .collect();
    let mut all: Vec<(Class, f64)> = Vec::with_capacity(total_requests);
    let mut errors = 0usize;
    for handle in handles {
        let (samples, worker_errors) = handle.join().expect("worker panicked");
        all.extend(samples);
        errors += worker_errors;
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    // Final daemon counters: the cache-effectiveness half of the story.
    let (cache_hits, cache_misses, instances) = {
        let mut stream = TcpStream::connect(&addr).expect("connect for counters");
        let reply = http_request(&mut stream, "GET", "/instances", "").expect("GET /instances");
        let body = parse_bytes(&reply.body).expect("instances JSON");
        (
            body.get("hits").and_then(Value::as_u64).unwrap_or(0),
            body.get("misses").and_then(Value::as_u64).unwrap_or(0),
            body.get("len").and_then(Value::as_u64).unwrap_or(0),
        )
    };
    // Dropping the guard kills and reaps the spawned daemon (and the
    // guard's Drop also covers every panic path above).
    drop(child);

    let mut classes: Vec<Value> = Vec::new();
    let mut overall: Vec<f64> = all.iter().map(|&(_, s)| s).collect();
    for class in [Class::Solve, Class::Healthz, Class::Registry] {
        let mut latencies: Vec<f64> = all
            .iter()
            .filter(|&&(c, _)| c == class)
            .map(|&(_, s)| s)
            .collect();
        classes.push(class_stats(class.label(), &mut latencies));
    }
    let report = obj([
        ("generated_by", Value::Str("loadgen".into())),
        ("quick", Value::Bool(quick)),
        ("addr", Value::Str(addr.clone())),
        ("workers", Value::Num(num_workers as f64)),
        ("requests", Value::Num(total_requests as f64)),
        ("ok", Value::Num(all.len() as f64)),
        ("errors", Value::Num(errors as f64)),
        ("wall_seconds", Value::Num(wall_seconds)),
        (
            "throughput_rps",
            Value::Num(all.len() as f64 / wall_seconds.max(1e-9)),
        ),
        ("cache_hits", Value::Num(cache_hits as f64)),
        ("cache_misses", Value::Num(cache_misses as f64)),
        ("resident_instances", Value::Num(instances as f64)),
        ("overall", class_stats("overall", &mut overall)),
        ("classes", Value::Arr(classes)),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write BENCH_service.json");
    eprintln!(
        "[loadgen] {} ok / {} errors in {:.2}s ({:.0} req/s); cache {}h/{}m; wrote {}",
        all.len(),
        errors,
        wall_seconds,
        all.len() as f64 / wall_seconds.max(1e-9),
        cache_hits,
        cache_misses,
        out_path
    );
    assert_eq!(errors, 0, "loadgen saw non-200 responses");
    assert!(
        cache_hits > 0,
        "repeated recipes never hit the instance cache"
    );
}
