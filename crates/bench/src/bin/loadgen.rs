//! Load generator for the solve daemon (`fair-submod-service`): drives
//! a daemon with a mixed read/solve workload over many concurrent
//! keep-alive connections and writes p50/p95/p99/max latency,
//! throughput, and error/shed counts to `BENCH_service.json`.
//!
//! The client is itself event-driven (one thread, readiness loop over
//! the workspace `polling` shim), so it can hold 1k+ concurrent
//! connections without a thread per connection — the same architecture
//! as the server under test, which keeps the measurement from being
//! client-bound at high concurrency.
//!
//! The workload rotates three instance recipes (MC `c=2`, MC `c=4`,
//! FL `c=2`) across three solvers, interleaved with `/healthz` and
//! `/registry` reads — roughly 60% solves, 30% health checks, 10%
//! registry listings. A warmup pass touches every recipe once so the
//! timed phase measures the *resident* serving path (instance-cache
//! hits), which is the daemon's whole point; the JSON notes the
//! store's hit/miss counters so the cache effectiveness is part of the
//! artifact.
//!
//! Usage:
//!
//! ```text
//! # against a running daemon, 256 keep-alive connections
//! cargo run -p fair-submod-bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --connections 256
//! # CI: spawn both servers, sweep 16/256/1024 connections, gate
//! cargo run -p fair-submod-bench --release --bin loadgen -- \
//!     --quick --spawn --compare --min-rps 200 --max-p99-ms 2000
//! ```
//!
//! Flags:
//!
//! - `--addr HOST:PORT` target a running daemon / `--spawn` start one
//! - `--blocking` spawn (or label) the thread-per-connection server
//! - `--compare` spawn event-driven AND blocking daemons, sweep both,
//!   and record the throughput ratio at the largest connection count
//! - `--connections N` concurrent connections (default 16)
//! - `--sweep` run at 16, 256, and 1024 connections instead of one N
//! - `--keepalive` / `--no-keepalive` reuse connections (default on)
//! - `--pipeline D` keep D requests in flight per connection (default 1)
//! - `--mode closed|open` closed-loop (issue-on-completion) or
//!   open-loop (issue on a fixed schedule; latencies count queueing
//!   from the scheduled instant, so there is no coordinated omission)
//! - `--rate R` open-loop arrival rate in requests/second
//! - `--requests N` requests per run, `--quick`, `--out PATH`
//! - `--min-rps F` / `--max-p99-ms F` CI gates on the event server's
//!   largest-connection-count run (non-zero exit when violated)

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use polling::{Interest, Poller};
use serde::json::{obj, parse_bytes, Value};

// ── Blocking HTTP/1.1 helper (warmup + counters only) ────────────────

struct Reply {
    status: u16,
    body: Vec<u8>,
}

fn http_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<Reply, String> {
    let _ = stream.set_nodelay(true);
    let mut message = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    message.extend_from_slice(body.as_bytes());
    stream
        .write_all(&message)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;

    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Reply { status, body })
}

// ── Workload ─────────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Class {
    Solve,
    Healthz,
    Registry,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Solve => "solve",
            Class::Healthz => "healthz",
            Class::Registry => "registry",
        }
    }
}

fn solve_bodies(quick: bool) -> Vec<String> {
    let n = if quick { 80 } else { 300 };
    let recipes = [
        (
            format!(r#"{{"kind": "rand_mc", "c": 2, "n": {n}}}"#),
            "coverage",
        ),
        (
            format!(r#"{{"kind": "rand_mc", "c": 4, "n": {n}}}"#),
            "coverage",
        ),
        (r#"{"kind": "rand_fl", "c": 2}"#.to_string(), "facility"),
    ];
    let solvers = ["Greedy", "BSM-TSGreedy", "BSM-Saturate"];
    let mut bodies = Vec::new();
    for (recipe, substrate) in &recipes {
        for solver in solvers {
            bodies.push(format!(
                r#"{{"dataset": {recipe}, "substrate": "{substrate}", "solver": "{solver}", "params": {{"k": 5, "tau": 0.8}}}}"#
            ));
        }
    }
    bodies
}

/// Deterministic 60/30/10 request mix by global request index.
fn class_for(index: usize) -> Class {
    match index % 10 {
        0..=5 => Class::Solve,
        6..=8 => Class::Healthz,
        _ => Class::Registry,
    }
}

// ── Stats ────────────────────────────────────────────────────────────

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] * 1e3
}

fn class_stats(label: &str, latencies: &mut Vec<f64>) -> Value {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    obj([
        ("class", Value::Str(label.into())),
        ("count", Value::Num(latencies.len() as f64)),
        ("p50_ms", Value::Num(percentile_ms(latencies, 0.50))),
        ("p95_ms", Value::Num(percentile_ms(latencies, 0.95))),
        ("p99_ms", Value::Num(percentile_ms(latencies, 0.99))),
        ("mean_ms", Value::Num(mean * 1e3)),
        (
            "max_ms",
            Value::Num(latencies.last().copied().unwrap_or(0.0) * 1e3),
        ),
    ])
}

// ── Event-driven client ──────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Closed,
    Open,
}

#[derive(Clone)]
struct LoadOpts {
    connections: usize,
    pipeline: usize,
    keepalive: bool,
    mode: Mode,
    /// Open-loop arrival rate across the whole pool (requests/second).
    rate: f64,
    total: usize,
}

struct RunResult {
    samples: Vec<(Class, f64)>,
    errors: usize,
    shed: usize,
    wall_seconds: f64,
}

/// Incremental HTTP/1.1 response scan: `Ok(Some((status, consumed)))`
/// once a full head + `Content-Length` body is buffered.
fn try_parse_response(buf: &[u8]) -> Result<Option<(u16, usize)>, String> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line in {head:?}"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    Ok((buf.len() >= total).then_some((status, total)))
}

struct ClientConn {
    stream: TcpStream,
    write_buf: Vec<u8>,
    write_pos: usize,
    read_buf: Vec<u8>,
    /// FIFO of in-flight requests: (class, latency clock start).
    outstanding: VecDeque<(Class, Instant)>,
    interest: Interest,
    /// Open-loop: when this connection issues its next request.
    next_due: Instant,
}

fn connect_nonblocking(addr: &str) -> ClientConn {
    // Retry briefly: a concurrent burst of connects can overflow the
    // listener backlog while the server drains its accept queue.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    };
    stream.set_nodelay(true).expect("nodelay");
    stream.set_nonblocking(true).expect("nonblocking");
    ClientConn {
        stream,
        write_buf: Vec::new(),
        write_pos: 0,
        read_buf: Vec::new(),
        outstanding: VecDeque::new(),
        interest: Interest::READABLE,
        next_due: Instant::now(),
    }
}

impl ClientConn {
    fn encode(&mut self, class: Class, bodies: &[String], index: usize, keepalive: bool) {
        let (method, path, body): (&str, &str, &str) = match class {
            Class::Solve => ("POST", "/solve", &bodies[index % bodies.len()]),
            Class::Healthz => ("GET", "/healthz", ""),
            Class::Registry => ("GET", "/registry", ""),
        };
        let connection = if keepalive { "keep-alive" } else { "close" };
        self.write_buf.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        self.write_buf.extend_from_slice(body.as_bytes());
    }

    /// Writes as much buffered request data as the socket accepts.
    /// `false` on a fatal transport error.
    fn flush(&mut self) -> bool {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        true
    }

    fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

/// Drives `opts.total` requests through `opts.connections` concurrent
/// connections with a single-threaded readiness loop.
fn run_load(addr: &str, bodies: &[String], opts: &LoadOpts) -> RunResult {
    let mut poller = Poller::new().expect("poller");
    let mut conns: Vec<ClientConn> = (0..opts.connections)
        .map(|_| connect_nonblocking(addr))
        .collect();
    for (token, conn) in conns.iter_mut().enumerate() {
        poller
            .register(conn.stream.as_raw_fd(), token, conn.interest)
            .expect("register");
    }

    let started = Instant::now();
    let mut cursor = 0usize; // next global request index
    let mut samples: Vec<(Class, f64)> = Vec::with_capacity(opts.total);
    let mut errors = 0usize;
    let mut shed = 0usize;
    let deadline = started + Duration::from_secs(600);

    // Open-loop: stagger each connection's schedule across one period
    // so arrivals spread evenly instead of beating.
    if opts.mode == Mode::Open {
        let period = Duration::from_secs_f64(opts.connections as f64 / opts.rate.max(1e-9));
        for (i, conn) in conns.iter_mut().enumerate() {
            conn.next_due = started + period.mul_f64(i as f64 / opts.connections as f64);
        }
    }

    // A connection's slot in the poller is its index; interest changes
    // are applied lazily after each burst of work.
    let mut events = Vec::new();
    macro_rules! issue_on {
        ($conn:expr, $clock:expr) => {
            if cursor < opts.total {
                let class = class_for(cursor);
                $conn.encode(class, bodies, cursor, opts.keepalive);
                $conn.outstanding.push_back((class, $clock));
                cursor += 1;
            }
        };
    }

    // Prime the closed loop: `pipeline` requests in flight per
    // connection (the open loop issues purely on schedule).
    if opts.mode == Mode::Closed {
        for conn in conns.iter_mut() {
            for _ in 0..opts.pipeline {
                issue_on!(conn, Instant::now());
            }
        }
    }

    let mut dead: Vec<usize> = Vec::new();
    loop {
        let completed = samples.len() + errors + shed;
        if completed >= opts.total {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "loadgen run wedged: {completed}/{} after 600s",
            opts.total
        );

        // Flush pending writes and sync interest before sleeping.
        for (token, conn) in conns.iter_mut().enumerate() {
            if conn.wants_write() && !conn.flush() {
                dead.push(token);
                continue;
            }
            let desired = if conn.wants_write() {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            if desired != conn.interest {
                conn.interest = desired;
                poller
                    .modify(conn.stream.as_raw_fd(), token, desired)
                    .expect("modify");
            }
        }

        let timeout = match opts.mode {
            Mode::Closed => Duration::from_millis(1000),
            Mode::Open => conns
                .iter()
                .filter(|c| !c.outstanding.is_empty() || cursor < opts.total)
                .map(|c| c.next_due.saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(Duration::from_millis(1000))
                .min(Duration::from_millis(1000)),
        };
        events.clear();
        poller.wait(&mut events, Some(timeout)).expect("poll");

        for event in events.drain(..) {
            let token = event.token;
            let conn = &mut conns[token];
            if event.writable && !conn.flush() {
                dead.push(token);
                continue;
            }
            if !event.readable {
                continue;
            }
            let mut eof = false;
            let mut tmp = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.read_buf.extend_from_slice(&tmp[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            // Settle every complete response in the buffer.
            loop {
                match try_parse_response(&conn.read_buf) {
                    Ok(Some((status, consumed))) => {
                        conn.read_buf.drain(..consumed);
                        let (class, issued_at) =
                            conn.outstanding.pop_front().expect("tracked request");
                        match status {
                            200 => samples.push((class, issued_at.elapsed().as_secs_f64())),
                            429 | 503 => shed += 1,
                            _ => errors += 1,
                        }
                        if opts.mode == Mode::Closed && opts.keepalive {
                            issue_on!(conn, Instant::now());
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            if eof || (!opts.keepalive && conn.outstanding.is_empty()) {
                if eof {
                    // In-flight requests died with the connection.
                    errors += conn.outstanding.len();
                    conn.outstanding.clear();
                }
                dead.push(token);
            }
        }

        // Open-loop arrivals: issue every request whose scheduled
        // instant has passed, clocking latency from the schedule (not
        // the send), so queueing under overload is charged honestly.
        if opts.mode == Mode::Open {
            let period = Duration::from_secs_f64(opts.connections as f64 / opts.rate.max(1e-9));
            for conn in conns.iter_mut() {
                while cursor < opts.total && Instant::now() >= conn.next_due {
                    issue_on!(conn, conn.next_due);
                    conn.next_due += period;
                }
            }
        }

        // Replace torn-down connections (non-keepalive churn, EOFs,
        // transport errors) while work remains.
        for token in dead.drain(..) {
            let more_work = cursor < opts.total
                || opts.mode == Mode::Closed && samples.len() + errors + shed < opts.total;
            let old_fd = conns[token].stream.as_raw_fd();
            let _ = poller.deregister(old_fd);
            if !more_work {
                continue;
            }
            let next_due = conns[token].next_due;
            let mut fresh = connect_nonblocking(addr);
            fresh.next_due = next_due;
            if opts.mode == Mode::Closed && fresh.outstanding.is_empty() {
                let mut primed = 0;
                while primed < opts.pipeline && cursor < opts.total {
                    let class = class_for(cursor);
                    fresh.encode(class, bodies, cursor, opts.keepalive);
                    fresh.outstanding.push_back((class, Instant::now()));
                    cursor += 1;
                    primed += 1;
                }
            }
            poller
                .register(fresh.stream.as_raw_fd(), token, fresh.interest)
                .expect("re-register");
            conns[token] = fresh;
        }
    }

    for conn in &conns {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
    RunResult {
        samples,
        errors,
        shed,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

// ── Daemon spawning / readiness ──────────────────────────────────────

/// Kill-on-drop handle for the spawned daemon: whether loadgen exits
/// cleanly or panics mid-run (failed warmup, wedged run), the child is
/// reaped — CI must never be left with an orphaned release daemon.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `cargo run -p fair-submod-service` and parses the bound
/// address off its stdout handshake line. The admission queue is sized
/// above the largest sweep so a healthy run sees zero shed; shedding
/// behavior itself is covered by the service integration tests.
fn spawn_daemon(quick: bool, blocking: bool) -> (DaemonGuard, String) {
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args([
        "run",
        "-p",
        "fair-submod-service",
        "--release",
        "--",
        "--addr",
        "127.0.0.1:0",
        "--queue-capacity",
        "4096",
        "--max-connections",
        "8192",
    ]);
    if quick {
        cmd.arg("--quick");
    }
    if blocking {
        cmd.arg("--blocking");
    }
    // Guard the child before the fallible handshake below, so even a
    // panic while waiting for it reaps the process.
    let mut child = DaemonGuard(
        cmd.stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn fair-submod-service"),
    );
    let stdout = child.0.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before its listening handshake");
        if let Some(addr) = line
            .trim()
            .strip_prefix("fair-submod-service listening on ")
        {
            return (child, addr.to_string());
        }
    }
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            if let Ok(reply) = http_request(&mut stream, "GET", "/healthz", "") {
                if reply.status == 200 {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon at {addr} not ready within 60s"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Warmup: touch every solve body once so the timed phase measures the
/// resident (instance-cache-hit) path.
fn warm(addr: &str, bodies: &[String]) {
    let mut stream = TcpStream::connect(addr).expect("connect for warmup");
    for body in bodies {
        let reply = http_request(&mut stream, "POST", "/solve", body)
            .unwrap_or_else(|e| panic!("warmup solve failed: {e}"));
        assert_eq!(
            reply.status,
            200,
            "warmup solve rejected: {}",
            String::from_utf8_lossy(&reply.body)
        );
    }
}

fn cache_counters(addr: &str) -> (u64, u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect for counters");
    let reply = http_request(&mut stream, "GET", "/instances", "").expect("GET /instances");
    let body = parse_bytes(&reply.body).expect("instances JSON");
    (
        body.get("hits").and_then(Value::as_u64).unwrap_or(0),
        body.get("misses").and_then(Value::as_u64).unwrap_or(0),
        body.get("len").and_then(Value::as_u64).unwrap_or(0),
    )
}

/// The daemon's self-reported peak RSS (`peak_rss_mib` in the
/// `/instances` view — fetched over HTTP because a `--spawn`ed daemon
/// sits behind a wrapper process, so its PID is not ours to inspect).
/// `None` when the daemon runs off Linux.
fn daemon_peak_rss_mib(addr: &str) -> Option<f64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let reply = http_request(&mut stream, "GET", "/instances", "").ok()?;
    parse_bytes(&reply.body)
        .ok()?
        .get("peak_rss_mib")
        .and_then(Value::as_f64)
}

// ── Main ─────────────────────────────────────────────────────────────

fn run_to_json(connections: usize, opts: &LoadOpts, result: &RunResult) -> (f64, f64, Value) {
    let mut overall: Vec<f64> = result.samples.iter().map(|&(_, s)| s).collect();
    let mut classes: Vec<Value> = Vec::new();
    for class in [Class::Solve, Class::Healthz, Class::Registry] {
        let mut latencies: Vec<f64> = result
            .samples
            .iter()
            .filter(|&&(c, _)| c == class)
            .map(|&(_, s)| s)
            .collect();
        classes.push(class_stats(class.label(), &mut latencies));
    }
    let throughput = result.samples.len() as f64 / result.wall_seconds.max(1e-9);
    let overall_stats = class_stats("overall", &mut overall);
    let p99_ms = overall_stats
        .get("p99_ms")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let json = obj([
        ("connections", Value::Num(connections as f64)),
        ("requests", Value::Num(opts.total as f64)),
        ("ok", Value::Num(result.samples.len() as f64)),
        ("errors", Value::Num(result.errors as f64)),
        ("shed", Value::Num(result.shed as f64)),
        ("wall_seconds", Value::Num(result.wall_seconds)),
        ("throughput_rps", Value::Num(throughput)),
        ("overall", overall_stats),
        ("classes", Value::Arr(classes)),
    ]);
    (throughput, p99_ms, json)
}

struct ServerOutcome {
    label: &'static str,
    json: Value,
    /// (throughput_rps, p99_ms) of the largest-connection run.
    at_max: (f64, f64),
    errors: usize,
}

#[allow(clippy::too_many_arguments)]
fn sweep_server(
    label: &'static str,
    addr: &str,
    bodies: &[String],
    points: &[usize],
    opts: &LoadOpts,
    spawned: bool,
) -> ServerOutcome {
    warm(addr, bodies);
    let mut runs = Vec::new();
    let mut at_max = (0.0, 0.0);
    let mut errors = 0;
    let mut shed = 0;
    for &connections in points {
        let opts = LoadOpts {
            connections,
            ..opts.clone()
        };
        eprintln!(
            "[loadgen] {label}: {connections} connections, {} requests, {:?} loop ...",
            opts.total, opts.mode
        );
        let result = run_load(addr, bodies, &opts);
        let (rps, p99, json) = run_to_json(connections, &opts, &result);
        eprintln!(
            "[loadgen] {label}: {} ok / {} errors / {} shed in {:.2}s ({rps:.0} req/s, p99 {p99:.1}ms)",
            result.samples.len(),
            result.errors,
            result.shed,
            result.wall_seconds,
        );
        at_max = (rps, p99);
        errors += result.errors;
        shed += result.shed;
        runs.push(json);
    }
    let (hits, misses, resident) = cache_counters(addr);
    assert!(
        !spawned || hits > 0,
        "repeated recipes never hit the instance cache"
    );
    let rss = daemon_peak_rss_mib(addr);
    ServerOutcome {
        label,
        json: obj([
            ("server", Value::Str(label.into())),
            ("runs", Value::Arr(runs)),
            ("cache_hits", Value::Num(hits as f64)),
            ("cache_misses", Value::Num(misses as f64)),
            ("resident_instances", Value::Num(resident as f64)),
            ("daemon_peak_rss_mib", rss.map_or(Value::Null, Value::Num)),
            ("total_errors", Value::Num(errors as f64)),
            ("total_shed", Value::Num(shed as f64)),
        ]),
        at_max,
        errors,
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut spawn = false;
    let mut quick = false;
    let mut blocking = false;
    let mut compare = false;
    let mut sweep = false;
    let mut connections = 16usize;
    let mut pipeline = 1usize;
    let mut keepalive = true;
    let mut mode = Mode::Closed;
    let mut rate: Option<f64> = None;
    let mut requests: Option<usize> = None;
    let mut out_path = String::from("BENCH_service.json");
    let mut min_rps: Option<f64> = None;
    let mut max_p99_ms: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        fn int(flag: &str, raw: String) -> usize {
            raw.parse()
                .unwrap_or_else(|_| panic!("{flag} takes an integer"))
        }
        fn num(flag: &str, raw: String) -> f64 {
            raw.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        }
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--spawn" => spawn = true,
            "--quick" => quick = true,
            "--blocking" => blocking = true,
            "--compare" => compare = true,
            "--sweep" => sweep = true,
            "--connections" => connections = int("--connections", value("--connections")).max(1),
            "--pipeline" => pipeline = int("--pipeline", value("--pipeline")).max(1),
            "--keepalive" => keepalive = true,
            "--no-keepalive" => keepalive = false,
            "--mode" => {
                mode = match value("--mode").as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => panic!("--mode takes closed|open, not {other:?}"),
                }
            }
            "--rate" => rate = Some(num("--rate", value("--rate"))),
            "--requests" => requests = Some(int("--requests", value("--requests"))),
            "--out" => out_path = value("--out"),
            "--min-rps" => min_rps = Some(num("--min-rps", value("--min-rps"))),
            "--max-p99-ms" => max_p99_ms = Some(num("--max-p99-ms", value("--max-p99-ms"))),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    let total = requests.unwrap_or(if quick { 1_500 } else { 10_000 });
    let opts = LoadOpts {
        connections,
        pipeline,
        keepalive,
        mode,
        rate: rate.unwrap_or(if quick { 500.0 } else { 2_000.0 }),
        total,
    };
    let points: Vec<usize> = if sweep || compare {
        vec![16, 256, 1024]
    } else {
        vec![connections]
    };

    let bodies = solve_bodies(quick);
    let mut outcomes: Vec<ServerOutcome> = Vec::new();
    let mut guards = Vec::new();
    if compare {
        assert!(
            spawn && addr.is_none(),
            "--compare spawns both servers; drop --addr"
        );
        for (label, is_blocking) in [("event", false), ("blocking", true)] {
            let (child, daemon_addr) = spawn_daemon(quick, is_blocking);
            eprintln!("[loadgen] spawned {label} daemon at {daemon_addr}");
            wait_ready(&daemon_addr);
            outcomes.push(sweep_server(
                label,
                &daemon_addr,
                &bodies,
                &points,
                &opts,
                true,
            ));
            drop(child); // reap before spawning the twin
        }
    } else {
        let (child, target) = match addr {
            Some(addr) => (None, addr),
            None => {
                assert!(spawn, "need --addr HOST:PORT or --spawn");
                let (child, addr) = spawn_daemon(quick, blocking);
                (Some(child), addr)
            }
        };
        eprintln!("[loadgen] target daemon at {target}");
        wait_ready(&target);
        let label = if blocking { "blocking" } else { "event" };
        outcomes.push(sweep_server(label, &target, &bodies, &points, &opts, spawn));
        guards.push(child);
    }

    // The gated subject is the event server's largest-connection run
    // (the first outcome in every invocation shape).
    let subject = &outcomes[0];
    let (subject_rps, subject_p99) = subject.at_max;
    let speedup = (outcomes.len() == 2).then(|| outcomes[0].at_max.0 / outcomes[1].at_max.0);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut top = vec![
        ("generated_by", Value::Str("loadgen".into())),
        ("quick", Value::Bool(quick)),
        ("cores", Value::Num(cores as f64)),
        (
            "threads_default",
            Value::Num(rayon::current_num_threads() as f64),
        ),
        (
            "mode",
            Value::Str(
                match opts.mode {
                    Mode::Closed => "closed",
                    Mode::Open => "open",
                }
                .into(),
            ),
        ),
        ("keepalive", Value::Bool(opts.keepalive)),
        ("pipeline", Value::Num(opts.pipeline as f64)),
        (
            "connection_sweep",
            Value::Arr(points.iter().map(|&p| Value::Num(p as f64)).collect()),
        ),
        (
            "servers",
            Value::Arr(outcomes.iter().map(|o| o.json.clone()).collect()),
        ),
        (
            // The gated (event) daemon's own high-water mark, repeated
            // at the top level so dashboards need not dig into servers.
            "daemon_peak_rss_mib",
            subject
                .json
                .get("daemon_peak_rss_mib")
                .cloned()
                .unwrap_or(Value::Null),
        ),
    ];
    if let Some(speedup) = speedup {
        top.push(("event_vs_blocking_speedup", Value::Num(speedup)));
    }
    let report = obj(top);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write BENCH_service.json");
    for outcome in &outcomes {
        eprintln!(
            "[loadgen] {}: at {} connections {:.0} req/s, p99 {:.1}ms",
            outcome.label,
            points.last().unwrap(),
            outcome.at_max.0,
            outcome.at_max.1
        );
    }
    if let Some(speedup) = speedup {
        eprintln!("[loadgen] event vs blocking throughput at max connections: {speedup:.2}x");
    }
    eprintln!("[loadgen] wrote {out_path}");

    // Gates: a healthy daemon sized above the sweep must never error
    // or shed; the floors/ceilings catch regressions in CI.
    assert_eq!(
        subject.errors, 0,
        "{} server saw transport errors or non-200/429/503 statuses",
        subject.label
    );
    if let Some(floor) = min_rps {
        assert!(
            subject_rps >= floor,
            "throughput gate: {subject_rps:.0} req/s < floor {floor:.0}"
        );
    }
    if let Some(ceiling) = max_p99_ms {
        assert!(
            subject_p99 <= ceiling,
            "p99 gate: {subject_p99:.1}ms > ceiling {ceiling:.1}ms"
        );
    }
}
