//! Figure 10 (Appendix B): MC and IM, varying τ on Facebook
//! (Age, c = 2 and c = 4, k = 5).

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{facebook_like, seeds};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn main() {
    let args = ExpArgs::parse();
    let k = 5;
    let taus: Vec<f64> = if args.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut table = Table::new(
        "Figure 10: MC and IM on Facebook, varying tau (k = 5)",
        RESULT_HEADERS,
    );

    for c in [2usize, 4] {
        let dataset = facebook_like(c, seeds::FACEBOOK);
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig10] MC {} ...", dataset.name);
        for &tau in &taus {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &format!("{} (MC)", dataset.name), &results);
        }
    }

    let model = DiffusionModel::ic(0.01);
    for c in [2usize, 4] {
        let dataset = facebook_like(c, seeds::FACEBOOK);
        eprintln!("[fig10] IM {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::FACEBOOK ^ 0x31);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                args.mc_runs,
                seeds::FACEBOOK ^ 0x32,
            )
        };
        for &tau in &taus {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &evaluator, &cfg);
            push_results(&mut table, &format!("{} (IM)", dataset.name), &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig10").expect("write csv");
}
