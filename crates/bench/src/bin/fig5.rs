//! Figure 5: influence maximization, varying the balance factor τ.
//!
//! Datasets: RAND (c=2/c=4, n=100, k=5) and DBLP (c=5, k=10) under the
//! IC model with p = 0.1 (as in the paper's small-graph setting).
//! Selection runs on the group-stratified RIS oracle; reported values
//! come from independent Monte-Carlo simulation (10,000 runs by
//! default), exactly as in the paper. BSM-TSGreedy may violate the weak
//! constraint occasionally due to estimation noise — a paper observation
//! worth reproducing.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_datasets::{dblp_like, rand_mc, seeds};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn main() {
    let args = ExpArgs::parse();
    let model = DiffusionModel::ic(0.1);
    let taus: Vec<f64> = if args.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut table = Table::new("Figure 5: IM, varying tau (IC, p = 0.1)", RESULT_HEADERS);

    for (dataset, k) in [
        (rand_mc(2, 100, seeds::RAND + 2), 5usize),
        (rand_mc(4, 100, seeds::RAND + 3), 5),
        (dblp_like(seeds::DBLP), 10),
    ] {
        eprintln!("[fig5] {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::RAND ^ 0x11);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                args.mc_runs,
                seeds::RAND ^ 0x22,
            )
        };
        for &tau in &taus {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &evaluator, &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig5").expect("write csv");
}
