//! Alias binary: loads the built-in `fig4` scenario spec
//! (`crates/bench/specs/fig4.json`) and runs it through the shared
//! scenario runner. See `scenarios --list` and the crate docs.

fn main() {
    fair_submod_bench::scenario::alias_main("fig4");
}
