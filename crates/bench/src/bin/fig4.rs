//! Figure 4: maximum coverage, varying the solution size k (τ = 0.8).
//!
//! Datasets: Facebook (Age, c=2 and c=4), k ∈ {5..50}; Pokec (Gender
//! c=2, Age c=6), k ∈ {10..100}. Reports `f`, `g`, and selection time —
//! the paper's observations: values grow with k, runtime grows only
//! mildly thanks to lazy-forward, BSM-Saturate better on quality /
//! slower than BSM-TSGreedy, Pokec values tiny (sparse coverage).

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{facebook_like, pokec_like, seeds, PokecAttr};

fn main() {
    let args = ExpArgs::parse();
    let tau = 0.8;
    let mut table = Table::new("Figure 4: MC, varying k (tau = 0.8)", RESULT_HEADERS);

    let fb_ks: Vec<usize> = if args.quick {
        vec![10, 30, 50]
    } else {
        (1..=10).map(|i| i * 5).collect()
    };
    for c in [2usize, 4] {
        let dataset = facebook_like(c, seeds::FACEBOOK);
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig4] {} ...", dataset.name);
        for &k in &fb_ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    let pokec_ks: Vec<usize> = if args.quick {
        vec![10, 40, 100]
    } else {
        (1..=10).map(|i| i * 10).collect()
    };
    for attr in [PokecAttr::Gender, PokecAttr::Age] {
        let dataset = pokec_like(args.pokec_nodes, attr, seeds::POKEC);
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig4] {} ...", dataset.name);
        for &k in &pokec_ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig4").expect("write csv");
}
