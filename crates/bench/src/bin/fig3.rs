//! Figure 3: maximum coverage, varying the balance factor τ.
//!
//! Datasets: RAND (c=2, k=5), RAND (c=4, k=5), DBLP (c=5, k=10).
//! The paper's `BSM-Optimal` reference line comes from Gurobi on the
//! n=500 RAND graphs; our self-contained branch-and-bound proves
//! optimality comfortably up to n≈150, so the exact comparison runs on
//! dedicated `RAND-OPT` datasets (n=150, same generator/ratios) — a
//! documented substitution (DESIGN.md §4, EXPERIMENTS.md). Observations
//! to reproduce: `f(S)` near `OPT_f` at small τ, decreasing in τ while
//! `g(S)` rises; BSM-Saturate dominating BSM-TSGreedy on `f`; SMSC flat
//! in τ; approximate `f` within ~10–26% of optimal.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{dblp_like, rand_mc, seeds};

fn main() {
    let args = ExpArgs::parse();
    let taus: Vec<f64> = if args.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut table = Table::new("Figure 3: MC, varying tau", RESULT_HEADERS);

    for (dataset, k, with_optimal) in [
        (rand_mc(2, 500, seeds::RAND), 5usize, false),
        (rand_mc(4, 500, seeds::RAND + 1), 5, false),
        (rand_mc(2, 150, seeds::RAND), 5, true),
        (rand_mc(4, 150, seeds::RAND + 1), 5, true),
        (dblp_like(seeds::DBLP), 10, false),
    ] {
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig3] {} ...", dataset.name);
        for &tau in &taus {
            let mut cfg = SuiteConfig::paper(k, tau);
            if with_optimal && !args.quick {
                cfg = cfg.with_optimal();
            }
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig3").expect("write csv");
}
