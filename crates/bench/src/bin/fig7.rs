//! Figure 7: facility location, varying the balance factor τ.
//!
//! Datasets: RAND FL (c=2/c=3, k=5) and Adult-Small (Race, c=5, k=5),
//! RBF benefits. `BSM-Optimal` runs on all three (the paper solves these
//! small instances with Gurobi; we use the submodular branch-and-bound).

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{adult_like, rand_fl, seeds, AdultSize};

fn main() {
    let args = ExpArgs::parse();
    let taus: Vec<f64> = if args.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut table = Table::new("Figure 7: FL, varying tau", RESULT_HEADERS);

    // Adult-Small's five race groups (two of size ≤ 2) make the exact
    // maximin bound loose, so its branch-and-bound gets a tighter node
    // budget; hitting it is reported via the harness' fallback flag and
    // the incumbent is still a valid lower bound (EXPERIMENTS.md).
    for (dataset, k, node_limit) in [
        (rand_fl(2, seeds::FL), 5usize, 3_000_000u64),
        (rand_fl(3, seeds::FL + 1), 5, 3_000_000),
        (adult_like(AdultSize::SmallRace, seeds::FL + 2), 5, 250_000),
    ] {
        let oracle = dataset.oracle();
        eprintln!("[fig7] {} ...", dataset.name);
        for &tau in &taus {
            let mut cfg = SuiteConfig::paper(k, tau);
            if !args.quick {
                cfg = cfg.with_optimal();
                cfg.exact_node_limit = node_limit;
            }
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig7").expect("write csv");
}
