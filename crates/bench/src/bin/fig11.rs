//! Figure 11 (Appendix B): MC and IM, varying k on DBLP
//! (Continent, c = 5, τ = 0.8).

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{dblp_like, seeds};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn main() {
    let args = ExpArgs::parse();
    let tau = 0.8;
    let ks: Vec<usize> = if args.quick {
        vec![10, 30, 50]
    } else {
        (1..=10).map(|i| i * 5).collect()
    };
    let mut table = Table::new(
        "Figure 11: MC and IM on DBLP, varying k (tau = 0.8)",
        RESULT_HEADERS,
    );

    let dataset = dblp_like(seeds::DBLP);
    {
        let oracle = dataset.coverage_oracle();
        eprintln!("[fig11] MC {} ...", dataset.name);
        for &k in &ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &format!("{} (MC)", dataset.name), &results);
        }
    }

    {
        let model = DiffusionModel::ic(0.1);
        eprintln!("[fig11] IM {} ...", dataset.name);
        let oracle = dataset.ris_oracle(model, args.rr_sets, seeds::DBLP ^ 0x51);
        let evaluator = |items: &[u32]| {
            monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                items,
                args.mc_runs,
                seeds::DBLP ^ 0x52,
            )
        };
        for &k in &ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &evaluator, &cfg);
            push_results(&mut table, &format!("{} (IM)", dataset.name), &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig11").expect("write csv");
}
