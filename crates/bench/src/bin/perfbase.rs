//! Perf baseline runner: times the oracle hot paths before/after the
//! parallel + packed-kernel optimizations and records the numbers as
//! JSON, so speedups are measured rather than asserted and the baseline
//! can never bit-rot (CI runs `perfbase --quick` on every push).
//!
//! Each scenario is timed twice in one process:
//!
//! * **before** — the sequential/seed configuration: worker count forced
//!   to 1 via [`rayon::set_num_threads`], and for the coverage kernel
//!   the retained `Vec<bool>` reference implementation
//!   ([`UnpackedCoverageOracle`](fair_submod_coverage::UnpackedCoverageOracle));
//! * **after** — the shipped configuration: default worker count and the
//!   packed `u64` bitset kernel.
//!
//! Selections are asserted identical between the two runs (the
//! parallel paths are deterministic by construction), so `perfbase`
//! doubles as an end-to-end equivalence smoke test.
//!
//! The `grid_warm_vs_cold` scenario measures the session layer instead
//! of thread counts: a Greedy k-sweep (k = 5..50) run cold (every cell
//! from the empty set) versus warm (the whole k-axis served from one
//! resumable session by prefix extraction), with bit-identical
//! solutions asserted between the two.
//!
//! The `sharded_1m` scenario exercises the sharded solve tier at its
//! design scale: a million-node synthetic coverage instance solved
//! centrally (full graph + full oracle + `greedi`) versus through
//! [`ShardedInstance`] fed by per-shard CSR slices streamed straight
//! off the edge list (`read_shard_slices` — no full graph ever built).
//! Selections are asserted bit-identical, and the sharded run is held
//! to explicit wall-clock and peak-RSS budgets (the process aborts when
//! either is blown, so CI's `scale-smoke` step fails loudly). The
//! `sharded_ris_100k` and `sharded_fl_50k` scenarios hold the other two
//! substrates to the same contract at their own design scales:
//! centralized GreeDi over the resident oracle versus
//! [`ShardedInstance`] over the substrate-owned `restrict` partitions
//! (the daemon's sharded-solve path), bit-identical selections, and
//! wall-clock/peak-RSS budgets. All three run in full mode and under
//! `--only NAME`; plain `--quick` skips them to keep the per-push perf
//! gate fast (CI's `scale-smoke` step runs each one `--quick`).
//!
//! The memory-tier scenarios hold the PR-10 memory work to its
//! contract: `sharded_1m_spill` re-runs the million-node solve through
//! the out-of-core path (per-shard slices spilled to a scratch dir and
//! reloaded one at a time per GreeDi step) and asserts the peak-RSS
//! floor sits at ≤60% of the fully resident sharded run — the floor
//! assert only fires under `--only sharded_1m_spill` because `VmHWM`
//! is process-monotone, so any earlier scenario's peak would pollute
//! the in-process comparison. `rr_arena_compressed` times greedy
//! rounds over the gap+varint-compressed RR arena against the
//! flat-`u32` uncompressed twin and records the compression ratio.
//! Both assert bit-identical selections (DESIGN.md §11).
//!
//! The PR-7 kernel scenarios pit the incremental gain kernels against
//! their retained rescan references on identical workloads:
//! `ris_incremental_vs_rescan` (counter reads vs per-item RR-set
//! rescans under naive greedy rounds), `celf_vs_naive_rounds` (lazy
//! batched-refresh greedy vs full candidate scans), and
//! `bitset_kernel_unrolled` (the 8-word unrolled complement-masked
//! popcount vs the scalar loop). Selections/counts are asserted
//! bit-identical in-process, as everywhere else.
//!
//! `--profile` additionally records a per-phase wall-clock breakdown
//! (sample / build-index / solve-rounds) as a `phases` array on the
//! scenario rows that have one.
//!
//! Usage: `cargo run -p fair-submod-bench --release --bin perfbase --
//! [--quick] [--profile] [--only NAME] [--out BENCH_baseline.json]`.

use std::sync::Arc;
use std::time::Instant;

use fair_submod_bench::harness::{run_suite, GridConfig};
use fair_submod_core::engine::{MergeBuilder, ShardBuilder};
use fair_submod_core::prelude::*;
use fair_submod_coverage::{
    dominating_set_system, dominating_slice_system, CoverageOracle, SetSystem,
};
use fair_submod_datasets::{facebook_like, rand_fl, rand_mc, seeds};
use fair_submod_facility::{BenefitMatrix, FacilityOracle};
use fair_submod_graphs::io::{read_edge_list, read_shard_slices, spill_shard_slices};
use fair_submod_graphs::{CsrSlice, Groups};
use fair_submod_influence::oracle::{RisConfig, RisOracle};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

struct Scenario {
    name: &'static str,
    before_label: &'static str,
    after_label: &'static str,
    before_seconds: f64,
    after_seconds: f64,
    /// Extra JSON fields (`, "key": value` fragments) for scenarios
    /// that record more than the two timings — e.g. budget checks.
    extra: String,
    /// Per-phase wall-clock breakdown of the *after* pipeline
    /// (sample / build-index / solve-rounds / merge …), emitted as a
    /// `phases` array when `--profile` is passed.
    phases: Vec<(&'static str, f64)>,
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
#[cfg(target_os = "linux")]
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_mib() -> Option<f64> {
    None
}

/// Deterministic million-scale edge list: a ring plus `chords` xorshift
/// chords per node, as text, so both load paths parse the same bytes.
fn synth_edge_list(n: usize, chords: usize, seed: u64) -> String {
    use std::fmt::Write as _;
    let mut text = String::with_capacity(n * (chords + 1) * 15);
    let mut state = seed | 1;
    let mut next = |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    for v in 0..n {
        let _ = writeln!(text, "{} {}", v, (v + 1) % n);
        for _ in 0..chords {
            let w = next(n as u64);
            let _ = writeln!(text, "{v} {w}");
        }
    }
    text
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` with the worker count forced to 1, then at the default.
fn time_seq_vs_par<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, f64) {
    rayon::set_num_threads(1);
    let seq = time_best(reps, &mut f);
    rayon::set_num_threads(0);
    let par = time_best(reps, &mut f);
    (seq, par)
}

fn main() {
    let mut quick = false;
    let mut profile = false;
    let mut only: Option<String> = None;
    let mut out_path = String::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--profile" => profile = true,
            "--only" => only = Some(args.next().expect("--only needs a scenario name")),
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown flag {other}"),
        }
    }
    // `--only NAME` runs a single scenario; otherwise everything runs,
    // except that plain `--quick` skips the heavyweight million-node
    // scenario (CI runs it separately as the `scale-smoke` step).
    let should_run = |name: &str| match &only {
        Some(o) => o == name,
        None => {
            !(quick
                && matches!(
                    name,
                    "sharded_1m" | "sharded_ris_100k" | "sharded_fl_50k" | "sharded_1m_spill"
                ))
        }
    };
    let reps = if quick { 3 } else { 5 };
    let mut scenarios: Vec<Scenario> = Vec::new();

    // ── 1. Coverage gain kernel: packed u64 bitset vs Vec<bool>. ──────
    if should_run("coverage_gain_kernel") {
        eprintln!("[perfbase] coverage kernel ...");
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND);
        let packed = dataset.coverage_oracle();
        let unpacked = packed.unpacked_reference();
        let sweeps = if quick { 40 } else { 100 };
        // Identical workload on both kernels: scan all candidate gains
        // from a partially grown solution.
        fn kernel_workload<S: fair_submod_core::system::UtilitySystem>(
            sys: &S,
            sweeps: usize,
        ) -> f64 {
            let mut st = SolutionState::new(sys);
            for v in 0..5 {
                st.insert(v * 7);
            }
            let mut out = vec![0.0; sys.num_groups()];
            let mut acc = 0.0;
            for _ in 0..sweeps {
                for v in 0..sys.num_items() as u32 {
                    st.gains_into(v, &mut out);
                    acc += out[0];
                }
            }
            acc
        }
        let before_seconds = time_best(reps, || kernel_workload(&unpacked, sweeps));
        let after_seconds = time_best(reps, || kernel_workload(&packed, sweeps));
        assert_eq!(
            kernel_workload(&unpacked, 1).to_bits(),
            kernel_workload(&packed, 1).to_bits(),
            "packed and unpacked coverage kernels disagree"
        );
        scenarios.push(Scenario {
            name: "coverage_gain_kernel",
            before_label: "vec_bool",
            after_label: "u64_bitset",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: Vec::new(),
        });
    }

    // ── 2. Naive-greedy rounds: batched candidate scan, 1 thread vs default. ──
    if should_run("naive_greedy_round") {
        eprintln!("[perfbase] naive greedy rounds ...");
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND + 1);
        let oracle = dataset.coverage_oracle();
        let f = MeanUtility::new(oracle.num_users());
        let k = if quick { 5 } else { 10 };
        let (before_seconds, after_seconds) =
            time_seq_vs_par(reps, || greedy(&oracle, &f, &GreedyConfig::naive(k)));
        rayon::set_num_threads(1);
        let seq_items = greedy(&oracle, &f, &GreedyConfig::naive(k)).items;
        rayon::set_num_threads(0);
        let par_items = greedy(&oracle, &f, &GreedyConfig::naive(k)).items;
        assert_eq!(
            seq_items, par_items,
            "thread count changed greedy selection"
        );
        scenarios.push(Scenario {
            name: "naive_greedy_round",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: Vec::new(),
        });
    }

    // ── 3. Batched RR-set sampling, 1 thread vs default. ──────────────
    if should_run("rr_sampling_batch") {
        eprintln!("[perfbase] rr sampling ...");
        let dataset = rand_mc(2, if quick { 200 } else { 500 }, seeds::RAND + 2);
        let model = DiffusionModel::ic(0.1);
        let rr = if quick { 5_000 } else { 20_000 };
        let cfg = RisConfig::new(rr, 11);
        let (before_seconds, after_seconds) = time_seq_vs_par(reps, || {
            RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg)
        });
        let probe: Vec<u32> = vec![0, 3, 17];
        rayon::set_num_threads(1);
        let seq = RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg);
        rayon::set_num_threads(0);
        let (par, build) =
            RisOracle::generate_profiled(&dataset.graph, model, &dataset.groups, &cfg);
        assert_eq!(
            seq.estimated_spread(&probe).to_bits(),
            par.estimated_spread(&probe).to_bits(),
            "thread count changed RR sampling"
        );
        scenarios.push(Scenario {
            name: "rr_sampling_batch",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: vec![
                ("sample", build.sample_seconds),
                ("build_index", build.index_seconds),
                ("compress", build.compress_seconds),
            ],
        });
    }

    // ── 4. Benefit-matrix construction (row-parallel RBF kernel). ─────
    if should_run("benefit_matrix_rbf") {
        eprintln!("[perfbase] benefit matrix ...");
        let dataset = rand_fl(2, seeds::FL);
        let (before_seconds, after_seconds) =
            time_seq_vs_par(reps, || BenefitMatrix::rbf(&dataset.users, &dataset.items));
        rayon::set_num_threads(1);
        let seq = BenefitMatrix::rbf(&dataset.users, &dataset.items);
        rayon::set_num_threads(0);
        let par = BenefitMatrix::rbf(&dataset.users, &dataset.items);
        for u in 0..seq.num_users() {
            assert!(
                seq.row(u)
                    .iter()
                    .zip(par.row(u))
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count changed benefit matrix row {u}"
            );
        }
        scenarios.push(Scenario {
            name: "benefit_matrix_rbf",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: Vec::new(),
        });
    }

    // ── 5. End-to-end fig6-style IM sweep (RIS + suite + MC eval). ────
    if should_run("fig6_style_sweep") {
        eprintln!("[perfbase] fig6-style sweep ...");
        let dataset = facebook_like(2, seeds::FACEBOOK);
        let model = DiffusionModel::ic(0.01);
        let rr = if quick { 2_000 } else { 5_000 };
        let mc_runs = if quick { 200 } else { 500 };
        let registry = SolverRegistry::default();
        let sweep = || {
            let oracle = dataset.ris_oracle(model, rr, seeds::FACEBOOK ^ 0x11);
            let evaluator = |items: &[u32]| {
                monte_carlo_evaluate(
                    &dataset.graph,
                    model,
                    &dataset.groups,
                    items,
                    mc_runs,
                    seeds::FACEBOOK ^ 0x22,
                )
            };
            let mut fs = Vec::new();
            for k in [5usize, 10] {
                let results = run_suite(&oracle, &evaluator, &registry, &GridConfig::paper(k, 0.8))
                    .expect("paper grid is valid");
                fs.extend(
                    results
                        .into_iter()
                        .map(|r| r.outcome.expect("paper solvers run on c = 2").f),
                );
            }
            fs
        };
        let (before_seconds, after_seconds) = time_seq_vs_par(1.max(reps / 2), sweep);
        rayon::set_num_threads(1);
        let seq_fs = sweep();
        rayon::set_num_threads(0);
        let par_fs = sweep();
        assert!(
            seq_fs.len() == par_fs.len()
                && seq_fs
                    .iter()
                    .zip(&par_fs)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "thread count changed sweep results"
        );
        scenarios.push(Scenario {
            name: "fig6_style_sweep",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: Vec::new(),
        });
    }

    // ── 6. Warm vs cold k-axis sweep (session prefix extraction). ────
    if should_run("grid_warm_vs_cold") {
        eprintln!("[perfbase] grid warm vs cold k-sweep ...");
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND + 7);
        let oracle = dataset.coverage_oracle();
        let registry = SolverRegistry::default();
        let ks: Vec<usize> = (1..=10).map(|i| i * 5).collect(); // 5, 10, …, 50
        let grid = GridConfig {
            solvers: vec!["Greedy".into()],
            ks,
            taus: vec![0.8],
            epsilons: vec![0.05],
            shards: vec![4],
            repetitions: 1,
            warm_sweeps: true,
            base: fair_submod_core::engine::ScenarioParams::new(5, 0.8),
        };
        let run = |grid: &GridConfig| {
            run_suite(
                &oracle,
                &|items| fair_submod_core::metrics::evaluate(&oracle, items),
                &registry,
                grid,
            )
            .expect("k-sweep grid is valid")
        };
        let cold_grid = grid.clone().cold();
        let before_seconds = time_best(reps, || run(&cold_grid));
        let after_seconds = time_best(reps, || run(&grid));
        // Warm prefix extraction must be bit-identical to cold solves.
        let warm = run(&grid);
        let cold = run(&cold_grid);
        for (w, c) in warm.iter().zip(&cold) {
            let (wr, cr) = (
                w.report().expect("greedy runs"),
                c.report().expect("greedy runs"),
            );
            assert_eq!(wr.items, cr.items, "warm sweep changed selections");
            assert_eq!(
                wr.objective.to_bits(),
                cr.objective.to_bits(),
                "warm sweep changed objectives"
            );
            assert_eq!(
                wr.oracle_calls, cr.oracle_calls,
                "warm sweep changed call accounting"
            );
        }
        scenarios.push(Scenario {
            name: "grid_warm_vs_cold",
            before_label: "cold_per_cell",
            after_label: "warm_k_axis_session",
            before_seconds,
            after_seconds,
            extra: String::new(),
            phases: Vec::new(),
        });
    }

    // ── 7. Sharded million-element solve tier vs centralized GreeDi. ──
    if should_run("sharded_1m") {
        eprintln!("[perfbase] sharded 1M-node solve tier ...");
        let n = 1_000_000usize;
        let num_shards = 8usize;
        let k = if quick { 8 } else { 16 };
        let seed = 42u64;
        let text = synth_edge_list(n, 2, 0xA5A5_5A5A);
        let groups = Groups::from_assignment((0..n).map(|v| (v % 2) as u32).collect());
        let f = MeanUtility::new(n);
        let mut cfg = GreediConfig::new(k);
        cfg.shards = num_shards;
        cfg.seed = seed;

        // Before: the centralized pipeline — parse the whole edge list
        // into one Graph, build one full dominating-set oracle, run the
        // in-memory `greedi`.
        let start = Instant::now();
        let central_out = {
            let graph =
                read_edge_list(text.as_bytes(), n, false).expect("synthetic list is well-formed");
            let oracle = CoverageOracle::new(dominating_set_system(&graph), &groups);
            greedi(&oracle, &f, &cfg).expect("valid config")
        };
        let before_seconds = start.elapsed().as_secs_f64();

        // After: the sharded tier — stream the same bytes into per-shard
        // CSR slices (no full Graph), build one sub-oracle per shard,
        // and solve through ShardedInstance. The merge oracle is built
        // on demand over the round-2 pool only.
        let start = Instant::now();
        let sharded_out = {
            let partition = shard_partition(n, num_shards, seed);
            let mut owner = vec![0u32; n];
            for (s, members) in partition.iter().enumerate() {
                for &v in members {
                    owner[v as usize] = s as u32;
                }
            }
            let slices: Vec<Arc<CsrSlice>> =
                read_shard_slices(text.as_bytes(), n, false, &owner, num_shards, 1 << 20)
                    .expect("synthetic list is well-formed")
                    .into_iter()
                    .map(Arc::new)
                    .collect();
            let shard_oracles = slices
                .iter()
                .map(|slice| {
                    let oracle = CoverageOracle::new(dominating_slice_system(slice, n), &groups);
                    ShardOracle {
                        members: slice.nodes().to_vec(),
                        system: Arc::new(oracle),
                    }
                })
                .collect();
            let merge_slices = slices.clone();
            let merge_groups = groups.clone();
            let merge: MergeBuilder = Box::new(move |pool| {
                let sets = pool
                    .iter()
                    .map(|&v| {
                        let mut s = merge_slices
                            .iter()
                            .find_map(|sl| sl.neighbors_of(v))
                            .expect("pool ids come from shard members")
                            .to_vec();
                        s.push(v);
                        s
                    })
                    .collect();
                Arc::new(CoverageOracle::new(SetSystem::new(sets, n), &merge_groups))
            });
            let instance =
                ShardedInstance::new(shard_oracles, merge).expect("slice shards are valid");
            instance.solve_greedi(k, cfg.variant.clone())
        };
        let after_seconds = start.elapsed().as_secs_f64();

        // The scale-equivalence contract, enforced at design scale.
        assert_eq!(
            central_out.items, sharded_out.items,
            "sharded tier changed the 1M-node selection"
        );
        assert_eq!(
            central_out.value.to_bits(),
            sharded_out.value.to_bits(),
            "sharded tier changed the 1M-node objective"
        );
        assert_eq!(
            central_out.oracle_calls, sharded_out.oracle_calls,
            "sharded tier changed the 1M-node call accounting"
        );

        // Hard budgets: the sharded pipeline's wall clock and this
        // process's peak RSS. Blowing either aborts (CI scale-smoke
        // fails on the non-zero exit).
        // Measured on the baseline host: ~1.5s / ~320 MiB (quick).
        // Budgets leave ~20x headroom for slow shared CI runners while
        // still catching an accidental O(n·p) blow-up or a full-graph
        // materialization sneaking back into the sharded path.
        let wall_budget_seconds = if quick { 120.0 } else { 240.0 };
        let rss_budget_mib = 2048.0;
        let rss_mib = peak_rss_mib();
        assert!(
            after_seconds <= wall_budget_seconds,
            "sharded_1m blew its wall-clock budget: {after_seconds:.1}s > {wall_budget_seconds:.0}s"
        );
        if let Some(rss) = rss_mib {
            assert!(
                rss <= rss_budget_mib,
                "sharded_1m blew its peak-RSS budget: {rss:.0} MiB > {rss_budget_mib:.0} MiB"
            );
        }
        scenarios.push(Scenario {
            name: "sharded_1m",
            before_label: "centralized_greedi",
            after_label: "sharded_slices",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"nodes\": {n}, \"shards\": {num_shards}, \"k\": {k}, \
                 \"wallclock_budget_seconds\": {wall_budget_seconds:.1}, \
                 \"peak_rss_mib\": {}, \"peak_rss_budget_mib\": {rss_budget_mib:.1}",
                rss_mib.map_or("null".into(), |r| format!("{r:.1}"))
            ),
            phases: Vec::new(),
        });
    }

    // ── 7b. Sharded RIS substrate at scale: centralized GreeDi over the
    // resident RR-set oracle vs ShardedInstance over the oracle's own
    // `restrict` partitions (the daemon's sharded-solve path). The RR
    // sample is generated once and shared, so the timings isolate the
    // shard build + solve, and the budgets catch a restriction path
    // that re-materializes the arena per shard.
    if should_run("sharded_ris_100k") {
        eprintln!("[perfbase] sharded RIS solve tier ...");
        let n = if quick { 30_000 } else { 100_000 };
        let num_rr = if quick { 60_000 } else { 150_000 };
        let num_shards = 8usize;
        let k = 8;
        let seed = 42u64;
        // A sparse ring+chords graph (same generator as `sharded_1m`,
        // average degree ≈ 6): IC(0.05) stays subcritical, so RR sets
        // are small and the arena stays linear in `num_rr`. The dense
        // SBM RAND family is the wrong substrate here — its RR sets
        // would span the whole graph.
        let text = synth_edge_list(n, 2, 0x1357_9BDF);
        let graph = read_edge_list(text.as_bytes(), n, false).expect("synthetic list parses");
        let groups = Groups::from_assignment((0..n).map(|v| (v % 2) as u32).collect());
        let oracle = Arc::new(RisOracle::generate(
            &graph,
            DiffusionModel::ic(0.05),
            &groups,
            &RisConfig::new(num_rr, 17),
        ));
        let f = MeanUtility::new(n);
        let mut cfg = GreediConfig::new(k);
        cfg.shards = num_shards;
        cfg.seed = seed;

        let start = Instant::now();
        let central_out = greedi(&*oracle, &f, &cfg).expect("valid config");
        let before_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let sharded_out = {
            let restrict = Arc::clone(&oracle);
            let instance = ShardedInstance::from_restrictor(n, num_shards, seed, move |m| {
                Ok(Arc::new(restrict.restrict(m)?) as Arc<dyn DynUtilitySystem>)
            })
            .expect("valid sharding");
            instance.solve_greedi(k, cfg.variant.clone())
        };
        let after_seconds = start.elapsed().as_secs_f64();

        assert_eq!(
            central_out.items, sharded_out.items,
            "sharded RIS tier changed the selection"
        );
        assert_eq!(
            central_out.value.to_bits(),
            sharded_out.value.to_bits(),
            "sharded RIS tier changed the objective"
        );
        assert_eq!(
            central_out.oracle_calls, sharded_out.oracle_calls,
            "sharded RIS tier changed the call accounting"
        );

        let wall_budget_seconds = if quick { 120.0 } else { 240.0 };
        let rss_budget_mib = 2048.0;
        let rss_mib = peak_rss_mib();
        assert!(
            after_seconds <= wall_budget_seconds,
            "sharded_ris_100k blew its wall-clock budget: \
             {after_seconds:.1}s > {wall_budget_seconds:.0}s"
        );
        if let Some(rss) = rss_mib {
            assert!(
                rss <= rss_budget_mib,
                "sharded_ris_100k blew its peak-RSS budget: {rss:.0} MiB > {rss_budget_mib:.0} MiB"
            );
        }
        scenarios.push(Scenario {
            name: "sharded_ris_100k",
            before_label: "centralized_greedi",
            after_label: "sharded_restrict",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"nodes\": {n}, \"rr_sets\": {num_rr}, \"shards\": {num_shards}, \
                 \"k\": {k}, \"wallclock_budget_seconds\": {wall_budget_seconds:.1}, \
                 \"peak_rss_mib\": {}, \"peak_rss_budget_mib\": {rss_budget_mib:.1}",
                rss_mib.map_or("null".into(), |r| format!("{r:.1}"))
            ),
            phases: Vec::new(),
        });
    }

    // ── 7c. Sharded facility substrate at scale: centralized GreeDi
    // over a dense benefit matrix vs ShardedInstance over
    // column-partitioned shard views (`FacilityOracle::restrict`).
    if should_run("sharded_fl_50k") {
        eprintln!("[perfbase] sharded facility solve tier ...");
        let m = 256usize;
        let n = if quick { 20_000 } else { 50_000 };
        let num_shards = 8usize;
        let k = 8;
        let seed = 42u64;
        let mut state = 0x5EED_F00Du64 | 1;
        let b: Vec<f64> = (0..m * n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000) as f64 / 250.0
            })
            .collect();
        let group_of: Vec<u32> = (0..m).map(|u| (u % 2) as u32).collect();
        let oracle = Arc::new(FacilityOracle::new(BenefitMatrix::new(b, m, n), group_of));
        let f = MeanUtility::new(m);
        let mut cfg = GreediConfig::new(k);
        cfg.shards = num_shards;
        cfg.seed = seed;

        let start = Instant::now();
        let central_out = greedi(&*oracle, &f, &cfg).expect("valid config");
        let before_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let sharded_out = {
            let restrict = Arc::clone(&oracle);
            let instance = ShardedInstance::from_restrictor(n, num_shards, seed, move |mm| {
                Ok(Arc::new(restrict.restrict(mm)?) as Arc<dyn DynUtilitySystem>)
            })
            .expect("valid sharding");
            instance.solve_greedi(k, cfg.variant.clone())
        };
        let after_seconds = start.elapsed().as_secs_f64();

        assert_eq!(
            central_out.items, sharded_out.items,
            "sharded facility tier changed the selection"
        );
        assert_eq!(
            central_out.value.to_bits(),
            sharded_out.value.to_bits(),
            "sharded facility tier changed the objective"
        );
        assert_eq!(
            central_out.oracle_calls, sharded_out.oracle_calls,
            "sharded facility tier changed the call accounting"
        );

        let wall_budget_seconds = if quick { 120.0 } else { 240.0 };
        let rss_budget_mib = 2048.0;
        let rss_mib = peak_rss_mib();
        assert!(
            after_seconds <= wall_budget_seconds,
            "sharded_fl_50k blew its wall-clock budget: \
             {after_seconds:.1}s > {wall_budget_seconds:.0}s"
        );
        if let Some(rss) = rss_mib {
            assert!(
                rss <= rss_budget_mib,
                "sharded_fl_50k blew its peak-RSS budget: {rss:.0} MiB > {rss_budget_mib:.0} MiB"
            );
        }
        scenarios.push(Scenario {
            name: "sharded_fl_50k",
            before_label: "centralized_greedi",
            after_label: "sharded_restrict",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"users\": {m}, \"items\": {n}, \"shards\": {num_shards}, \
                 \"k\": {k}, \"wallclock_budget_seconds\": {wall_budget_seconds:.1}, \
                 \"peak_rss_mib\": {}, \"peak_rss_budget_mib\": {rss_budget_mib:.1}",
                rss_mib.map_or("null".into(), |r| format!("{r:.1}"))
            ),
            phases: Vec::new(),
        });
    }

    // ── 7d. Out-of-core sharded solve: spilled CSR slices reloaded one
    // shard at a time vs the fully resident sharded tier. The win
    // metric is the peak-RSS floor, not wall clock — the spill pipeline
    // streams the edge list once per shard and rebuilds each shard
    // oracle on demand, trading repeated parsing for a resident set
    // that tracks the largest single shard (DESIGN.md §11). The spill
    // run goes FIRST so its `VmHWM` reading is its own; the floor
    // assert (spill peak ≤ 60% of in-core peak) only fires under
    // `--only sharded_1m_spill`, where no earlier scenario has already
    // raised the process-monotone high-water mark.
    if should_run("sharded_1m_spill") {
        eprintln!("[perfbase] sharded out-of-core spill tier ...");
        let n = 1_000_000usize;
        let num_shards = 8usize;
        let k = if quick { 8 } else { 16 };
        let seed = 42u64;
        let text = synth_edge_list(n, 2, 0xA5A5_5A5A);
        let groups = Groups::from_assignment((0..n).map(|v| (v % 2) as u32).collect());
        let mut cfg = GreediConfig::new(k);
        cfg.shards = num_shards;
        cfg.seed = seed;

        let partition = shard_partition(n, num_shards, seed);
        let mut owner = vec![0u32; n];
        for (s, members) in partition.iter().enumerate() {
            for &v in members {
                owner[v as usize] = s as u32;
            }
        }
        // Ascending member lists per shard — the numbering shared by
        // `read_shard_slices` and `spill_shard_slices`.
        let mut members: Vec<Vec<ItemId>> = vec![Vec::new(); num_shards];
        for v in 0..n {
            members[owner[v] as usize].push(v as ItemId);
        }

        // After (run first — see above): stream the edge list once per
        // shard into a scratch-dir slice, then solve out-of-core; each
        // round-1 step reloads one slice, builds its oracle, and drops
        // both before the next shard is touched.
        let scratch =
            std::env::temp_dir().join(format!("fair-submod-spill-{}", std::process::id()));
        let start = Instant::now();
        let (spill_out, spill_rss) = {
            let spilled = Arc::new(
                spill_shard_slices(
                    || Ok(std::io::Cursor::new(text.as_bytes())),
                    n,
                    false,
                    &owner,
                    num_shards,
                    1 << 20,
                    &scratch,
                )
                .expect("scratch dir is writable"),
            );
            let build_spilled = Arc::clone(&spilled);
            let build_groups = groups.clone();
            let build: ShardBuilder = Box::new(move |s, _members| {
                let slice = build_spilled[s]
                    .load()
                    .map_err(|e| SolverError::InvalidParams {
                        solver: "sharded_1m_spill".into(),
                        message: format!("scratch reload failed: {e}"),
                    })?;
                Ok(Arc::new(CoverageOracle::new(
                    dominating_slice_system(&slice, n),
                    &build_groups,
                )) as Arc<dyn DynUtilitySystem>)
            });
            let merge_spilled = Arc::clone(&spilled);
            let merge_owner = owner.clone();
            let merge_groups = groups.clone();
            let merge: MergeBuilder = Box::new(move |pool| {
                // One spilled slice resident at a time: collect the
                // pool ids' neighbor rows shard by shard, then emit the
                // sets in pool order (the same order the resident merge
                // builder produces, so the merge oracles are
                // bit-identical).
                let mut rows: Vec<Option<Vec<u32>>> = vec![None; pool.len()];
                for (s, handle) in merge_spilled.iter().enumerate() {
                    if pool.iter().all(|&v| merge_owner[v as usize] as usize != s) {
                        continue;
                    }
                    let slice = handle.load().expect("scratch reload failed");
                    for (row, &v) in rows.iter_mut().zip(pool) {
                        if merge_owner[v as usize] as usize == s {
                            let mut set = slice
                                .neighbors_of(v)
                                .expect("pool ids come from shard members")
                                .to_vec();
                            set.push(v);
                            *row = Some(set);
                        }
                    }
                }
                let sets = rows
                    .into_iter()
                    .map(|r| r.expect("every pool id is owned by a shard"))
                    .collect();
                Arc::new(CoverageOracle::new(SetSystem::new(sets, n), &merge_groups))
            });
            let instance =
                ShardedInstance::out_of_core(members, build, merge).expect("partition is valid");
            let out = instance
                .try_solve_greedi(k, cfg.variant.clone())
                .expect("scratch dir stays readable");
            (out, peak_rss_mib())
        };
        let after_seconds = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&scratch);

        // Before (run second, so its larger peak cannot mask the spill
        // floor): the fully resident sharded tier — the same assembly
        // as `sharded_1m`'s after-side.
        let start = Instant::now();
        let (incore_out, incore_rss) = {
            let slices: Vec<Arc<CsrSlice>> =
                read_shard_slices(text.as_bytes(), n, false, &owner, num_shards, 1 << 20)
                    .expect("synthetic list is well-formed")
                    .into_iter()
                    .map(Arc::new)
                    .collect();
            let shard_oracles = slices
                .iter()
                .map(|slice| {
                    let oracle = CoverageOracle::new(dominating_slice_system(slice, n), &groups);
                    ShardOracle {
                        members: slice.nodes().to_vec(),
                        system: Arc::new(oracle),
                    }
                })
                .collect();
            let merge_slices = slices.clone();
            let merge_groups = groups.clone();
            let merge: MergeBuilder = Box::new(move |pool| {
                let sets = pool
                    .iter()
                    .map(|&v| {
                        let mut s = merge_slices
                            .iter()
                            .find_map(|sl| sl.neighbors_of(v))
                            .expect("pool ids come from shard members")
                            .to_vec();
                        s.push(v);
                        s
                    })
                    .collect();
                Arc::new(CoverageOracle::new(SetSystem::new(sets, n), &merge_groups))
            });
            let instance =
                ShardedInstance::new(shard_oracles, merge).expect("slice shards are valid");
            let out = instance.solve_greedi(k, cfg.variant.clone());
            (out, peak_rss_mib())
        };
        let before_seconds = start.elapsed().as_secs_f64();

        // The spill path must be a pure residency change: bit-identical
        // reports, both against each other and therefore against the
        // `sharded_1m` centralized contract.
        assert_eq!(
            incore_out.items, spill_out.items,
            "out-of-core spill tier changed the selection"
        );
        assert_eq!(
            incore_out.value.to_bits(),
            spill_out.value.to_bits(),
            "out-of-core spill tier changed the objective"
        );
        assert_eq!(
            incore_out.oracle_calls, spill_out.oracle_calls,
            "out-of-core spill tier changed the call accounting"
        );

        let wall_budget_seconds = if quick { 120.0 } else { 240.0 };
        let rss_budget_mib = 2048.0;
        let rss_floor_frac = 0.6;
        assert!(
            after_seconds <= wall_budget_seconds,
            "sharded_1m_spill blew its wall-clock budget: \
             {after_seconds:.1}s > {wall_budget_seconds:.0}s"
        );
        if let Some(rss) = spill_rss {
            assert!(
                rss <= rss_budget_mib,
                "sharded_1m_spill blew its peak-RSS budget: {rss:.0} MiB > {rss_budget_mib:.0} MiB"
            );
        }
        let isolated = only.as_deref() == Some("sharded_1m_spill");
        if isolated {
            if let (Some(spill), Some(incore)) = (spill_rss, incore_rss) {
                assert!(
                    spill <= rss_floor_frac * incore,
                    "out-of-core spill tier did not lower the peak-RSS floor: \
                     {spill:.0} MiB > {rss_floor_frac:.2} x {incore:.0} MiB in-core"
                );
            }
        }
        scenarios.push(Scenario {
            name: "sharded_1m_spill",
            before_label: "sharded_in_core",
            after_label: "sharded_out_of_core_spill",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"nodes\": {n}, \"shards\": {num_shards}, \"k\": {k}, \
                 \"wallclock_budget_seconds\": {wall_budget_seconds:.1}, \
                 \"spill_peak_rss_mib\": {}, \"in_core_peak_rss_mib\": {}, \
                 \"peak_rss_budget_mib\": {rss_budget_mib:.1}, \
                 \"rss_floor_frac\": {rss_floor_frac:.2}, \
                 \"rss_floor_enforced\": {isolated}",
                spill_rss.map_or("null".into(), |r| format!("{r:.1}")),
                incore_rss.map_or("null".into(), |r| format!("{r:.1}"))
            ),
            phases: Vec::new(),
        });
    }

    // ── 8. RIS greedy rounds: incremental counters vs rescan kernel. ──
    if should_run("ris_incremental_vs_rescan") {
        eprintln!("[perfbase] ris incremental vs rescan ...");
        let dataset = rand_mc(2, if quick { 200 } else { 500 }, seeds::RAND + 3);
        let model = DiffusionModel::ic(0.1);
        let rr = if quick { 5_000 } else { 20_000 };
        let cfg = RisConfig::new(rr, 13);
        let (oracle, build) =
            RisOracle::generate_profiled(&dataset.graph, model, &dataset.groups, &cfg);
        let rescan = oracle.rescan_reference();
        let f = MeanUtility::new(oracle.num_users());
        let k = if quick { 10 } else { 20 };
        // Naive full-scan rounds on both sides, so the only difference
        // is the gain kernel: counter reads vs per-item RR-set rescans.
        let gcfg = GreedyConfig::naive(k);
        let before_seconds = time_best(reps, || greedy(&rescan, &f, &gcfg));
        let after_seconds = time_best(reps, || greedy(&oracle, &f, &gcfg));
        let inc = greedy(&oracle, &f, &gcfg);
        let res = greedy(&rescan, &f, &gcfg);
        assert_eq!(inc.items, res.items, "incremental kernel changed selection");
        assert_eq!(
            inc.value.to_bits(),
            res.value.to_bits(),
            "incremental kernel changed the objective"
        );
        assert_eq!(
            inc.oracle_calls, res.oracle_calls,
            "incremental kernel changed call accounting"
        );
        scenarios.push(Scenario {
            name: "ris_incremental_vs_rescan",
            before_label: "rescan_rr_sets",
            after_label: "incremental_counters",
            before_seconds,
            after_seconds,
            extra: format!(", \"k\": {k}, \"rr_sets\": {rr}"),
            phases: vec![
                ("sample", build.sample_seconds),
                ("build_index", build.index_seconds),
                ("compress", build.compress_seconds),
                ("solve_rounds", after_seconds),
            ],
        });
    }

    // ── 8b. Compressed RR arena vs the flat-u32 uncompressed twin. ────
    if should_run("rr_arena_compressed") {
        eprintln!("[perfbase] rr arena compressed vs uncompressed ...");
        let dataset = rand_mc(2, if quick { 200 } else { 500 }, seeds::RAND + 3);
        let model = DiffusionModel::ic(0.1);
        let rr = if quick { 5_000 } else { 20_000 };
        let cfg = RisConfig::new(rr, 13);
        let (oracle, build) =
            RisOracle::generate_profiled(&dataset.graph, model, &dataset.groups, &cfg);
        let reference = oracle.uncompressed_reference();
        let f = MeanUtility::new(oracle.num_users());
        let k = if quick { 10 } else { 20 };
        // Naive full-scan rounds on both sides: gains are counter reads
        // in both kernels, so the only timed difference is `apply` —
        // decode-on-scan over varint gaps vs a flat u32 arena walk.
        // This bounds the decode overhead the compression buys its
        // memory savings with (DESIGN.md §11).
        let gcfg = GreedyConfig::naive(k);
        let before_seconds = time_best(reps, || greedy(&reference, &f, &gcfg));
        let after_seconds = time_best(reps, || greedy(&oracle, &f, &gcfg));
        let comp = greedy(&oracle, &f, &gcfg);
        let flat = greedy(&reference, &f, &gcfg);
        assert_eq!(
            comp.items, flat.items,
            "compressed arena changed the selection"
        );
        assert_eq!(
            comp.value.to_bits(),
            flat.value.to_bits(),
            "compressed arena changed the objective"
        );
        assert_eq!(
            comp.oracle_calls, flat.oracle_calls,
            "compressed arena changed call accounting"
        );
        let compressed_bytes = oracle.arena_bytes();
        let uncompressed_bytes = 4 * oracle.arena_len();
        let ratio = compressed_bytes as f64 / uncompressed_bytes as f64;
        // Gap+varint coding of sorted RR node lists must actually
        // compress; a ratio drifting toward 1.0 means the encoder
        // regressed to fixed-width storage.
        assert!(
            ratio < 0.75,
            "compressed RR arena stopped compressing: \
             {compressed_bytes} / {uncompressed_bytes} bytes = {ratio:.2}"
        );
        scenarios.push(Scenario {
            name: "rr_arena_compressed",
            before_label: "uncompressed_arena",
            after_label: "compressed_arena",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"k\": {k}, \"rr_sets\": {rr}, \
                 \"compressed_bytes\": {compressed_bytes}, \
                 \"uncompressed_bytes\": {uncompressed_bytes}, \
                 \"compression_ratio\": {ratio:.4}"
            ),
            phases: vec![
                ("sample", build.sample_seconds),
                ("build_index", build.index_seconds),
                ("compress", build.compress_seconds),
                ("solve_rounds", after_seconds),
            ],
        });
    }

    // ── 9. CELF (lazy, batched refreshes) vs naive full-scan rounds. ──
    if should_run("celf_vs_naive_rounds") {
        eprintln!("[perfbase] celf vs naive rounds ...");
        // Facility location: gain evaluation costs O(active users) per
        // candidate, so skipped evaluations — CELF's whole point — are
        // the dominant term. (On the counter-read coverage kernel a
        // full naive scan is already nearly free, which is exactly what
        // `ris_incremental_vs_rescan` measures instead.)
        let (m, n) = if quick { (800, 400) } else { (2_000, 1_000) };
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        // Skewed per-item quality (cube of a uniform draw): real
        // benefit data has popularity skew, and a flat IID landscape is
        // CELF's degenerate worst case (every stale bound ties).
        let quality: Vec<f64> = (0..n).map(|_| next().powi(3)).collect();
        let values: Vec<f64> = (0..m * n).map(|i| next() * quality[i % n]).collect();
        let benefits = BenefitMatrix::new(values, m, n);
        let group_of: Vec<u32> = (0..m as u32).map(|u| u % 2).collect();
        let oracle = fair_submod_facility::FacilityOracle::new(benefits, group_of);
        let f = MeanUtility::new(oracle.num_users());
        let k = if quick { 20 } else { 50 };
        let before_seconds = time_best(reps, || greedy(&oracle, &f, &GreedyConfig::naive(k)));
        let after_seconds = time_best(reps, || greedy(&oracle, &f, &GreedyConfig::lazy(k)));
        let nv = greedy(&oracle, &f, &GreedyConfig::naive(k));
        let lz = greedy(&oracle, &f, &GreedyConfig::lazy(k));
        assert_eq!(lz.items, nv.items, "CELF changed the greedy selection");
        assert_eq!(
            lz.value.to_bits(),
            nv.value.to_bits(),
            "CELF changed the greedy objective"
        );
        assert!(
            lz.oracle_calls < nv.oracle_calls,
            "CELF did not save oracle calls: {} vs {}",
            lz.oracle_calls,
            nv.oracle_calls
        );
        scenarios.push(Scenario {
            name: "celf_vs_naive_rounds",
            before_label: "naive_full_scans",
            after_label: "celf_lazy_batched",
            before_seconds,
            after_seconds,
            extra: format!(
                ", \"k\": {k}, \"naive_oracle_calls\": {}, \"lazy_oracle_calls\": {}",
                nv.oracle_calls, lz.oracle_calls
            ),
            phases: vec![("solve_rounds", after_seconds)],
        });
    }

    // ── 10. Unrolled 8-word bitset popcount kernel vs scalar loop. ────
    if should_run("bitset_kernel_unrolled") {
        eprintln!("[perfbase] bitset kernel unrolled ...");
        use fair_submod_core::bitset::{popcount_andnot, scalar_popcount_andnot};
        // L1-resident buffers (8 KiB each), so the timing isolates the
        // popcount kernel instead of memory bandwidth.
        let words = 1usize << 10;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a: Vec<u64> = (0..words).map(|_| next()).collect();
        let covered: Vec<u64> = (0..words).map(|_| next()).collect();
        let sweeps = if quick { 30_000 } else { 80_000 };
        let before_seconds = time_best(reps, || {
            let mut acc = 0usize;
            for _ in 0..sweeps {
                acc = acc.wrapping_add(scalar_popcount_andnot(
                    std::hint::black_box(&a),
                    std::hint::black_box(&covered),
                ));
            }
            acc
        });
        let after_seconds = time_best(reps, || {
            let mut acc = 0usize;
            for _ in 0..sweeps {
                acc = acc.wrapping_add(popcount_andnot(
                    std::hint::black_box(&a),
                    std::hint::black_box(&covered),
                ));
            }
            acc
        });
        assert_eq!(
            popcount_andnot(&a, &covered),
            scalar_popcount_andnot(&a, &covered),
            "unrolled popcount kernel disagrees with the scalar loop"
        );
        scenarios.push(Scenario {
            name: "bitset_kernel_unrolled",
            before_label: "scalar_popcount",
            after_label: "unrolled_8_word",
            before_seconds,
            after_seconds,
            extra: format!(", \"words\": {words}, \"sweeps\": {sweeps}"),
            phases: Vec::new(),
        });
    }

    // ── Report. ───────────────────────────────────────────────────────
    let threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"perfbase\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"threads_default\": {threads},\n"));
    json.push_str(
        "  \"note\": \"1_thread-vs-default scenarios only show speedup when threads_default > 1; \
         on a single-core host they record ~1.0x by construction. The kernel scenario \
         (vec_bool vs u64_bitset) is thread-independent.\",\n",
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let speedup = s.before_seconds / s.after_seconds;
        eprintln!(
            "[perfbase] {:<24} {}: {:.4}s  {}: {:.4}s  speedup {:.2}x",
            s.name, s.before_label, s.before_seconds, s.after_label, s.after_seconds, speedup
        );
        // `--profile`: per-phase wall-clock of the shipped pipeline.
        let phases_json = if profile && !s.phases.is_empty() {
            let entries: Vec<String> = s
                .phases
                .iter()
                .map(|(name, secs)| format!("{{ \"name\": \"{name}\", \"seconds\": {secs:.6} }}"))
                .collect();
            format!(", \"phases\": [{}]", entries.join(", "))
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"before_label\": \"{}\", \"before_seconds\": {:.6}, \
             \"after_label\": \"{}\", \"after_seconds\": {:.6}, \"speedup\": {:.4}{}{} }}{}\n",
            s.name,
            s.before_label,
            s.before_seconds,
            s.after_label,
            s.after_seconds,
            speedup,
            s.extra,
            phases_json,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("[perfbase] wrote {out_path}");
}
