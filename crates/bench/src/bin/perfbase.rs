//! Perf baseline runner: times the oracle hot paths before/after the
//! parallel + packed-kernel optimizations and records the numbers as
//! JSON, so speedups are measured rather than asserted and the baseline
//! can never bit-rot (CI runs `perfbase --quick` on every push).
//!
//! Each scenario is timed twice in one process:
//!
//! * **before** — the sequential/seed configuration: worker count forced
//!   to 1 via [`rayon::set_num_threads`], and for the coverage kernel
//!   the retained `Vec<bool>` reference implementation
//!   ([`UnpackedCoverageOracle`](fair_submod_coverage::UnpackedCoverageOracle));
//! * **after** — the shipped configuration: default worker count and the
//!   packed `u64` bitset kernel.
//!
//! Selections are asserted identical between the two runs (the
//! parallel paths are deterministic by construction), so `perfbase`
//! doubles as an end-to-end equivalence smoke test.
//!
//! The `grid_warm_vs_cold` scenario measures the session layer instead
//! of thread counts: a Greedy k-sweep (k = 5..50) run cold (every cell
//! from the empty set) versus warm (the whole k-axis served from one
//! resumable session by prefix extraction), with bit-identical
//! solutions asserted between the two.
//!
//! Usage: `cargo run -p fair-submod-bench --release --bin perfbase --
//! [--quick] [--out BENCH_baseline.json]`.

use std::time::Instant;

use fair_submod_bench::harness::{run_suite, GridConfig};
use fair_submod_core::prelude::*;
use fair_submod_datasets::{facebook_like, rand_fl, rand_mc, seeds};
use fair_submod_facility::BenefitMatrix;
use fair_submod_influence::oracle::{RisConfig, RisOracle};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

struct Scenario {
    name: &'static str,
    before_label: &'static str,
    after_label: &'static str,
    before_seconds: f64,
    after_seconds: f64,
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` with the worker count forced to 1, then at the default.
fn time_seq_vs_par<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, f64) {
    rayon::set_num_threads(1);
    let seq = time_best(reps, &mut f);
    rayon::set_num_threads(0);
    let par = time_best(reps, &mut f);
    (seq, par)
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = if quick { 3 } else { 5 };
    let mut scenarios: Vec<Scenario> = Vec::new();

    // ── 1. Coverage gain kernel: packed u64 bitset vs Vec<bool>. ──────
    eprintln!("[perfbase] coverage kernel ...");
    {
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND);
        let packed = dataset.coverage_oracle();
        let unpacked = packed.unpacked_reference();
        let sweeps = if quick { 40 } else { 100 };
        // Identical workload on both kernels: scan all candidate gains
        // from a partially grown solution.
        fn kernel_workload<S: fair_submod_core::system::UtilitySystem>(
            sys: &S,
            sweeps: usize,
        ) -> f64 {
            let mut st = SolutionState::new(sys);
            for v in 0..5 {
                st.insert(v * 7);
            }
            let mut out = vec![0.0; sys.num_groups()];
            let mut acc = 0.0;
            for _ in 0..sweeps {
                for v in 0..sys.num_items() as u32 {
                    st.gains_into(v, &mut out);
                    acc += out[0];
                }
            }
            acc
        }
        let before_seconds = time_best(reps, || kernel_workload(&unpacked, sweeps));
        let after_seconds = time_best(reps, || kernel_workload(&packed, sweeps));
        assert_eq!(
            kernel_workload(&unpacked, 1).to_bits(),
            kernel_workload(&packed, 1).to_bits(),
            "packed and unpacked coverage kernels disagree"
        );
        scenarios.push(Scenario {
            name: "coverage_gain_kernel",
            before_label: "vec_bool",
            after_label: "u64_bitset",
            before_seconds,
            after_seconds,
        });
    }

    // ── 2. Naive-greedy rounds: batched candidate scan, 1 thread vs default. ──
    eprintln!("[perfbase] naive greedy rounds ...");
    {
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND + 1);
        let oracle = dataset.coverage_oracle();
        let f = MeanUtility::new(oracle.num_users());
        let k = if quick { 5 } else { 10 };
        let (before_seconds, after_seconds) =
            time_seq_vs_par(reps, || greedy(&oracle, &f, &GreedyConfig::naive(k)));
        rayon::set_num_threads(1);
        let seq_items = greedy(&oracle, &f, &GreedyConfig::naive(k)).items;
        rayon::set_num_threads(0);
        let par_items = greedy(&oracle, &f, &GreedyConfig::naive(k)).items;
        assert_eq!(
            seq_items, par_items,
            "thread count changed greedy selection"
        );
        scenarios.push(Scenario {
            name: "naive_greedy_round",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
        });
    }

    // ── 3. Batched RR-set sampling, 1 thread vs default. ──────────────
    eprintln!("[perfbase] rr sampling ...");
    {
        let dataset = rand_mc(2, if quick { 200 } else { 500 }, seeds::RAND + 2);
        let model = DiffusionModel::ic(0.1);
        let rr = if quick { 5_000 } else { 20_000 };
        let cfg = RisConfig::new(rr, 11);
        let (before_seconds, after_seconds) = time_seq_vs_par(reps, || {
            RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg)
        });
        let probe: Vec<u32> = vec![0, 3, 17];
        rayon::set_num_threads(1);
        let seq = RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg);
        rayon::set_num_threads(0);
        let par = RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg);
        assert_eq!(
            seq.estimated_spread(&probe).to_bits(),
            par.estimated_spread(&probe).to_bits(),
            "thread count changed RR sampling"
        );
        scenarios.push(Scenario {
            name: "rr_sampling_batch",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
        });
    }

    // ── 4. Benefit-matrix construction (row-parallel RBF kernel). ─────
    eprintln!("[perfbase] benefit matrix ...");
    {
        let dataset = rand_fl(2, seeds::FL);
        let (before_seconds, after_seconds) =
            time_seq_vs_par(reps, || BenefitMatrix::rbf(&dataset.users, &dataset.items));
        rayon::set_num_threads(1);
        let seq = BenefitMatrix::rbf(&dataset.users, &dataset.items);
        rayon::set_num_threads(0);
        let par = BenefitMatrix::rbf(&dataset.users, &dataset.items);
        for u in 0..seq.num_users() {
            assert!(
                seq.row(u)
                    .iter()
                    .zip(par.row(u))
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count changed benefit matrix row {u}"
            );
        }
        scenarios.push(Scenario {
            name: "benefit_matrix_rbf",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
        });
    }

    // ── 5. End-to-end fig6-style IM sweep (RIS + suite + MC eval). ────
    eprintln!("[perfbase] fig6-style sweep ...");
    {
        let dataset = facebook_like(2, seeds::FACEBOOK);
        let model = DiffusionModel::ic(0.01);
        let rr = if quick { 2_000 } else { 5_000 };
        let mc_runs = if quick { 200 } else { 500 };
        let registry = SolverRegistry::default();
        let sweep = || {
            let oracle = dataset.ris_oracle(model, rr, seeds::FACEBOOK ^ 0x11);
            let evaluator = |items: &[u32]| {
                monte_carlo_evaluate(
                    &dataset.graph,
                    model,
                    &dataset.groups,
                    items,
                    mc_runs,
                    seeds::FACEBOOK ^ 0x22,
                )
            };
            let mut fs = Vec::new();
            for k in [5usize, 10] {
                let results = run_suite(&oracle, &evaluator, &registry, &GridConfig::paper(k, 0.8))
                    .expect("paper grid is valid");
                fs.extend(
                    results
                        .into_iter()
                        .map(|r| r.outcome.expect("paper solvers run on c = 2").f),
                );
            }
            fs
        };
        let (before_seconds, after_seconds) = time_seq_vs_par(1.max(reps / 2), sweep);
        rayon::set_num_threads(1);
        let seq_fs = sweep();
        rayon::set_num_threads(0);
        let par_fs = sweep();
        assert!(
            seq_fs.len() == par_fs.len()
                && seq_fs
                    .iter()
                    .zip(&par_fs)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "thread count changed sweep results"
        );
        scenarios.push(Scenario {
            name: "fig6_style_sweep",
            before_label: "1_thread",
            after_label: "default_threads",
            before_seconds,
            after_seconds,
        });
    }

    // ── 6. Warm vs cold k-axis sweep (session prefix extraction). ────
    eprintln!("[perfbase] grid warm vs cold k-sweep ...");
    {
        let n = if quick { 400 } else { 1_000 };
        let dataset = rand_mc(2, n, seeds::RAND + 7);
        let oracle = dataset.coverage_oracle();
        let registry = SolverRegistry::default();
        let ks: Vec<usize> = (1..=10).map(|i| i * 5).collect(); // 5, 10, …, 50
        let grid = GridConfig {
            solvers: vec!["Greedy".into()],
            ks,
            taus: vec![0.8],
            epsilons: vec![0.05],
            repetitions: 1,
            warm_sweeps: true,
            base: fair_submod_core::engine::ScenarioParams::new(5, 0.8),
        };
        let run = |grid: &GridConfig| {
            run_suite(
                &oracle,
                &|items| fair_submod_core::metrics::evaluate(&oracle, items),
                &registry,
                grid,
            )
            .expect("k-sweep grid is valid")
        };
        let cold_grid = grid.clone().cold();
        let before_seconds = time_best(reps, || run(&cold_grid));
        let after_seconds = time_best(reps, || run(&grid));
        // Warm prefix extraction must be bit-identical to cold solves.
        let warm = run(&grid);
        let cold = run(&cold_grid);
        for (w, c) in warm.iter().zip(&cold) {
            let (wr, cr) = (
                w.report().expect("greedy runs"),
                c.report().expect("greedy runs"),
            );
            assert_eq!(wr.items, cr.items, "warm sweep changed selections");
            assert_eq!(
                wr.objective.to_bits(),
                cr.objective.to_bits(),
                "warm sweep changed objectives"
            );
            assert_eq!(
                wr.oracle_calls, cr.oracle_calls,
                "warm sweep changed call accounting"
            );
        }
        scenarios.push(Scenario {
            name: "grid_warm_vs_cold",
            before_label: "cold_per_cell",
            after_label: "warm_k_axis_session",
            before_seconds,
            after_seconds,
        });
    }

    // ── Report. ───────────────────────────────────────────────────────
    let threads = rayon::current_num_threads();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"perfbase\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"threads_default\": {threads},\n"));
    json.push_str(
        "  \"note\": \"1_thread-vs-default scenarios only show speedup when threads_default > 1; \
         on a single-core host they record ~1.0x by construction. The kernel scenario \
         (vec_bool vs u64_bitset) is thread-independent.\",\n",
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let speedup = s.before_seconds / s.after_seconds;
        eprintln!(
            "[perfbase] {:<24} {}: {:.4}s  {}: {:.4}s  speedup {:.2}x",
            s.name, s.before_label, s.before_seconds, s.after_label, s.after_seconds, speedup
        );
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"before_label\": \"{}\", \"before_seconds\": {:.6}, \
             \"after_label\": \"{}\", \"after_seconds\": {:.6}, \"speedup\": {:.4} }}{}\n",
            s.name,
            s.before_label,
            s.before_seconds,
            s.after_label,
            s.after_seconds,
            speedup,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("[perfbase] wrote {out_path}");
}
