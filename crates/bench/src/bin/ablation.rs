//! Ablation study (DESIGN.md §6): the design choices behind the paper's
//! algorithms, measured head-to-head on RAND (MC, c=4, k=5, τ=0.8).
//!
//! 1. Greedy engine: naive vs lazy-forward vs stochastic — oracle calls
//!    and wall time at equal quality.
//! 2. Robust solver: Saturate (budget 1×/2×) vs MWU — `OPT'_g` quality.
//! 3. BSM-Saturate size cap: `k` (paper experiments) vs `k·ln(c/ε)`
//!    (theory) — solution size vs constraint satisfaction.
//! 4. Instance curvature and the induced greedy factor per application.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::report::Table;
use fair_submod_core::algorithms::bsm_saturate::{
    bsm_saturate_detailed, BsmSaturateConfig, SizeCap,
};
use fair_submod_core::algorithms::greedy::{greedy, GreedyConfig, GreedyVariant};
use fair_submod_core::algorithms::mwu::{mwu_robust, MwuConfig};
use fair_submod_core::algorithms::saturate::{saturate, SaturateConfig};
use fair_submod_core::curvature::total_curvature;
use fair_submod_core::metrics::evaluate;
use fair_submod_core::prelude::MeanUtility;
use fair_submod_datasets::{rand_fl, rand_mc, seeds};

fn main() {
    let args = ExpArgs::parse();
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    let k = 5;
    let tau = 0.8;
    let f = MeanUtility::new(500);

    // 1. Greedy engines.
    let mut engines = Table::new(
        "Ablation 1: greedy engine (MC RAND c=4, k=5)",
        &["engine", "f(S)", "oracle_calls", "time_s"],
    );
    for (name, variant) in [
        ("naive", GreedyVariant::Naive),
        ("lazy", GreedyVariant::Lazy),
        (
            "stochastic(100)",
            GreedyVariant::Stochastic { sample_size: 100 },
        ),
    ] {
        let cfg = GreedyConfig {
            variant,
            seed: 7,
            ..GreedyConfig::lazy(k)
        };
        let start = std::time::Instant::now();
        let run = greedy(&oracle, &f, &cfg);
        engines.push(vec![
            name.to_string(),
            format!("{:.6}", run.value),
            run.oracle_calls.to_string(),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    engines.print();
    engines
        .write_csv(&args.out_dir, "ablation_engines")
        .unwrap();

    // 2. Robust solvers.
    let mut robust = Table::new(
        "Ablation 2: robust solver (OPT'_g estimators)",
        &["solver", "OPT'_g", "|S|", "oracle_calls", "time_s"],
    );
    for (name, budget) in [("saturate_1x", 1.0), ("saturate_2x", 2.0)] {
        let mut cfg = SaturateConfig::new(k).approximate_only();
        cfg.budget_factor = budget;
        let start = std::time::Instant::now();
        let out = saturate(&oracle, &cfg);
        robust.push(vec![
            name.to_string(),
            format!("{:.6}", out.opt_g_estimate),
            out.items.len().to_string(),
            out.oracle_calls.to_string(),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    {
        let start = std::time::Instant::now();
        let out = mwu_robust(&oracle, &MwuConfig::new(k));
        robust.push(vec![
            "mwu_30_rounds".to_string(),
            format!("{:.6}", out.opt_g_estimate),
            out.items.len().to_string(),
            out.oracle_calls.to_string(),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    robust.print();
    robust.write_csv(&args.out_dir, "ablation_robust").unwrap();

    // 3. BSM-Saturate size cap.
    let mut caps = Table::new(
        "Ablation 3: BSM-Saturate size cap (tau = 0.8)",
        &["cap", "|S|", "f(S)", "g(S)", "alpha_min", "weak_ok"],
    );
    for (name, cap) in [
        ("k (paper)", SizeCap::Exact),
        ("k*ln(c/eps)", SizeCap::Theory),
    ] {
        let mut cfg = BsmSaturateConfig::new(k, tau);
        cfg.size_cap = cap;
        let out = bsm_saturate_detailed(&oracle, &cfg);
        let eval = evaluate(&oracle, &out.bsm.items);
        caps.push(vec![
            name.to_string(),
            out.bsm.items.len().to_string(),
            format!("{:.6}", eval.f),
            format!("{:.6}", eval.g),
            format!("{:.4}", out.alpha_min),
            if eval.g + 1e-9 >= tau * out.bsm.opt_g_estimate {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    caps.print();
    caps.write_csv(&args.out_dir, "ablation_sizecap").unwrap();

    // 4. Curvature per application.
    let mut curv = Table::new(
        "Ablation 4: instance curvature and induced greedy factor",
        &["instance", "kappa", "greedy_factor"],
    );
    {
        let small_mc = rand_mc(2, 150, seeds::RAND);
        let mc_oracle = small_mc.coverage_oracle();
        let c = total_curvature(&mc_oracle, &MeanUtility::new(150));
        curv.push(vec![
            "MC RAND (n=150)".into(),
            format!("{:.4}", c.kappa),
            format!("{:.4}", c.greedy_factor),
        ]);
        let fl = rand_fl(2, seeds::FL);
        let fl_oracle = fl.oracle();
        let c = total_curvature(&fl_oracle, &MeanUtility::new(100));
        curv.push(vec![
            "FL RAND (n=100)".into(),
            format!("{:.4}", c.kappa),
            format!("{:.4}", c.greedy_factor),
        ]);
    }
    curv.print();
    curv.write_csv(&args.out_dir, "ablation_curvature").unwrap();
}
