//! The shared scenario runner: executes any built-in or on-disk
//! [`ScenarioSpec`](fair_submod_bench::scenario::ScenarioSpec) through
//! the solver registry.
//!
//! ```text
//! scenarios --list                       # show the built-in specs
//! scenarios --spec fig3 [--quick]        # run a paper artifact
//! scenarios --spec my_experiment.json    # run a custom spec file
//! scenarios --spec smoke --quick --strict  # the CI smoke gate
//! scenarios --spec fig4 --solvers Greedy,BSM-Saturate  # subset rerun
//! scenarios --spec smoke --quick --cold  # disable warm k-axis sweeps
//! ```

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::scenario::{alias_main, builtin_specs, load_spec};

fn main() {
    let args = ExpArgs::parse();
    if args.list {
        println!("built-in scenario specs:");
        for (name, _) in builtin_specs() {
            let spec = load_spec(name).expect("built-in specs always parse");
            println!("  {name:<8} {}", spec.title);
        }
        return;
    }
    match args.spec.as_deref() {
        Some(spec) => alias_main(spec),
        None => {
            eprintln!(
                "usage: scenarios --spec <name-or-path> [--quick] [--strict] \
                 [--solvers a,b] [--cold]"
            );
            eprintln!("       scenarios --list");
            std::process::exit(2);
        }
    }
}
