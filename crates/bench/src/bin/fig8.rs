//! Figure 8: facility location, varying the solution size k (τ = 0.8).
//!
//! Datasets: Adult (Gender c=2 / Race c=5, 1,000 records, RBF) and
//! FourSquare NYC/TKY (c = 1,000 singleton groups, k-median benefits) —
//! the paper's stress test for many groups.

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::harness::{run_suite, SuiteConfig};
use fair_submod_bench::report::{push_results, Table, RESULT_HEADERS};
use fair_submod_core::metrics::evaluate;
use fair_submod_datasets::{adult_like, foursquare_like, seeds, AdultSize, City};

fn main() {
    let args = ExpArgs::parse();
    let tau = 0.8;
    let ks: Vec<usize> = if args.quick {
        vec![10, 30, 50]
    } else {
        (1..=10).map(|i| i * 5).collect()
    };
    let mut table = Table::new("Figure 8: FL, varying k (tau = 0.8)", RESULT_HEADERS);

    let datasets = vec![
        adult_like(AdultSize::Gender, seeds::FL + 3),
        adult_like(AdultSize::Race, seeds::FL + 3),
        foursquare_like(City::Nyc, seeds::FL + 4),
        foursquare_like(City::Tky, seeds::FL + 5),
    ];
    for dataset in &datasets {
        let oracle = dataset.oracle();
        eprintln!("[fig8] {} ...", dataset.name);
        for &k in &ks {
            let cfg = SuiteConfig::paper(k, tau);
            let results = run_suite(&oracle, &|items| evaluate(&oracle, items), &cfg);
            push_results(&mut table, &dataset.name, &results);
        }
    }

    table.print();
    table.write_csv(&args.out_dir, "fig8").expect("write csv");
}
