//! # fair-submod-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 5 and Appendix B). One binary per experiment:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1`, `table2` | dataset statistics |
//! | `fig3` | MC, vary τ (RAND c=2/c=4, DBLP) incl. `BSM-Optimal` |
//! | `fig4` | MC, vary k + runtime (Facebook, Pokec) |
//! | `fig5` | IM, vary τ (RAND c=2/c=4, DBLP) |
//! | `fig6` | IM, vary k + runtime (Facebook, Pokec) |
//! | `fig7` | FL, vary τ (RAND c=2/c=3, Adult-Small) incl. `BSM-Optimal` |
//! | `fig8` | FL, vary k + runtime (Adult, FourSquare) |
//! | `fig9` | BSM-Saturate, vary ε (Appendix B) |
//! | `fig10` | MC+IM, vary τ on Facebook (Appendix B) |
//! | `fig11` | MC+IM, vary k on DBLP (Appendix B) |
//!
//! Run with `cargo run -p fair-submod-bench --release --bin fig3`.
//! Common flags: `--quick` (coarser sweeps), `--out <dir>` (CSV output
//! directory, default `experiments/`), `--pokec-nodes <n>`,
//! `--mc-runs <n>` (Monte-Carlo evaluation runs).

pub mod args;
pub mod harness;
pub mod report;
