//! # fair-submod-bench
//!
//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Section 5 and Appendix B), built on the solver
//! registry in [`fair_submod_core::engine`]:
//!
//! * [`harness`] — the registry-driven grid executor: expands a
//!   `(solver, k, τ, ε) × repetitions` grid into cells, runs them
//!   concurrently, and records capability gaps as typed errors.
//! * [`scenario`] — the declarative layer: serde-backed
//!   [`scenario::ScenarioSpec`]s (dataset recipes + substrate + solver
//!   list + grids) executed by [`scenario::run_spec`], with every run
//!   persisted as a JSON report artifact.
//! * [`report`] — aligned stdout tables and CSV export.
//! * [`args`] — the shared `--quick`/`--out`/… CLI flags.
//!
//! Each paper artifact is a built-in spec (see
//! [`scenario::builtin_specs`]); the historical binary names are thin
//! aliases over the shared `scenarios` runner:
//!
//! | Spec / binary | Paper artifact |
//! |---|---|
//! | `table1`, `table2` | dataset statistics |
//! | `fig3` | MC, vary τ (RAND c=2/c=4, DBLP) incl. `BSM-Optimal` |
//! | `fig4` | MC, vary k + runtime (Facebook, Pokec) |
//! | `fig5` | IM, vary τ (RAND c=2/c=4, DBLP) |
//! | `fig6` | IM, vary k + runtime (Facebook, Pokec) |
//! | `fig7` | FL, vary τ (RAND c=2/c=3, Adult-Small) incl. `BSM-Optimal` |
//! | `fig8` | FL, vary k + runtime (Adult, FourSquare) |
//! | `fig9` | BSM-Saturate, vary ε (Appendix B) |
//! | `fig10` | MC+IM, vary τ on Facebook (Appendix B) |
//! | `fig11` | MC+IM, vary k on DBLP (Appendix B) |
//! | `smoke` | CI: every registered solver on tiny instances |
//!
//! Run any spec with `cargo run -p fair-submod-bench --release --bin
//! scenarios -- --spec fig3` (or via its alias binary, e.g. `--bin
//! fig3`), and custom experiments with `--spec path/to/spec.json`
//! (schema: `crates/bench/specs/README.md`).
//! Common flags: `--quick` (thinned grids, exact solvers dropped),
//! `--out <dir>` (CSV/report output directory, default `experiments/`),
//! `--strict` (non-zero exit on rejected cells or empty solutions),
//! `--report <path>` (JSON artifact path), `--pokec-nodes <n>`,
//! `--mc-runs <n>`, `--rr-sets <n>`.
//!
//! Beyond the scenario runner, two bespoke binaries measure the system
//! itself: `perfbase` (oracle/kernel hot-path timings,
//! `BENCH_baseline.json`) and `loadgen` (latency percentiles and
//! throughput against the `fair-submod-service` solve daemon,
//! `BENCH_service.json`).

pub mod args;
pub mod harness;
pub mod report;
pub mod scenario;
