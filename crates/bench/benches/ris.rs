//! Microbenchmarks: RR-set sampling and Monte-Carlo simulation
//! throughput — the two estimation costs that dominate IM experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fair_submod_datasets::{rand_mc, seeds};
use fair_submod_influence::oracle::{RisConfig, RisOracle};
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

fn bench_ris(c: &mut Criterion) {
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let model = DiffusionModel::ic(0.1);

    let mut group = c.benchmark_group("ris_and_mc");
    group.bench_function("generate_5k_rr_sets", |b| {
        b.iter(|| {
            black_box(RisOracle::generate(
                &dataset.graph,
                model,
                &dataset.groups,
                &RisConfig::new(5_000, 11),
            ))
        })
    });
    group.bench_function("monte_carlo_1k_runs_k5", |b| {
        b.iter(|| {
            black_box(monte_carlo_evaluate(
                &dataset.graph,
                model,
                &dataset.groups,
                &[0, 7, 21, 42, 77],
                1_000,
                13,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ris
}
criterion_main!(benches);
