//! Microbenchmarks: marginal-gain throughput of the three application
//! oracles (coverage, RIS, facility location).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fair_submod_core::system::SolutionState;
use fair_submod_datasets::{rand_fl, rand_mc, seeds};
use fair_submod_influence::DiffusionModel;

fn bench_oracle_gains(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_group_gains");

    let mc = rand_mc(2, 500, seeds::RAND);
    let cov = mc.coverage_oracle();
    group.bench_function("coverage_rand500", |b| {
        let mut st = SolutionState::new(&cov);
        st.insert(0);
        let mut out = vec![0.0; 2];
        let mut v = 1u32;
        b.iter(|| {
            st.gains_into(v % 500, &mut out);
            v = v.wrapping_add(1);
            black_box(out[0])
        })
    });

    let im = rand_mc(2, 100, seeds::RAND + 2);
    let ris = im.ris_oracle(DiffusionModel::ic(0.1), 10_000, 3);
    group.bench_function("ris_rand100_10k_rr", |b| {
        let mut st = SolutionState::new(&ris);
        st.insert(0);
        let mut out = vec![0.0; 2];
        let mut v = 1u32;
        b.iter(|| {
            st.gains_into(v % 100, &mut out);
            v = v.wrapping_add(1);
            black_box(out[0])
        })
    });

    let fl = rand_fl(2, seeds::FL);
    let fac = fl.oracle();
    group.bench_function("facility_rand100", |b| {
        let mut st = SolutionState::new(&fac);
        st.insert(0);
        let mut out = vec![0.0; 2];
        let mut v = 1u32;
        b.iter(|| {
            st.gains_into(v % 100, &mut out);
            v = v.wrapping_add(1);
            black_box(out[0])
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_oracle_gains
}
criterion_main!(benches);
