//! Microbenchmarks: naive vs lazy-forward vs stochastic greedy — the
//! ablation behind the paper's "runtime only grows slightly with k"
//! observation (lazy-forward, \[37\] in the paper).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use fair_submod_core::aggregate::MeanUtility;
use fair_submod_core::algorithms::greedy::{greedy, GreedyConfig, GreedyVariant};
use fair_submod_datasets::{rand_mc, seeds};

fn bench_greedy_variants(c: &mut Criterion) {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let f = MeanUtility::new(500);

    let mut group = c.benchmark_group("greedy_variants_mc_rand500");
    for k in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| black_box(greedy(&oracle, &f, &GreedyConfig::naive(k))))
        });
        group.bench_with_input(BenchmarkId::new("lazy", k), &k, |b, &k| {
            b.iter(|| black_box(greedy(&oracle, &f, &GreedyConfig::lazy(k))))
        });
        group.bench_with_input(BenchmarkId::new("stochastic", k), &k, |b, &k| {
            let cfg = GreedyConfig {
                variant: GreedyVariant::Stochastic { sample_size: 100 },
                seed: 7,
                ..GreedyConfig::lazy(k)
            };
            b.iter(|| black_box(greedy(&oracle, &f, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_greedy_variants
}
criterion_main!(benches);
