//! Microbenchmarks: end-to-end BSM solvers (TSGreedy vs BSM-Saturate vs
//! baselines) and the size-cap ablation of BSM-Saturate
//! (budget `k` vs `k·ln(c/ε)`, DESIGN.md §6).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fair_submod_core::algorithms::bsm_saturate::{bsm_saturate, BsmSaturateConfig, SizeCap};
use fair_submod_core::algorithms::saturate::{saturate, SaturateConfig};
use fair_submod_core::algorithms::smsc::{smsc, SmscConfig};
use fair_submod_core::algorithms::tsgreedy::{bsm_tsgreedy, TsGreedyConfig};
use fair_submod_datasets::{rand_mc, seeds};

fn bench_bsm_solvers(c: &mut Criterion) {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let k = 5;
    let tau = 0.8;

    let mut group = c.benchmark_group("bsm_solvers_mc_rand500");
    group.bench_function("saturate", |b| {
        let cfg = SaturateConfig::new(k).approximate_only();
        b.iter(|| black_box(saturate(&oracle, &cfg)))
    });
    group.bench_function("smsc", |b| {
        b.iter(|| black_box(smsc(&oracle, &SmscConfig::new(k))))
    });
    group.bench_function("tsgreedy", |b| {
        b.iter(|| black_box(bsm_tsgreedy(&oracle, &TsGreedyConfig::new(k, tau))))
    });
    group.bench_function("bsm_saturate_cap_k", |b| {
        b.iter(|| black_box(bsm_saturate(&oracle, &BsmSaturateConfig::new(k, tau))))
    });
    group.bench_function("bsm_saturate_cap_theory", |b| {
        let mut cfg = BsmSaturateConfig::new(k, tau);
        cfg.size_cap = SizeCap::Theory;
        b.iter(|| black_box(bsm_saturate(&oracle, &cfg)))
    });
    group.finish();
}

/// Ablations: Saturate budget blow-up and MWU as an alternative robust
/// solver (DESIGN.md §6).
fn bench_robust_ablations(c: &mut Criterion) {
    use fair_submod_core::algorithms::mwu::{mwu_robust, MwuConfig};
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    let k = 5;

    let mut group = c.benchmark_group("robust_solvers_mc_rand500_c4");
    group.bench_function("saturate_budget_1x", |b| {
        let cfg = SaturateConfig::new(k).approximate_only();
        b.iter(|| black_box(saturate(&oracle, &cfg)))
    });
    group.bench_function("saturate_budget_2x", |b| {
        let mut cfg = SaturateConfig::new(k).approximate_only();
        cfg.budget_factor = 2.0;
        b.iter(|| black_box(saturate(&oracle, &cfg)))
    });
    group.bench_function("mwu_30_rounds", |b| {
        b.iter(|| black_box(mwu_robust(&oracle, &MwuConfig::new(k))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bsm_solvers, bench_robust_ablations
}
criterion_main!(benches);
