//! Table 1 / Table 2 statistics (dataset summaries of the paper).

use fair_submod_graphs::stats::graph_stats;

use crate::fl::FlDataset;
use crate::mc::GraphDataset;

/// One row of Table 1 (graph datasets for MC and IM).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// `n` (= `m`): number of nodes/users.
    pub n: usize,
    /// `|E|`: number of edges.
    pub edges: usize,
    /// Group labels with percentage of users.
    pub groups: Vec<(String, f64)>,
}

/// One row of Table 2 (FL datasets).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Number of facilities `n`.
    pub n: usize,
    /// Number of users `m`.
    pub m: usize,
    /// Feature dimension `d`.
    pub d: usize,
    /// Group labels with percentage of users (elided when `c` is large).
    pub groups: Vec<(String, f64)>,
}

/// Builds a Table 1 row for a graph dataset.
pub fn table1_row(dataset: &GraphDataset) -> Table1Row {
    let stats = graph_stats(&dataset.graph);
    let groups = dataset
        .groups
        .labels()
        .iter()
        .cloned()
        .zip(dataset.groups.percentages())
        .collect();
    Table1Row {
        dataset: dataset.name.clone(),
        n: stats.nodes,
        edges: stats.edges,
        groups,
    }
}

/// Builds a Table 2 row for an FL dataset.
pub fn table2_row(dataset: &FlDataset) -> Table2Row {
    let c = dataset.groups.num_groups();
    let groups = if c <= 8 {
        dataset
            .groups
            .labels()
            .iter()
            .cloned()
            .zip(dataset.groups.percentages())
            .collect()
    } else {
        vec![(format!("{c} singleton groups"), 100.0 / c as f64)]
    };
    Table2Row {
        dataset: dataset.name.clone(),
        n: dataset.num_items(),
        m: dataset.num_users(),
        d: dataset.dim(),
        groups,
    }
}

/// Formats a percentage list like the paper:
/// `['U0': 20%, 'U1': 80%]`.
pub fn format_groups(groups: &[(String, f64)]) -> String {
    let inner: Vec<String> = groups
        .iter()
        .map(|(l, p)| format!("'{l}': {p:.0}%"))
        .collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fl::rand_fl;
    use crate::mc::rand_mc;

    #[test]
    fn table1_row_shape() {
        let row = table1_row(&rand_mc(2, 500, 1));
        assert_eq!(row.n, 500);
        assert!(row.edges > 0);
        assert_eq!(row.groups.len(), 2);
        assert!((row.groups[0].1 - 20.0).abs() < 1e-9);
        let s = format_groups(&row.groups);
        assert!(s.contains("'U0': 20%"));
    }

    #[test]
    fn table2_row_shape() {
        let row = table2_row(&rand_fl(3, 1));
        assert_eq!(row.n, 100);
        assert_eq!(row.m, 100);
        assert_eq!(row.d, 5);
        assert_eq!(row.groups.len(), 3);
    }

    #[test]
    fn large_c_is_elided() {
        let row = table2_row(&crate::fl::foursquare_like(crate::fl::City::Nyc, 2));
        assert_eq!(row.groups.len(), 1);
        assert!(row.groups[0].0.contains("1000"));
    }
}
