//! # fair-submod-datasets
//!
//! Named, seed-deterministic dataset builders for every experiment in the
//! paper:
//!
//! * the paper's own synthetic **RAND** datasets (SBM graphs and Gaussian
//!   blobs), reproduced with the exact published parameters;
//! * documented stand-ins for the real datasets — **Facebook**, **DBLP**,
//!   **Pokec** (graphs) and **Adult**, **FourSquare** (point sets) — with
//!   matched sizes, group percentages, and structural family (see
//!   DESIGN.md §4 for the substitution rationale);
//! * Table 1 / Table 2 statistics.
//!
//! Every builder takes an explicit seed; the canonical experiment seeds
//! live in [`seeds`].

pub mod fl;
pub mod mc;
pub mod tables;

pub use fl::{adult_like, foursquare_like, rand_fl, AdultSize, City, FlDataset};
pub use mc::{dblp_like, facebook_like, pokec_like, rand_mc, GraphDataset, PokecAttr};

/// Canonical seeds used by the experiment harness (one per dataset, so
/// every figure regenerates identically).
pub mod seeds {
    /// RAND graphs (MC/IM).
    pub const RAND: u64 = 0xB5E0;
    /// Facebook-like graph.
    pub const FACEBOOK: u64 = 0xFACE;
    /// DBLP-like graph.
    pub const DBLP: u64 = 0xDB17;
    /// Pokec-like graph.
    pub const POKEC: u64 = 0x90CEC;
    /// FL datasets.
    pub const FL: u64 = 0xF1;
}
