//! Graph datasets for the maximum-coverage and influence-maximization
//! experiments (Table 1 of the paper).

use fair_submod_coverage::{dominating_set_system, CoverageOracle};
use fair_submod_graphs::generators::{chung_lu, community_graph, power_law_weights, sbm};
use fair_submod_graphs::{Graph, Groups};
use fair_submod_influence::oracle::{RisConfig, RisOracle};
use fair_submod_influence::DiffusionModel;

/// A graph plus a demographic partition of its nodes; the substrate for
/// both MC (dominating sets) and IM (diffusion) experiments.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Human-readable name used in tables and figures.
    pub name: String,
    /// The social graph.
    pub graph: Graph,
    /// Group partition of the nodes (= users).
    pub groups: Groups,
}

impl GraphDataset {
    /// Builds the paper's dominating-set coverage oracle (Section 5.1).
    pub fn coverage_oracle(&self) -> CoverageOracle {
        CoverageOracle::new(dominating_set_system(&self.graph), &self.groups)
    }

    /// Builds a group-stratified RIS oracle for IM experiments.
    pub fn ris_oracle(&self, model: DiffusionModel, num_rr: usize, seed: u64) -> RisOracle {
        RisOracle::generate(
            &self.graph,
            model,
            &self.groups,
            &RisConfig::new(num_rr, seed),
        )
    }

    /// Number of nodes (= users `m` = items `n` in both MC and IM).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// The paper's RAND dataset: an SBM graph whose blocks *are* the groups.
///
/// `c = 2` uses ratios 20/80, `c = 4` uses 8/12/20/60 (Table 1);
/// `p_in = 0.1`, `p_out = 0.02`. The paper uses `n = 500` for MC and
/// `n = 100` for IM.
pub fn rand_mc(c: usize, n: usize, seed: u64) -> GraphDataset {
    let ratios: Vec<(&str, f64)> = match c {
        2 => vec![("U0", 0.2), ("U1", 0.8)],
        4 => vec![("U0", 0.08), ("U1", 0.12), ("U2", 0.2), ("U3", 0.6)],
        _ => panic!("RAND is defined for c ∈ {{2, 4}} (got {c})"),
    };
    // Blocks follow the group ratios so the SBM community structure and
    // the demographic partition coincide, as in the paper.
    let sizes: Vec<usize> = apportion(n, &ratios);
    let graph = sbm(&sizes, 0.1, 0.02, seed);
    let mut assignment = Vec::with_capacity(n);
    for (g, &s) in sizes.iter().enumerate() {
        assignment.extend(std::iter::repeat_n(g as u32, s));
    }
    let labels: Vec<&str> = ratios.iter().map(|&(l, _)| l).collect();
    GraphDataset {
        name: format!("RAND (c={c}, n={n})"),
        graph,
        groups: Groups::from_assignment_with_labels(assignment, &labels),
    }
}

/// Facebook stand-in: 1,216 nodes, ≈ 42,443 edges (average degree ≈ 70),
/// heavy-tailed friendship counts; the `Age` attribute partitions users
/// into 2 (8/92) or 4 (8/28/31/33) groups independent of structure.
pub fn facebook_like(c: usize, seed: u64) -> GraphDataset {
    let n = 1216;
    let target_edges = 42_443.0;
    let avg_deg = 2.0 * target_edges / n as f64;
    let weights = power_law_weights(n, avg_deg, 3.0);
    let graph = chung_lu(&weights, false, seed);
    let ratios: Vec<(&str, f64)> = match c {
        2 => vec![("<20", 0.08), (">=20", 0.92)],
        4 => vec![("19", 0.08), ("20", 0.28), ("21", 0.31), ("22", 0.33)],
        _ => panic!("Facebook is partitioned into 2 or 4 age groups (got {c})"),
    };
    GraphDataset {
        name: format!("Facebook-like (Age, c={c})"),
        graph,
        groups: Groups::from_ratios(n, &ratios, seed ^ 0xA6E),
    }
}

/// DBLP stand-in: 3,980 nodes, ≈ 6,966 edges of overlapping co-author
/// cliques; 5 continent groups 21/23/52/3/1.
pub fn dblp_like(seed: u64) -> GraphDataset {
    let n = 3980;
    let graph = community_graph(n, 6966, 5, 0.35, seed);
    let ratios = vec![
        ("Asia", 0.21),
        ("Europe", 0.23),
        ("North America", 0.52),
        ("Oceania", 0.03),
        ("South America", 0.01),
    ];
    GraphDataset {
        name: "DBLP-like (Continent, c=5)".into(),
        graph,
        groups: Groups::from_ratios(n, &ratios, seed ^ 0xD8),
    }
}

/// Pokec group attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PokecAttr {
    /// Two groups 51/49.
    Gender,
    /// Six age bands 17/45/29/6/2/1.
    Age,
}

/// Pokec stand-in: a directed Chung–Lu power-law graph with the real
/// graph's average degree (30.6M arcs / 1.63M nodes ≈ 18.75). The node
/// count is a parameter — the paper's full size is 1,632,803; the
/// harness default is 100,000 (documented scale-down, DESIGN.md §4).
pub fn pokec_like(nodes: usize, attr: PokecAttr, seed: u64) -> GraphDataset {
    let avg_deg = 18.75;
    let weights = power_law_weights(nodes, avg_deg, 2.5);
    let graph = chung_lu(&weights, true, seed);
    let (label, ratios): (&str, Vec<(&str, f64)>) = match attr {
        PokecAttr::Gender => ("Gender, c=2", vec![("Female", 0.51), ("Male", 0.49)]),
        PokecAttr::Age => (
            "Age, c=6",
            vec![
                ("0-20", 0.17),
                ("21-30", 0.45),
                ("31-40", 0.29),
                ("41-50", 0.06),
                ("51-60", 0.02),
                ("60+", 0.01),
            ],
        ),
    };
    GraphDataset {
        name: format!("Pokec-like ({label}, n={nodes})"),
        graph,
        groups: Groups::from_ratios(nodes, &ratios, seed ^ 0x90),
    }
}

/// Largest-remainder apportionment of `n` into the given ratios with a
/// floor of 1 (shared with `Groups::from_ratios`, but needed here for
/// ordered block sizes).
fn apportion(n: usize, ratios: &[(&str, f64)]) -> Vec<usize> {
    let total: f64 = ratios.iter().map(|&(_, r)| r).sum();
    let mut sizes: Vec<usize> = ratios
        .iter()
        .map(|&(_, r)| ((r / total) * n as f64).floor().max(1.0) as usize)
        .collect();
    let mut assigned: usize = sizes.iter().sum();
    while assigned > n {
        let i = (0..sizes.len()).max_by_key(|&i| sizes[i]).unwrap();
        sizes[i] -= 1;
        assigned -= 1;
    }
    let c = sizes.len();
    let mut i = 0;
    while assigned < n {
        sizes[i % c] += 1;
        assigned += 1;
        i += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::stats::graph_stats;

    #[test]
    fn rand_mc_matches_paper_parameters() {
        let d = rand_mc(2, 500, 1);
        assert_eq!(d.num_nodes(), 500);
        assert_eq!(d.groups.sizes(), &[100, 400]);
        // Table 1 reports 8,946 edges for one draw; expectation is ~8.6k.
        let m = d.graph.num_edges();
        assert!((7_000..11_000).contains(&m), "edges {m}");
        let d4 = rand_mc(4, 500, 1);
        assert_eq!(d4.groups.num_groups(), 4);
        assert_eq!(d4.groups.sizes(), &[40, 60, 100, 300]);
    }

    #[test]
    fn rand_mc_small_variant_for_im() {
        let d = rand_mc(2, 100, 2);
        assert_eq!(d.num_nodes(), 100);
        // Table 1: 360 edges for the 100-node RAND (c=2).
        let m = d.graph.num_edges();
        assert!((250..500).contains(&m), "edges {m}");
    }

    #[test]
    fn facebook_like_matches_table1_shape() {
        let d = facebook_like(2, 3);
        assert_eq!(d.num_nodes(), 1216);
        let m = d.graph.num_edges();
        assert!((35_000..48_000).contains(&m), "edges {m} (target ≈ 42,443)");
        assert_eq!(d.groups.num_groups(), 2);
        let p = d.groups.percentages();
        assert!((p[0] - 8.0).abs() < 1.0);
    }

    #[test]
    fn dblp_like_is_sparse_with_five_groups() {
        let d = dblp_like(5);
        assert_eq!(d.num_nodes(), 3980);
        let m = d.graph.num_edges();
        assert!((5_000..9_000).contains(&m), "edges {m} (target ≈ 6,966)");
        assert_eq!(d.groups.num_groups(), 5);
        // South America ≈ 1%.
        assert!(d.groups.sizes()[4] < 80);
    }

    #[test]
    fn pokec_like_scales_and_is_heavy_tailed() {
        let d = pokec_like(20_000, PokecAttr::Gender, 7);
        assert_eq!(d.num_nodes(), 20_000);
        let s = graph_stats(&d.graph);
        assert!(
            (10.0..25.0).contains(&s.avg_out_degree),
            "avg degree {}",
            s.avg_out_degree
        );
        assert!(s.max_out_degree > 50 * s.avg_out_degree as usize / 10);
        let age = pokec_like(5_000, PokecAttr::Age, 7);
        assert_eq!(age.groups.num_groups(), 6);
    }

    #[test]
    fn coverage_oracle_has_graph_shape() {
        use fair_submod_core::system::UtilitySystem;
        let d = rand_mc(2, 100, 9);
        let oracle = d.coverage_oracle();
        assert_eq!(oracle.num_items(), 100);
        assert_eq!(oracle.num_users(), 100);
        assert_eq!(oracle.num_groups(), 2);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = dblp_like(11);
        let b = dblp_like(11);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.groups.assignment(), b.groups.assignment());
    }
}
