//! Point-set datasets for the facility-location experiments (Table 2 of
//! the paper).

use fair_submod_facility::generators::{gaussian_blobs, spread_centers, uniform_box, BlobSpec};
use fair_submod_facility::{BenefitMatrix, FacilityOracle, PointSet};
use fair_submod_graphs::Groups;

/// How user–item benefits are computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BenefitKind {
    /// `b_uv = exp(−dist)` (Adult, RAND).
    Rbf,
    /// `b_uv = max{0, d̄ − dist}` (FourSquare).
    KMedian {
        /// Normalization distance `d̄`.
        d_norm: f64,
    },
}

/// A facility-location dataset: user points, item (facility) points, a
/// group partition of the users, and the benefit construction.
#[derive(Clone, Debug)]
pub struct FlDataset {
    /// Human-readable name used in tables and figures.
    pub name: String,
    /// User points.
    pub users: PointSet,
    /// Facility points.
    pub items: PointSet,
    /// Group partition of the users.
    pub groups: Groups,
    /// Benefit construction.
    pub benefit: BenefitKind,
}

impl FlDataset {
    /// Materializes the benefit matrix and oracle.
    pub fn oracle(&self) -> FacilityOracle {
        let benefits = match self.benefit {
            BenefitKind::Rbf => BenefitMatrix::rbf(&self.users, &self.items),
            BenefitKind::KMedian { d_norm } => {
                BenefitMatrix::k_median(&self.users, &self.items, d_norm)
            }
        };
        FacilityOracle::new(benefits, self.groups.assignment().to_vec())
    }

    /// Number of facilities `n`.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Point dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.users.dim()
    }
}

/// The paper's random FL dataset: 100 points in `R^5`, each group an
/// isotropic Gaussian blob, points serving as both users and facilities,
/// RBF benefits. `c = 2` uses ratios 15/85, `c = 3` uses 5/20/75.
pub fn rand_fl(c: usize, seed: u64) -> FlDataset {
    let m = 100;
    let ratios: Vec<(&str, f64)> = match c {
        2 => vec![("U0", 0.15), ("U1", 0.85)],
        3 => vec![("U0", 0.05), ("U1", 0.20), ("U2", 0.75)],
        _ => panic!("RAND FL is defined for c ∈ {{2, 3}} (got {c})"),
    };
    let (points, groups) = blobs_for_ratios(m, &ratios, 5, 1.5, 0.6, seed);
    FlDataset {
        name: format!("RAND (FL, c={c})"),
        users: points.clone(),
        items: points,
        groups,
        benefit: BenefitKind::Rbf,
    }
}

/// Adult dataset size variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdultSize {
    /// 100 records, race groups 1/2/14/82/1 ("Adult-Small").
    SmallRace,
    /// 1,000 records, gender groups 34/66.
    Gender,
    /// 1,000 records, race groups 1/3/10/85/1.
    Race,
}

/// Adult stand-in: a Gaussian mixture in `R^6` (the paper uses six
/// numeric features) with Table 2's group percentages; records serve as
/// both users and facilities, RBF benefits.
pub fn adult_like(variant: AdultSize, seed: u64) -> FlDataset {
    let (name, m, ratios): (&str, usize, Vec<(&str, f64)>) = match variant {
        AdultSize::SmallRace => (
            "Adult-Small-like (Race, c=5)",
            100,
            vec![
                ("Amer-Indian-Eskimo", 0.01),
                ("Asian-Pac-Islander", 0.02),
                ("Black", 0.14),
                ("White", 0.82),
                ("Others", 0.01),
            ],
        ),
        AdultSize::Gender => (
            "Adult-like (Gender, c=2)",
            1000,
            vec![("Female", 0.34), ("Male", 0.66)],
        ),
        AdultSize::Race => (
            "Adult-like (Race, c=5)",
            1000,
            vec![
                ("Amer-Indian-Eskimo", 0.01),
                ("Asian-Pac-Islander", 0.03),
                ("Black", 0.10),
                ("White", 0.85),
                ("Others", 0.01),
            ],
        ),
    };
    // Socioeconomic features cluster weakly by group: blobs with large
    // overlap (spread comparable to std-dev).
    let (points, groups) = blobs_for_ratios(m, &ratios, 6, 1.0, 0.8, seed);
    FlDataset {
        name: name.into(),
        users: points.clone(),
        items: points,
        groups,
        benefit: BenefitKind::Rbf,
    }
}

/// FourSquare city variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum City {
    /// New York City: 882 facilities.
    Nyc,
    /// Tokyo: 1,132 facilities.
    Tky,
}

/// FourSquare stand-in: 2-D city point clouds. `m = 1000` check-in users
/// (each their own group, `c = 1000`), `n` medical-center facilities
/// (882 NYC / 1,132 TKY), k-median benefits with `d̄` at the 30th
/// distance percentile so that coverage is spatially selective, as with
/// real venue data.
pub fn foursquare_like(city: City, seed: u64) -> FlDataset {
    let (name, n, box_hi): (&str, usize, f64) = match city {
        City::Nyc => ("FourSquare-NYC-like (c=1000)", 882, 1.0),
        City::Tky => ("FourSquare-TKY-like (c=1000)", 1132, 1.3),
    };
    let m = 1000;
    // Users cluster around a handful of dense "neighborhoods"; facilities
    // are more uniform (hospitals spread over the city).
    let centers = spread_centers(8, 2, box_hi * 0.35, seed ^ 0xC1);
    let specs: Vec<BlobSpec> = centers
        .iter()
        .map(|c| BlobSpec {
            center: c.iter().map(|x| x + box_hi / 2.0).collect(),
            std_dev: box_hi * 0.12,
            count: m / 8,
        })
        .collect();
    let (users, _) = gaussian_blobs(&specs, seed);
    let items = uniform_box(n, 2, 0.0, box_hi, seed ^ 0xF5);
    let d_norm = BenefitMatrix::distance_quantile(&users, &items, 0.30);
    FlDataset {
        name: name.into(),
        users,
        items,
        groups: Groups::singletons(m),
        benefit: BenefitKind::KMedian { d_norm },
    }
}

/// Builds `m` points as one isotropic blob per ratio entry, returning the
/// points and the induced group partition.
fn blobs_for_ratios(
    m: usize,
    ratios: &[(&str, f64)],
    dim: usize,
    spread: f64,
    std_dev: f64,
    seed: u64,
) -> (PointSet, Groups) {
    let total: f64 = ratios.iter().map(|&(_, r)| r).sum();
    let mut counts: Vec<usize> = ratios
        .iter()
        .map(|&(_, r)| ((r / total) * m as f64).round().max(1.0) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    while assigned > m {
        let i = (0..counts.len()).max_by_key(|&i| counts[i]).unwrap();
        counts[i] -= 1;
        assigned -= 1;
    }
    while assigned < m {
        let i = (0..counts.len()).max_by_key(|&i| counts[i]).unwrap();
        counts[i] += 1;
        assigned += 1;
    }
    let centers = spread_centers(ratios.len(), dim, spread, seed ^ 0xCE);
    let specs: Vec<BlobSpec> = centers
        .into_iter()
        .zip(&counts)
        .map(|(center, &count)| BlobSpec {
            center,
            std_dev,
            count,
        })
        .collect();
    let (points, blob_labels) = gaussian_blobs(&specs, seed);
    let names: Vec<&str> = ratios.iter().map(|&(l, _)| l).collect();
    (
        points,
        Groups::from_assignment_with_labels(blob_labels, &names),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::system::UtilitySystem;

    #[test]
    fn rand_fl_matches_table2() {
        let d = rand_fl(2, 1);
        assert_eq!(d.num_users(), 100);
        assert_eq!(d.num_items(), 100);
        assert_eq!(d.dim(), 5);
        assert_eq!(d.groups.sizes(), &[15, 85]);
        let d3 = rand_fl(3, 1);
        assert_eq!(d3.groups.sizes(), &[5, 20, 75]);
    }

    #[test]
    fn adult_variants_match_table2() {
        let s = adult_like(AdultSize::SmallRace, 2);
        assert_eq!(s.num_users(), 100);
        assert_eq!(s.groups.num_groups(), 5);
        assert_eq!(s.dim(), 6);
        let g = adult_like(AdultSize::Gender, 2);
        assert_eq!(g.num_users(), 1000);
        assert_eq!(g.groups.sizes(), &[340, 660]);
        let r = adult_like(AdultSize::Race, 2);
        assert_eq!(r.groups.num_groups(), 5);
        // 1% groups of 1000 → ~10 users.
        assert!(*r.groups.sizes().iter().min().unwrap() >= 5);
    }

    #[test]
    fn foursquare_shapes() {
        let nyc = foursquare_like(City::Nyc, 3);
        assert_eq!(nyc.num_items(), 882);
        assert_eq!(nyc.num_users(), 1000);
        assert_eq!(nyc.groups.num_groups(), 1000);
        let tky = foursquare_like(City::Tky, 3);
        assert_eq!(tky.num_items(), 1132);
    }

    #[test]
    fn oracles_materialize_and_have_positive_utility() {
        use fair_submod_core::system::SystemExt;
        let d = rand_fl(2, 4);
        let oracle = d.oracle();
        assert_eq!(oracle.num_items(), 100);
        let f = oracle.eval_f(&[0, 1, 2]);
        assert!(f > 0.0 && f <= 1.0 + 1e-9);
        let fs = foursquare_like(City::Nyc, 4);
        let fo = fs.oracle();
        assert!(fo.eval_f(&[0, 5, 10]) > 0.0);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = adult_like(AdultSize::Gender, 9);
        let b = adult_like(AdultSize::Gender, 9);
        assert_eq!(a.users.point(17), b.users.point(17));
        assert_eq!(a.groups.assignment(), b.groups.assignment());
    }
}
