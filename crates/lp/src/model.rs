//! Linear-program model builder.
//!
//! Maximization over non-negative variables with sparse constraint rows.
//! Upper bounds are expressed as ordinary `≤` constraints (instances in
//! this workspace are small enough that bounded-variable pivoting is not
//! worth its complexity).

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i ≥ b`
    Ge,
    /// `Σ a_i x_i = b`
    Eq,
}

/// One sparse constraint row.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// `maximize c·x  s.t.  constraints, x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with the given objective coefficient; returns its
    /// index.
    pub fn add_var(&mut self, objective: f64) -> usize {
        self.objective.push(objective);
        self.objective.len() - 1
    }

    /// Adds `count` variables with a shared objective coefficient;
    /// returns the index of the first.
    pub fn add_vars(&mut self, count: usize, objective: f64) -> usize {
        let first = self.objective.len();
        self.objective.extend(std::iter::repeat_n(objective, count));
        first
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics if a term references an unknown variable.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        for &(v, _) in &terms {
            assert!(v < self.objective.len(), "unknown variable {v}");
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Convenience: `x_v ≤ ub`.
    pub fn bound_upper(&mut self, v: usize, ub: f64) {
        self.add_constraint(vec![(v, 1.0)], Cmp::Le, ub);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shapes() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0);
        let y0 = lp.add_vars(2, 1.0);
        assert_eq!(x, 0);
        assert_eq!(y0, 1);
        assert_eq!(lp.num_vars(), 3);
        lp.add_constraint(vec![(0, 1.0), (2, 2.0)], Cmp::Le, 4.0);
        lp.bound_upper(0, 1.0);
        assert_eq!(lp.num_constraints(), 2);
    }

    #[test]
    fn feasibility_checks() {
        let mut lp = LinearProgram::new();
        lp.add_vars(2, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.9, 0.9], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 0.0], 1e-9));
        assert!((lp.objective_value(&[0.25, 0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_constraint(vec![(3, 1.0)], Cmp::Le, 1.0);
    }
}
