//! Dense two-phase primal simplex.
//!
//! Textbook tableau implementation sized for the workspace's small exact
//! instances (hundreds of variables/constraints): phase 1 drives
//! artificial variables out of the basis, phase 2 optimizes the real
//! objective. Dantzig pricing with an automatic switch to Bland's rule
//! after an iteration threshold guarantees termination on degenerate
//! instances.

use crate::model::{Cmp, LinearProgram};

/// Result of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpResult {
    /// Optimal solution found.
    Optimal {
        /// Primal values of the original variables.
        x: Vec<f64>,
        /// Objective value.
        value: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// `rows × cols` coefficients; the last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.cols + c] = v;
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for c in 0..cols {
            self.a[pr * cols + c] *= inv;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..cols {
                let v = self.at(pr, c);
                self.a[r * cols + c] -= factor * v;
            }
        }
        self.basis[pr] = pc;
    }
}

/// Solves `lp` (maximization). See [`LpResult`].
pub fn solve_lp(lp: &LinearProgram) -> LpResult {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Normalize rows to b ≥ 0 and count slack/artificial columns.
    // Column layout: [x (n)] [slack/surplus (one per Le/Ge)] [artificial]
    // [rhs].
    let mut slack_count = 0usize;
    let mut artificial_count = 0usize;
    for c in lp.constraints() {
        let flip = c.rhs < 0.0;
        let cmp = effective_cmp(c.cmp, flip);
        match cmp {
            Cmp::Le => slack_count += 1,
            Cmp::Ge => {
                slack_count += 1;
                artificial_count += 1;
            }
            Cmp::Eq => artificial_count += 1,
        }
    }

    let cols = n + slack_count + artificial_count + 1;
    let rows = m;
    let mut t = Tableau {
        a: vec![0.0; rows * cols],
        rows,
        cols,
        basis: vec![usize::MAX; rows],
    };

    let mut slack_cursor = n;
    let mut art_cursor = n + slack_count;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(artificial_count);
    for (r, c) in lp.constraints().iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(v, a) in &c.terms {
            let cur = t.at(r, v);
            t.set(r, v, cur + sign * a);
        }
        t.set(r, cols - 1, sign * c.rhs);
        match effective_cmp(c.cmp, flip) {
            Cmp::Le => {
                t.set(r, slack_cursor, 1.0);
                t.basis[r] = slack_cursor;
                slack_cursor += 1;
            }
            Cmp::Ge => {
                t.set(r, slack_cursor, -1.0);
                slack_cursor += 1;
                t.set(r, art_cursor, 1.0);
                t.basis[r] = art_cursor;
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
            Cmp::Eq => {
                t.set(r, art_cursor, 1.0);
                t.basis[r] = art_cursor;
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials (as a maximization of the
    // negated sum) if any artificial is present.
    if artificial_count > 0 {
        let mut phase1_obj = vec![0.0; cols - 1];
        for &ac in &artificial_cols {
            phase1_obj[ac] = -1.0;
        }
        match run_simplex(&mut t, &phase1_obj, usize::MAX) {
            SimplexStatus::Optimal(value) => {
                if value < -1e-7 {
                    return LpResult::Infeasible;
                }
            }
            SimplexStatus::Unbounded => unreachable!("phase 1 is bounded"),
        }
        // Drive any residual artificial out of the basis if possible.
        for r in 0..rows {
            if artificial_cols.contains(&t.basis[r]) {
                let pivot_col = (0..n + slack_count).find(|&c| t.at(r, c).abs() > EPS);
                if let Some(pc) = pivot_col {
                    t.pivot(r, pc);
                }
                // Else the row is all-zero (redundant constraint): leave it.
            }
        }
        // Zero-out artificial columns so they never re-enter.
        for &ac in &artificial_cols {
            for r in 0..rows {
                t.set(r, ac, 0.0);
            }
        }
    }

    // Phase 2.
    let mut phase2_obj = vec![0.0; cols - 1];
    phase2_obj[..n].copy_from_slice(lp.objective());
    for &ac in &artificial_cols {
        phase2_obj[ac] = f64::NEG_INFINITY; // blocked
    }
    match run_simplex(&mut t, &phase2_obj, n + slack_count) {
        SimplexStatus::Unbounded => LpResult::Unbounded,
        SimplexStatus::Optimal(_) => {
            let mut x = vec![0.0; n];
            for r in 0..rows {
                let b = t.basis[r];
                if b < n {
                    x[b] = t.at(r, cols - 1).max(0.0);
                }
            }
            let value = lp.objective_value(&x);
            LpResult::Optimal { x, value }
        }
    }
}

fn effective_cmp(cmp: Cmp, flip: bool) -> Cmp {
    if !flip {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

enum SimplexStatus {
    Optimal(f64),
    Unbounded,
}

/// Runs the simplex loop on `t` for objective `obj` (maximization),
/// considering only columns `< col_limit` for entering (artificials are
/// also excluded via `-inf` coefficients). Returns the objective value of
/// the final basic solution.
fn run_simplex(t: &mut Tableau, obj: &[f64], col_limit: usize) -> SimplexStatus {
    let cols = t.cols;
    let rows = t.rows;
    let limit = col_limit.min(cols - 1);

    // Reduced costs maintained implicitly: z_j - c_j computed on demand
    // from the current basis (small instances; clarity over speed).
    let mut iter = 0usize;
    let bland_after = 20_000usize;
    loop {
        iter += 1;
        // Compute simplex multipliers via c_B; reduced cost of column j:
        // r_j = c_j - Σ_r c_{B(r)} * a_{r,j}.
        let cb: Vec<f64> = t
            .basis
            .iter()
            .map(|&b| {
                let c = if b < obj.len() { obj[b] } else { 0.0 };
                if c == f64::NEG_INFINITY {
                    0.0
                } else {
                    c
                }
            })
            .collect();

        let mut entering: Option<usize> = None;
        let mut best_rc = EPS;
        for j in 0..limit {
            let cj = obj[j];
            if cj == f64::NEG_INFINITY {
                continue;
            }
            if t.basis.contains(&j) {
                continue;
            }
            let mut zj = 0.0;
            for r in 0..rows {
                let a = t.at(r, j);
                if a != 0.0 {
                    zj += cb[r] * a;
                }
            }
            let rc = cj - zj;
            if rc > best_rc {
                if iter > bland_after {
                    // Bland: first improving column.
                    entering = Some(j);
                    break;
                }
                best_rc = rc;
                entering = Some(j);
            }
        }

        let Some(pc) = entering else {
            // Optimal: objective of current basic solution.
            let mut value = 0.0;
            for r in 0..rows {
                value += cb[r] * t.at(r, cols - 1);
            }
            return SimplexStatus::Optimal(value);
        };

        // Ratio test.
        let mut pr: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..rows {
            let a = t.at(r, pc);
            if a > EPS {
                let ratio = t.at(r, cols - 1) / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && pr.is_none_or(|p| t.basis[r] < t.basis[p]));
                if better {
                    best_ratio = ratio;
                    pr = Some(r);
                }
            }
        }
        let Some(pr) = pr else {
            return SimplexStatus::Unbounded;
        };
        t.pivot(pr, pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinearProgram};

    fn optimal(lp: &LinearProgram) -> (Vec<f64>, f64) {
        match solve_lp(lp) {
            LpResult::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), 12.
        let mut lp = LinearProgram::new();
        lp.add_var(3.0);
        lp.add_var(2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], Cmp::Le, 6.0);
        let (x, v) = optimal(&lp);
        assert!((v - 12.0).abs() < 1e-7);
        assert!((x[0] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn lp_with_ge_and_eq_constraints() {
        // max x + y s.t. x + y ≤ 10, x ≥ 2, y = 3 → value 5... wait:
        // x can grow to 7 (x+y ≤ 10, y = 3) → optimal (7, 3) value 10.
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 10.0);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Ge, 2.0);
        lp.add_constraint(vec![(1, 1.0)], Cmp::Eq, 3.0);
        let (x, v) = optimal(&lp);
        assert!((v - 10.0).abs() < 1e-7);
        assert!((x[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_lp() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Ge, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Le, 1.0);
        assert_eq!(solve_lp(&lp), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_lp() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, -1.0)], Cmp::Le, 0.0); // -x ≤ 0, vacuous
        assert_eq!(solve_lp(&lp), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // max x s.t. -x ≤ -2 (i.e. x ≥ 2), x ≤ 5.
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, -1.0)], Cmp::Le, -2.0);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Le, 5.0);
        let (x, v) = optimal(&lp);
        assert!((v - 5.0).abs() < 1e-7);
        assert!(x[0] >= 2.0 - 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_var(1.0);
        for _ in 0..5 {
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        }
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Cmp::Le, 2.0);
        let (_, v) = optimal(&lp);
        assert!((v - 1.0).abs() < 1e-7);
    }

    #[test]
    fn matches_brute_force_on_random_small_lps() {
        // Random 2-var LPs with box + one coupling constraint: compare
        // against a fine grid search.
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..30 {
            let c0 = rnd() * 2.0;
            let c1 = rnd() * 2.0;
            let a0 = 0.2 + rnd();
            let a1 = 0.2 + rnd();
            let b = 1.0 + rnd() * 3.0;
            let mut lp = LinearProgram::new();
            lp.add_var(c0);
            lp.add_var(c1);
            lp.add_constraint(vec![(0, a0), (1, a1)], Cmp::Le, b);
            lp.bound_upper(0, 2.0);
            lp.bound_upper(1, 2.0);
            let (_, v) = optimal(&lp);
            // Grid search.
            let mut best = 0.0f64;
            let steps = 400;
            for i in 0..=steps {
                for j in 0..=steps {
                    let x0 = 2.0 * i as f64 / steps as f64;
                    let x1 = 2.0 * j as f64 / steps as f64;
                    if a0 * x0 + a1 * x1 <= b + 1e-9 {
                        best = best.max(c0 * x0 + c1 * x1);
                    }
                }
            }
            assert!(
                v >= best - 1e-4 && v <= best + 0.05,
                "simplex {v} vs grid {best}"
            );
        }
    }
}
