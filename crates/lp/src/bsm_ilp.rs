//! Appendix-A ILP formulations of BSM for maximum coverage and facility
//! location, and the two-stage `BSM-Optimal` pipeline.
//!
//! * **Maximum coverage** (Eq. 5): binaries `x_l` (set chosen) and
//!   relaxed `y_j ∈ \[0,1\]` (user covered), `Σ x ≤ k`,
//!   `Σ_{l: u_j ∈ S_l} x_l ≥ y_j`; objective `Σ y_j / m`.
//! * **Robust maximum coverage** (Eq. 6): adds `w` with
//!   `Σ_{j∈U_i} y_j / m_i ≥ w` per group; objective `w`.
//! * **BSM maximum coverage**: Eq. 5 plus per-group floors
//!   `Σ_{j∈U_i} y_j / m_i ≥ τ·OPT_g`.
//! * **Facility location** (Eq. 7) and its robust/BSM variants, with
//!   relaxed assignment variables `y_jl`.
//!
//! Only the `x` variables need integrality: for any fixed `x`, the `y`
//! polytopes have integral optima (coverage: `y_j = min(1, Σ x)`;
//! assignment: put each user's unit on its best open facility), so the
//! relaxations branch only over `n` binaries.

use fair_submod_core::items::ItemId;
use fair_submod_coverage::SetSystem;
use fair_submod_facility::BenefitMatrix;

use crate::branch_bound::{solve_ilp, IlpConfig, IlpResult};
use crate::model::{Cmp, LinearProgram};

/// Outcome of an exact ILP-based BSM solve.
#[derive(Clone, Debug)]
pub struct IlpBsmOutcome {
    /// Chosen items (indices with `x_l = 1`).
    pub items: Vec<ItemId>,
    /// Exact optimal `OPT_g` from the robust stage.
    pub opt_g: f64,
    /// Objective value of the utility stage (`f(S)`).
    pub f_value: f64,
    /// Whether both stages solved to proven optimality.
    pub complete: bool,
    /// Total LP relaxations solved.
    pub nodes: usize,
}

struct McModel {
    lp: LinearProgram,
    x0: usize,
    y0: usize,
    n: usize,
}

/// Shared Eq.-5 scaffolding: variables, cardinality, and linking rows.
fn mc_base(sets: &SetSystem, k: usize, obj_y: f64) -> McModel {
    let n = sets.num_sets();
    let m = sets.num_elements();
    let mut lp = LinearProgram::new();
    let x0 = lp.add_vars(n, 0.0);
    let y0 = lp.add_vars(m, obj_y);
    // Σ x_l ≤ k.
    lp.add_constraint((0..n).map(|l| (x0 + l, 1.0)).collect(), Cmp::Le, k as f64);
    // Coverage linking: Σ_{l: j∈S_l} x_l − y_j ≥ 0.
    let mut covering: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for l in 0..n {
        for &j in sets.set(l) {
            covering[j as usize].push((x0 + l, 1.0));
        }
    }
    for (j, mut terms) in covering.into_iter().enumerate() {
        terms.push((y0 + j, -1.0));
        lp.add_constraint(terms, Cmp::Ge, 0.0);
    }
    for l in 0..n {
        lp.bound_upper(x0 + l, 1.0);
    }
    for j in 0..m {
        lp.bound_upper(y0 + j, 1.0);
    }
    let _ = m;
    McModel { lp, x0, y0, n }
}

fn group_row(y0: usize, members: &[usize], mi: usize) -> Vec<(usize, f64)> {
    members.iter().map(|&j| (y0 + j, 1.0 / mi as f64)).collect()
}

fn members_per_group(group_of: &[u32], c: usize) -> Vec<Vec<usize>> {
    let mut members = vec![Vec::new(); c];
    for (j, &g) in group_of.iter().enumerate() {
        members[g as usize].push(j);
    }
    members
}

fn extract_items(x: &[f64], x0: usize, n: usize) -> Vec<ItemId> {
    (0..n)
        .filter(|&l| x[x0 + l] > 0.5)
        .map(|l| l as ItemId)
        .collect()
}

/// Solves the robust maximum-coverage ILP (Eq. 6): exact `OPT_g`.
pub fn mc_robust_ilp(
    sets: &SetSystem,
    group_of: &[u32],
    k: usize,
    cfg: &IlpConfig,
) -> (f64, Vec<ItemId>, usize, bool) {
    let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
    let members = members_per_group(group_of, c);
    let mut model = mc_base(sets, k, 0.0);
    let w = model.lp.add_var(1.0);
    for mem in &members {
        let mut terms = group_row(model.y0, mem, mem.len());
        terms.push((w, -1.0));
        model.lp.add_constraint(terms, Cmp::Ge, 0.0);
    }
    model.lp.bound_upper(w, 1.0);
    let binaries: Vec<usize> = (0..model.n).map(|l| model.x0 + l).collect();
    match solve_ilp(&model.lp, &binaries, cfg) {
        IlpResult::Optimal { x, value, nodes } => {
            (value, extract_items(&x, model.x0, model.n), nodes, true)
        }
        IlpResult::Budget { incumbent, nodes } => match incumbent {
            Some((x, value)) => (value, extract_items(&x, model.x0, model.n), nodes, false),
            None => (0.0, Vec::new(), nodes, false),
        },
        IlpResult::Infeasible => unreachable!("robust MC is always feasible"),
    }
}

/// Solves the BSM maximum-coverage ILP: `max f` s.t. per-group coverage
/// ≥ `g_floor` (pass `τ·OPT_g`).
pub fn mc_bsm_ilp(
    sets: &SetSystem,
    group_of: &[u32],
    k: usize,
    g_floor: f64,
    cfg: &IlpConfig,
) -> Option<(f64, Vec<ItemId>, usize, bool)> {
    let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
    let members = members_per_group(group_of, c);
    let mut model = mc_base(sets, k, 1.0 / sets.num_elements() as f64);
    if g_floor > 0.0 {
        for mem in &members {
            let terms = group_row(model.y0, mem, mem.len());
            // Tiny slack absorbs simplex tolerance at binding floors.
            model.lp.add_constraint(terms, Cmp::Ge, g_floor - 1e-7);
        }
    }
    let binaries: Vec<usize> = (0..model.n).map(|l| model.x0 + l).collect();
    match solve_ilp(&model.lp, &binaries, cfg) {
        IlpResult::Optimal { x, value, nodes } => {
            Some((value, extract_items(&x, model.x0, model.n), nodes, true))
        }
        IlpResult::Budget { incumbent, nodes } => {
            incumbent.map(|(x, value)| (value, extract_items(&x, model.x0, model.n), nodes, false))
        }
        IlpResult::Infeasible => None,
    }
}

/// The full `BSM-Optimal` pipeline for maximum coverage: robust stage
/// for `OPT_g`, then the constrained utility stage at `τ·OPT_g`.
pub fn mc_bsm_optimal(
    sets: &SetSystem,
    group_of: &[u32],
    k: usize,
    tau: f64,
    cfg: &IlpConfig,
) -> IlpBsmOutcome {
    let (opt_g, _, nodes_g, complete_g) = mc_robust_ilp(sets, group_of, k, cfg);
    let floor = tau * opt_g;
    match mc_bsm_ilp(sets, group_of, k, floor, cfg) {
        Some((f_value, items, nodes_f, complete_f)) => IlpBsmOutcome {
            items,
            opt_g,
            f_value,
            complete: complete_g && complete_f,
            nodes: nodes_g + nodes_f,
        },
        None => IlpBsmOutcome {
            items: Vec::new(),
            opt_g,
            f_value: 0.0,
            complete: false,
            nodes: nodes_g,
        },
    }
}

struct FlModel {
    lp: LinearProgram,
    x0: usize,
    y0: usize,
    n: usize,
}

/// Shared Eq.-7 scaffolding for facility location.
fn fl_base(benefits: &BenefitMatrix, k: usize, weight_objective: bool) -> FlModel {
    let n = benefits.num_items();
    let m = benefits.num_users();
    let mut lp = LinearProgram::new();
    let x0 = lp.add_vars(n, 0.0);
    // y_{jl} laid out row-major by user; objective b_jl/m when requested.
    let y0 = lp.add_vars(m * n, 0.0);
    if weight_objective {
        let lp_obj: Vec<f64> = (0..m * n)
            .map(|i| benefits.benefit(i / n, i % n) / m as f64)
            .collect();
        // Rebuild with the objective set (add_vars gave zeros).
        let mut lp2 = LinearProgram::new();
        lp2.add_vars(n, 0.0);
        for &o in &lp_obj {
            lp2.add_var(o);
        }
        lp = lp2;
    }
    // Σ x_l ≤ k.
    lp.add_constraint((0..n).map(|l| (x0 + l, 1.0)).collect(), Cmp::Le, k as f64);
    // Σ_l y_jl ≤ 1 per user.
    for j in 0..m {
        lp.add_constraint(
            (0..n).map(|l| (y0 + j * n + l, 1.0)).collect(),
            Cmp::Le,
            1.0,
        );
    }
    // y_jl ≤ x_l.
    for j in 0..m {
        for l in 0..n {
            lp.add_constraint(vec![(y0 + j * n + l, 1.0), (x0 + l, -1.0)], Cmp::Le, 0.0);
        }
    }
    for l in 0..n {
        lp.bound_upper(x0 + l, 1.0);
    }
    let _ = m;
    FlModel { lp, x0, y0, n }
}

/// Per-group benefit row `Σ_{j∈U_i} Σ_l b_jl y_jl / m_i`.
fn fl_group_row(
    benefits: &BenefitMatrix,
    y0: usize,
    members: &[usize],
    mi: usize,
) -> Vec<(usize, f64)> {
    let n = benefits.num_items();
    let mut terms = Vec::with_capacity(members.len() * n);
    for &j in members {
        for l in 0..n {
            let b = benefits.benefit(j, l);
            if b > 0.0 {
                terms.push((y0 + j * n + l, b / mi as f64));
            }
        }
    }
    terms
}

/// Solves the robust facility-location ILP: exact `OPT_g`.
pub fn fl_robust_ilp(
    benefits: &BenefitMatrix,
    group_of: &[u32],
    k: usize,
    cfg: &IlpConfig,
) -> (f64, Vec<ItemId>, usize, bool) {
    let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
    let members = members_per_group(group_of, c);
    let mut model = fl_base(benefits, k, false);
    let w = model.lp.add_var(1.0);
    for mem in &members {
        let mut terms = fl_group_row(benefits, model.y0, mem, mem.len());
        terms.push((w, -1.0));
        model.lp.add_constraint(terms, Cmp::Ge, 0.0);
    }
    let binaries: Vec<usize> = (0..model.n).map(|l| model.x0 + l).collect();
    match solve_ilp(&model.lp, &binaries, cfg) {
        IlpResult::Optimal { x, value, nodes } => {
            (value, extract_items(&x, model.x0, model.n), nodes, true)
        }
        IlpResult::Budget { incumbent, nodes } => match incumbent {
            Some((x, value)) => (value, extract_items(&x, model.x0, model.n), nodes, false),
            None => (0.0, Vec::new(), nodes, false),
        },
        IlpResult::Infeasible => unreachable!("robust FL is always feasible"),
    }
}

/// The full `BSM-Optimal` pipeline for facility location.
pub fn fl_bsm_optimal(
    benefits: &BenefitMatrix,
    group_of: &[u32],
    k: usize,
    tau: f64,
    cfg: &IlpConfig,
) -> IlpBsmOutcome {
    let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
    let members = members_per_group(group_of, c);
    let (opt_g, _, nodes_g, complete_g) = fl_robust_ilp(benefits, group_of, k, cfg);
    let floor = tau * opt_g;

    let mut model = fl_base(benefits, k, true);
    if floor > 0.0 {
        for mem in &members {
            let terms = fl_group_row(benefits, model.y0, mem, mem.len());
            model.lp.add_constraint(terms, Cmp::Ge, floor - 1e-7);
        }
    }
    let binaries: Vec<usize> = (0..model.n).map(|l| model.x0 + l).collect();
    match solve_ilp(&model.lp, &binaries, cfg) {
        IlpResult::Optimal { x, value, nodes } => IlpBsmOutcome {
            items: extract_items(&x, model.x0, model.n),
            opt_g,
            f_value: value,
            complete: complete_g,
            nodes: nodes_g + nodes,
        },
        IlpResult::Budget { incumbent, nodes } => match incumbent {
            Some((x, value)) => IlpBsmOutcome {
                items: extract_items(&x, model.x0, model.n),
                opt_g,
                f_value: value,
                complete: false,
                nodes: nodes_g + nodes,
            },
            None => IlpBsmOutcome {
                items: Vec::new(),
                opt_g,
                f_value: 0.0,
                complete: false,
                nodes: nodes_g + nodes,
            },
        },
        IlpResult::Infeasible => IlpBsmOutcome {
            items: Vec::new(),
            opt_g,
            f_value: 0.0,
            complete: false,
            nodes: nodes_g,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 of the paper as a set system.
    fn figure1() -> (SetSystem, Vec<u32>) {
        let sets = SetSystem::new(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![5, 6, 7, 8],
                vec![5, 8, 9],
                vec![10, 11],
            ],
            12,
        );
        let mut group_of = vec![0u32; 12];
        for g in group_of.iter_mut().skip(9) {
            *g = 1;
        }
        (sets, group_of)
    }

    #[test]
    fn mc_robust_ilp_matches_example() {
        let (sets, groups) = figure1();
        let (opt_g, items, _, complete) = mc_robust_ilp(&sets, &groups, 2, &IlpConfig::default());
        assert!(complete);
        assert!((opt_g - 5.0 / 9.0).abs() < 1e-6, "opt_g {opt_g}");
        let mut items = items;
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
    }

    #[test]
    fn mc_bsm_optimal_matches_example_31() {
        let (sets, groups) = figure1();
        // τ = 0.3 → {v1, v3}, f = 8/12.
        let low = mc_bsm_optimal(&sets, &groups, 2, 0.3, &IlpConfig::default());
        assert!(low.complete);
        let mut items = low.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert!((low.f_value - 8.0 / 12.0).abs() < 1e-6);
        // τ = 0.8 → {v1, v4}.
        let high = mc_bsm_optimal(&sets, &groups, 2, 0.8, &IlpConfig::default());
        let mut items = high.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
        // τ = 0 → plain maximum coverage {v1, v2}, f = 0.75.
        let free = mc_bsm_optimal(&sets, &groups, 2, 0.0, &IlpConfig::default());
        assert!((free.f_value - 0.75).abs() < 1e-6);
    }

    #[test]
    fn fl_bsm_optimal_tiny_instance() {
        // 3 users (groups [0,0,1]), 2 facilities.
        let b = BenefitMatrix::new(vec![1.0, 0.2, 0.5, 0.5, 0.0, 0.9], 3, 2);
        let groups = vec![0u32, 0, 1];
        // k=1: OPT_g = max over single items of min group benefit:
        // item 0: groups (0.75, 0) → 0; item 1: (0.35, 0.9) → 0.35.
        let (opt_g, items, _, complete) = fl_robust_ilp(&b, &groups, 1, &IlpConfig::default());
        assert!(complete);
        assert!((opt_g - 0.35).abs() < 1e-6, "opt_g {opt_g}");
        assert_eq!(items, vec![1]);
        // τ = 1: forced to pick item 1 → f = (0.2+0.5+0.9)/3.
        let out = fl_bsm_optimal(&b, &groups, 1, 1.0, &IlpConfig::default());
        assert_eq!(out.items, vec![1]);
        assert!((out.f_value - 1.6 / 3.0).abs() < 1e-6);
        // τ = 0: item 1 still wins on f: (0.2+0.5+0.9)/3 > (1.0+0.5+0)/3.
        let out0 = fl_bsm_optimal(&b, &groups, 1, 0.0, &IlpConfig::default());
        assert_eq!(out0.items, vec![1]);
        assert!((out0.f_value - 1.6 / 3.0).abs() < 1e-6);
    }
}
