//! Best-first branch-and-bound for 0/1 integer programs.
//!
//! Solves `max c·x` over a [`LinearProgram`] where a designated subset of
//! variables must be binary. Nodes are LP relaxations with added bound
//! rows `x_v ≤ 0` / `x_v ≥ 1`; exploration is best-first on the LP bound
//! (ties broken deeper-first so incumbents appear early). Branching picks
//! the most fractional binary.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::{Cmp, LinearProgram};
use crate::simplex::{solve_lp, LpResult};

/// Branch-and-bound configuration.
#[derive(Clone, Debug)]
pub struct IlpConfig {
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Maximum LP relaxations to solve before giving up.
    pub node_limit: usize,
}

impl Default for IlpConfig {
    fn default() -> Self {
        Self {
            int_tol: 1e-6,
            node_limit: 200_000,
        }
    }
}

/// Result of an ILP solve.
#[derive(Clone, Debug)]
pub enum IlpResult {
    /// Proven-optimal integral solution.
    Optimal {
        /// Variable values (binaries are exactly 0.0/1.0 up to tolerance).
        x: Vec<f64>,
        /// Objective value.
        value: f64,
        /// LP relaxations solved.
        nodes: usize,
    },
    /// The program has no integral feasible point.
    Infeasible,
    /// Node budget exhausted before proving optimality; the best
    /// incumbent (if any) is returned.
    Budget {
        /// Best incumbent found, if any.
        incumbent: Option<(Vec<f64>, f64)>,
        /// LP relaxations solved.
        nodes: usize,
    },
}

struct Node {
    bound: f64,
    depth: usize,
    /// `(var, fixed_to_one)` decisions along this branch.
    fixes: Vec<(usize, bool)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Solves an ILP where every variable in `binaries` must be 0 or 1.
///
/// The caller is responsible for having added `x ≤ 1` rows for binaries
/// (e.g. via [`LinearProgram::bound_upper`]); this routine only adds
/// branching rows.
pub fn solve_ilp(lp: &LinearProgram, binaries: &[usize], cfg: &IlpConfig) -> IlpResult {
    let mut nodes = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut heap = BinaryHeap::new();

    let root = match relax(lp, &[]) {
        Some((x, value)) => {
            if let Some(sol) = integral(&x, binaries, cfg.int_tol) {
                // Root already integral.
                return IlpResult::Optimal {
                    x: sol,
                    value,
                    nodes: 1,
                };
            }
            nodes += 1;
            Node {
                bound: value,
                depth: 0,
                fixes: Vec::new(),
            }
        }
        None => return IlpResult::Infeasible,
    };
    heap.push(root);

    while let Some(node) = heap.pop() {
        if let Some((_, best)) = &incumbent {
            if node.bound <= *best + 1e-9 {
                continue; // dominated
            }
        }
        if nodes >= cfg.node_limit {
            return IlpResult::Budget { incumbent, nodes };
        }

        // Re-solve this node to get the fractional point (bounds were
        // computed when pushed; the x is recomputed here to branch).
        let Some((x, _)) = relax(lp, &node.fixes) else {
            continue;
        };
        let branch_var = most_fractional(&x, binaries, cfg.int_tol);
        let Some(v) = branch_var else {
            continue; // became integral: handled below when children solve
        };

        for &fix_one in &[true, false] {
            let mut fixes = node.fixes.clone();
            fixes.push((v, fix_one));
            nodes += 1;
            if let Some((cx, cval)) = relax(lp, &fixes) {
                if let Some(sol) = integral(&cx, binaries, cfg.int_tol) {
                    let better = incumbent.as_ref().is_none_or(|(_, b)| cval > *b + 1e-9);
                    if better {
                        incumbent = Some((sol, cval));
                    }
                } else {
                    let worth = incumbent.as_ref().is_none_or(|(_, b)| cval > *b + 1e-9);
                    if worth {
                        heap.push(Node {
                            bound: cval,
                            depth: node.depth + 1,
                            fixes,
                        });
                    }
                }
            }
            if nodes >= cfg.node_limit {
                return IlpResult::Budget { incumbent, nodes };
            }
        }
    }

    match incumbent {
        Some((x, value)) => IlpResult::Optimal { x, value, nodes },
        None => IlpResult::Infeasible,
    }
}

/// Solves the LP relaxation with branching fixes applied.
fn relax(lp: &LinearProgram, fixes: &[(usize, bool)]) -> Option<(Vec<f64>, f64)> {
    let mut node_lp = lp.clone();
    for &(v, one) in fixes {
        if one {
            node_lp.add_constraint(vec![(v, 1.0)], Cmp::Ge, 1.0);
        } else {
            node_lp.add_constraint(vec![(v, 1.0)], Cmp::Le, 0.0);
        }
    }
    match solve_lp(&node_lp) {
        LpResult::Optimal { x, value } => Some((x, value)),
        LpResult::Infeasible => None,
        LpResult::Unbounded => panic!("ILP relaxation unbounded: add variable bounds"),
    }
}

/// Returns a rounded copy of `x` if all binaries are integral, else None.
fn integral(x: &[f64], binaries: &[usize], tol: f64) -> Option<Vec<f64>> {
    for &v in binaries {
        let frac = (x[v] - x[v].round()).abs();
        if frac > tol {
            return None;
        }
    }
    let mut out = x.to_vec();
    for &v in binaries {
        out[v] = out[v].round();
    }
    Some(out)
}

/// Most fractional binary variable, if any.
fn most_fractional(x: &[f64], binaries: &[usize], tol: f64) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for &v in binaries {
        let frac = (x[v] - x[v].round()).abs();
        if frac > tol {
            let dist = (x[v].fract() - 0.5).abs();
            if best.is_none_or(|(b, _)| dist < b) {
                best = Some((dist, v));
            }
        }
    }
    best.map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_optimal(r: IlpResult) -> (Vec<f64>, f64) {
        match r {
            IlpResult::Optimal { x, value, .. } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knapsack_ilp() {
        // max 10a + 6b + 4c s.t. a + b + c ≤ 2 (binary) → a + b = 16.
        let mut lp = LinearProgram::new();
        let a = lp.add_var(10.0);
        let b = lp.add_var(6.0);
        let c = lp.add_var(4.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 2.0);
        for v in [a, b, c] {
            lp.bound_upper(v, 1.0);
        }
        let (x, val) = expect_optimal(solve_ilp(&lp, &[a, b, c], &IlpConfig::default()));
        assert!((val - 16.0).abs() < 1e-6);
        assert!((x[a] - 1.0).abs() < 1e-6 && (x[b] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_lp_vs_integral_ilp() {
        // max x + y s.t. 2x + 2y ≤ 3, binary: LP gives 1.5, ILP gives 1.
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Cmp::Le, 3.0);
        lp.bound_upper(0, 1.0);
        lp.bound_upper(1, 1.0);
        let (_, val) = expect_optimal(solve_ilp(&lp, &[0, 1], &IlpConfig::default()));
        assert!((val - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Ge, 0.5);
        lp.add_constraint(vec![(0, 1.0)], Cmp::Le, 0.6);
        match solve_ilp(&lp, &[0], &IlpConfig::default()) {
            IlpResult::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn mixed_integer_keeps_continuous_vars() {
        // max 2a + w s.t. w ≤ 1.5·a, w ≤ 1.2, a binary → a=1, w=1.2.
        let mut lp = LinearProgram::new();
        let a = lp.add_var(2.0);
        let w = lp.add_var(1.0);
        lp.add_constraint(vec![(w, 1.0), (a, -1.5)], Cmp::Le, 0.0);
        lp.add_constraint(vec![(w, 1.0)], Cmp::Le, 1.2);
        lp.bound_upper(a, 1.0);
        let (x, val) = expect_optimal(solve_ilp(&lp, &[a], &IlpConfig::default()));
        assert!((val - 3.2).abs() < 1e-6, "val {val}");
        assert!((x[w] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn node_budget_reports_incumbent() {
        let mut lp = LinearProgram::new();
        for i in 0..12 {
            lp.add_var(1.0 + (i as f64) * 0.01);
            lp.bound_upper(i, 1.0);
        }
        let all: Vec<(usize, f64)> = (0..12).map(|i| (i, 2.0)).collect();
        lp.add_constraint(all, Cmp::Le, 7.0); // 3.5 items → fractional
        let bins: Vec<usize> = (0..12).collect();
        let cfg = IlpConfig {
            node_limit: 2,
            ..Default::default()
        };
        match solve_ilp(&lp, &bins, &cfg) {
            IlpResult::Budget { nodes, .. } => assert!(nodes >= 2),
            IlpResult::Optimal { nodes, .. } => assert!(nodes <= 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
