//! # fair-submod-lp
//!
//! Exact ILP substrate replacing the paper's Gurobi dependency: a dense
//! two-phase primal [simplex] solver, a best-first [branch-and-bound]
//! 0/1 integer programming layer, and the Appendix-A BSM formulations
//! for maximum coverage (Eq. 5–6) and facility location (Eq. 7) in
//! [`bsm_ilp`].
//!
//! Only the facility-opening variables `x_l` need integrality in both
//! formulations (the coverage/assignment variables relax integrally), so
//! branch-and-bound branches over at most `n` binaries.
//!
//! [simplex]: simplex
//! [branch-and-bound]: branch_bound

pub mod branch_bound;
pub mod bsm_ilp;
pub mod model;
pub mod simplex;

pub use branch_bound::{solve_ilp, IlpConfig, IlpResult};
pub use model::{Cmp, LinearProgram};
pub use simplex::{solve_lp, LpResult};
