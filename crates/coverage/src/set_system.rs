//! Bipartite set systems: `n` sets (items) over `m` elements (users).

use serde::{Deserialize, Serialize};

/// A collection of sets over the element universe `0..m`, stored in CSR
/// form for cache-friendly iteration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetSystem {
    offsets: Vec<usize>,
    elements: Vec<u32>,
    m: usize,
}

impl SetSystem {
    /// Builds from per-set element lists. Duplicate elements within a set
    /// are removed.
    ///
    /// # Panics
    /// Panics if an element is `≥ m`.
    pub fn new(sets: Vec<Vec<u32>>, m: usize) -> Self {
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        let mut elements = Vec::new();
        offsets.push(0);
        for mut set in sets {
            set.sort_unstable();
            set.dedup();
            for &e in &set {
                assert!((e as usize) < m, "element {e} out of range (m = {m})");
            }
            elements.extend_from_slice(&set);
            offsets.push(elements.len());
        }
        Self {
            offsets,
            elements,
            m,
        }
    }

    /// Number of sets (items).
    pub fn num_sets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of the element universe (users).
    pub fn num_elements(&self) -> usize {
        self.m
    }

    /// Elements of set `i` (sorted, deduplicated).
    #[inline]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.elements[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total of all set sizes.
    pub fn total_size(&self) -> usize {
        self.elements.len()
    }

    /// Approximate resident footprint of the CSR arrays, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.elements.len() * std::mem::size_of::<u32>()
    }

    /// Number of elements covered by at least one set.
    pub fn coverable_elements(&self) -> usize {
        let mut seen = vec![false; self.m];
        for &e in &self.elements {
            seen[e as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_system_basics() {
        let s = SetSystem::new(vec![vec![0, 1, 1], vec![2], vec![]], 3);
        assert_eq!(s.num_sets(), 3);
        assert_eq!(s.num_elements(), 3);
        assert_eq!(s.set(0), &[0, 1]); // dedup
        assert_eq!(s.set(2), &[] as &[u32]);
        assert_eq!(s.total_size(), 3);
        assert_eq!(s.coverable_elements(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_element_panics() {
        let _ = SetSystem::new(vec![vec![5]], 3);
    }

    #[test]
    fn coverable_elements_excludes_untouched() {
        let s = SetSystem::new(vec![vec![0], vec![0]], 4);
        assert_eq!(s.coverable_elements(), 1);
    }
}
