//! The maximum-coverage utility oracle, with a packed word-parallel
//! gain kernel.

use fair_submod_core::bitset::{pack_sparse, FixedBitset};
use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::Groups;

use crate::set_system::SetSystem;

/// Coverage utility system: `f_u(S) = 1` iff user `u` is covered by the
/// union of the chosen sets (Section 5.1 of the paper).
///
/// Incremental state is a packed per-user coverage bitset
/// ([`FixedBitset`]). Each item's element list is precomputed as sparse
/// `(word, mask)` pairs and each group's membership as a dense word
/// mask, so a marginal-gain query for item `v` ANDs the item's masks
/// against the complement of the covered words and popcounts per group
/// — `O(touched words)` instead of `O(|S(v)|)` byte loads, and exactly
/// the same integer counts as the element-at-a-time kernel (kept as
/// [`UnpackedCoverageOracle`] for equivalence tests and benchmarks).
#[derive(Clone, Debug)]
pub struct CoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
    /// CSR over items into `item_words`.
    item_offsets: Vec<usize>,
    /// Sparse `(word, element mask)` pairs per item.
    item_words: Vec<(u32, u64)>,
    /// Dense per-group word masks over the element universe: bit `u` of
    /// `group_masks[g]` is set iff user `u` belongs to group `g`.
    group_masks: Vec<Vec<u64>>,
}

impl CoverageOracle {
    /// Builds the oracle from a set system and a group partition of the
    /// element universe.
    ///
    /// # Panics
    /// Panics if the group partition's user count differs from the set
    /// system's element universe.
    pub fn new(sets: SetSystem, groups: &Groups) -> Self {
        assert_eq!(
            sets.num_elements(),
            groups.num_users(),
            "set system universe and group partition disagree"
        );
        let m = sets.num_elements();
        let c = groups.num_groups();
        let group_of = groups.assignment().to_vec();

        let mut item_offsets = Vec::with_capacity(sets.num_sets() + 1);
        let mut item_words: Vec<(u32, u64)> = Vec::new();
        item_offsets.push(0);
        for v in 0..sets.num_sets() {
            item_words.extend(pack_sparse(sets.set(v)));
            item_offsets.push(item_words.len());
        }

        let num_words = FixedBitset::zeros(m).words().len();
        let mut group_masks = vec![vec![0u64; num_words]; c];
        for (u, &g) in group_of.iter().enumerate() {
            group_masks[g as usize][u / 64] |= 1u64 << (u % 64);
        }

        Self {
            sets,
            group_of,
            group_sizes: groups.sizes().to_vec(),
            item_offsets,
            item_words,
            group_masks,
        }
    }

    /// The underlying set system.
    pub fn sets(&self) -> &SetSystem {
        &self.sets
    }

    /// The element-at-a-time `Vec<bool>` kernel over the same instance —
    /// the pre-bitset implementation, kept as the equivalence and
    /// benchmark reference.
    pub fn unpacked_reference(&self) -> UnpackedCoverageOracle {
        UnpackedCoverageOracle {
            sets: self.sets.clone(),
            group_of: self.group_of.clone(),
            group_sizes: self.group_sizes.clone(),
        }
    }

    #[inline]
    fn words_of(&self, item: usize) -> &[(u32, u64)] {
        &self.item_words[self.item_offsets[item]..self.item_offsets[item + 1]]
    }
}

impl UtilitySystem for CoverageOracle {
    /// Packed covered flag per user.
    type Inner = FixedBitset;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        FixedBitset::zeros(self.sets.num_elements())
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        let covered = inner.words();
        for &(w, mask) in self.words_of(item as usize) {
            let free = mask & !covered[w as usize];
            if free == 0 {
                continue;
            }
            for (g, gm) in self.group_masks.iter().enumerate() {
                let cnt = (free & gm[w as usize]).count_ones();
                if cnt != 0 {
                    out[g] += cnt as f64;
                }
            }
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let covered = inner.words_mut();
        for &(w, mask) in self.words_of(item as usize) {
            covered[w as usize] |= mask;
        }
    }
}

/// The seed `Vec<bool>` coverage kernel: one byte per user, one branch
/// per element. Semantically identical to [`CoverageOracle`] (both count
/// newly covered users per group as exact integers); kept so equivalence
/// tests and `perfbase` can pit the packed kernel against it.
#[derive(Clone, Debug)]
pub struct UnpackedCoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
}

impl UtilitySystem for UnpackedCoverageOracle {
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.sets.num_elements()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &u in self.sets.set(item as usize) {
            if !inner[u as usize] {
                out[self.group_of[u as usize] as usize] += 1.0;
            }
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &u in self.sets.set(item as usize) {
            inner[u as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::{SolutionState, SystemExt};

    fn figure1_oracle() -> CoverageOracle {
        let sets = SetSystem::new(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![5, 6, 7, 8],
                vec![5, 8, 9],
                vec![10, 11],
            ],
            12,
        );
        let mut assignment = vec![0u32; 12];
        for g in assignment.iter_mut().skip(9) {
            *g = 1;
        }
        CoverageOracle::new(sets, &Groups::from_assignment(assignment))
    }

    #[test]
    fn matches_paper_figure1_numbers() {
        let oracle = figure1_oracle();
        assert!((oracle.eval_f(&[0, 1]) - 0.75).abs() < 1e-12);
        assert!((oracle.eval_g(&[0, 3]) - 5.0 / 9.0).abs() < 1e-12);
        let e = evaluate(&oracle, &[0, 2]);
        assert!((e.f - 8.0 / 12.0).abs() < 1e-12);
        assert!((e.g - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gains_shrink_with_larger_solutions_submodularity() {
        let oracle = figure1_oracle();
        let mut small = SolutionState::new(&oracle);
        let mut big = SolutionState::new(&oracle);
        big.insert(1); // {v2} ⊂ every superset
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 0..4 {
            small.gains_into(v, &mut gs);
            big.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i], "item {v}, group {i}");
            }
        }
    }

    #[test]
    fn coverage_is_monotone_and_capped() {
        let oracle = figure1_oracle();
        let all: Vec<u32> = (0..4).collect();
        let e = evaluate(&oracle, &all);
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_unpacked_reference() {
        let oracle = figure1_oracle();
        let reference = oracle.unpacked_reference();
        let mut packed = SolutionState::new(&oracle);
        let mut plain = SolutionState::new(&reference);
        let mut gp = [0.0; 2];
        let mut gq = [0.0; 2];
        for &step in &[1u32, 3, 0, 2] {
            for v in 0..4u32 {
                packed.gains_into(v, &mut gp);
                plain.gains_into(v, &mut gq);
                assert_eq!(gp.map(f64::to_bits), gq.map(f64::to_bits), "item {v}");
            }
            packed.insert(step);
            plain.insert(step);
            assert_eq!(packed.group_sums(), plain.group_sums());
        }
    }
}
