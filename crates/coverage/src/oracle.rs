//! The maximum-coverage utility oracle.

use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::Groups;

use crate::set_system::SetSystem;

/// Coverage utility system: `f_u(S) = 1` iff user `u` is covered by the
/// union of the chosen sets (Section 5.1 of the paper).
///
/// Incremental state is a per-user coverage bitmap, so a marginal-gain
/// query for item `v` costs `O(|S(v)|)` and an insertion the same.
#[derive(Clone, Debug)]
pub struct CoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
}

impl CoverageOracle {
    /// Builds the oracle from a set system and a group partition of the
    /// element universe.
    ///
    /// # Panics
    /// Panics if the group partition's user count differs from the set
    /// system's element universe.
    pub fn new(sets: SetSystem, groups: &Groups) -> Self {
        assert_eq!(
            sets.num_elements(),
            groups.num_users(),
            "set system universe and group partition disagree"
        );
        Self {
            sets,
            group_of: groups.assignment().to_vec(),
            group_sizes: groups.sizes().to_vec(),
        }
    }

    /// The underlying set system.
    pub fn sets(&self) -> &SetSystem {
        &self.sets
    }
}

impl UtilitySystem for CoverageOracle {
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.sets.num_elements()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &u in self.sets.set(item as usize) {
            if !inner[u as usize] {
                out[self.group_of[u as usize] as usize] += 1.0;
            }
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &u in self.sets.set(item as usize) {
            inner[u as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::{SolutionState, SystemExt};

    fn figure1_oracle() -> CoverageOracle {
        let sets = SetSystem::new(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![5, 6, 7, 8],
                vec![5, 8, 9],
                vec![10, 11],
            ],
            12,
        );
        let mut assignment = vec![0u32; 12];
        for g in assignment.iter_mut().skip(9) {
            *g = 1;
        }
        CoverageOracle::new(sets, &Groups::from_assignment(assignment))
    }

    #[test]
    fn matches_paper_figure1_numbers() {
        let oracle = figure1_oracle();
        assert!((oracle.eval_f(&[0, 1]) - 0.75).abs() < 1e-12);
        assert!((oracle.eval_g(&[0, 3]) - 5.0 / 9.0).abs() < 1e-12);
        let e = evaluate(&oracle, &[0, 2]);
        assert!((e.f - 8.0 / 12.0).abs() < 1e-12);
        assert!((e.g - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gains_shrink_with_larger_solutions_submodularity() {
        let oracle = figure1_oracle();
        let mut small = SolutionState::new(&oracle);
        let mut big = SolutionState::new(&oracle);
        big.insert(1); // {v2} ⊂ every superset
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 0..4 {
            small.gains_into(v, &mut gs);
            big.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i], "item {v}, group {i}");
            }
        }
    }

    #[test]
    fn coverage_is_monotone_and_capped() {
        let oracle = figure1_oracle();
        let all: Vec<u32> = (0..4).collect();
        let e = evaluate(&oracle, &all);
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }
}
