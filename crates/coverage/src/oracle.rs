//! The maximum-coverage utility oracle: decremental per-item
//! uncovered-overlap counters over a packed word-parallel kernel.

use fair_submod_core::bitset::{pack_sparse, FixedBitset, KERNEL_WORDS, WORD_BITS};
use fair_submod_core::engine::{validate_shard_members, validate_shard_partition, SolverError};
use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::Groups;
use rayon::prelude::*;

use crate::set_system::SetSystem;

/// Coverage utility system: `f_u(S) = 1` iff user `u` is covered by the
/// union of the chosen sets (Section 5.1 of the paper).
///
/// Incremental state ([`CoverageInner`]) is a packed per-user coverage
/// bitset **plus per-item uncovered-overlap counters** (DESIGN.md §9):
/// `counts[v·c + g]` tracks how many still-uncovered group-`g` users
/// item `v` would newly cover, so a marginal-gain query is `c` counter
/// reads. `apply` ORs the chosen item's `(word, mask)` pairs into the
/// coverage bitset and decrements the counters of every item containing
/// a newly covered user (via a user → items inverted index built from
/// the same packed bits, so duplicate listings can never
/// double-decrement). Each user is drained exactly once per run.
///
/// The pre-counter kernels are retained for equivalence tests and
/// benchmarks: [`CoverageOracle::scan_reference`] (packed word-popcount
/// rescans) and [`CoverageOracle::unpacked_reference`] (the seed
/// `Vec<bool>` element-at-a-time kernel).
#[derive(Clone, Debug)]
pub struct CoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
    /// CSR over items into `item_words`.
    item_offsets: Vec<usize>,
    /// Sparse `(word, element mask)` pairs per item.
    item_words: Vec<(u32, u64)>,
    /// Dense per-group word masks over the element universe: bit `u` of
    /// `group_masks[g]` is set iff user `u` belongs to group `g`.
    group_masks: Vec<Vec<u64>>,
    /// CSR over users into `user_items`: the items whose element masks
    /// contain each user. Drives the decremental counter updates.
    user_offsets: Vec<usize>,
    user_items: Vec<u32>,
    /// Uncovered-overlap counters at `S = ∅`: `base_counts[v·c + g]` =
    /// group-`g` elements of item `v` (deduplicated, like the masks).
    base_counts: Vec<u32>,
}

impl CoverageOracle {
    /// Builds the oracle from a set system and a group partition of the
    /// element universe.
    ///
    /// # Panics
    /// Panics if the group partition's user count differs from the set
    /// system's element universe.
    pub fn new(sets: SetSystem, groups: &Groups) -> Self {
        assert_eq!(
            sets.num_elements(),
            groups.num_users(),
            "set system universe and group partition disagree"
        );
        let m = sets.num_elements();
        let c = groups.num_groups();
        let group_of = groups.assignment().to_vec();

        let mut item_offsets = Vec::with_capacity(sets.num_sets() + 1);
        let mut item_words: Vec<(u32, u64)> = Vec::new();
        item_offsets.push(0);
        for v in 0..sets.num_sets() {
            item_words.extend(pack_sparse(sets.set(v)));
            item_offsets.push(item_words.len());
        }

        let num_words = FixedBitset::zeros(m).words().len();
        let mut group_masks = vec![vec![0u64; num_words]; c];
        for (u, &g) in group_of.iter().enumerate() {
            group_masks[g as usize][u / 64] |= 1u64 << (u % 64);
        }

        // User → items inverted index and the base counters, both read
        // off the packed masks (not the raw element lists) so duplicate
        // listings contribute exactly one bit, one index entry, and one
        // count — consistent with the word kernels.
        let n = sets.num_sets();
        let mut user_offsets = vec![0usize; m + 1];
        for &(w, mask) in &item_words {
            let base = w as usize * WORD_BITS;
            let mut bits = mask;
            while bits != 0 {
                let u = base + bits.trailing_zeros() as usize;
                user_offsets[u + 1] += 1;
                bits &= bits - 1;
            }
        }
        for u in 0..m {
            user_offsets[u + 1] += user_offsets[u];
        }
        let mut cursor = user_offsets.clone();
        let mut user_items = vec![0u32; *user_offsets.last().expect("m + 1 > 0")];
        let mut base_counts = vec![0u32; n * c];
        for v in 0..n {
            for &(w, mask) in &item_words[item_offsets[v]..item_offsets[v + 1]] {
                let base = w as usize * WORD_BITS;
                let mut bits = mask;
                while bits != 0 {
                    let u = base + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    user_items[cursor[u]] = v as u32;
                    cursor[u] += 1;
                    base_counts[v * c + group_of[u] as usize] += 1;
                }
            }
        }

        Self {
            sets,
            group_of,
            group_sizes: groups.sizes().to_vec(),
            item_offsets,
            item_words,
            group_masks,
            user_offsets,
            user_items,
            base_counts,
        }
    }

    /// The underlying set system.
    pub fn sets(&self) -> &SetSystem {
        &self.sets
    }

    /// Restricts the oracle to an ascending member list: a standalone
    /// shard oracle over only the members' element lists, with the full
    /// element universe and group partition passing through unchanged.
    ///
    /// Every per-item structure (packed masks, inverted-index entries,
    /// base counters) is a pure function of the item's own element list,
    /// so the rebuilt shard rows are bitwise equal to the centralized
    /// rows and gains — integer counter reads — are bit-identical for
    /// every member under any shared apply sequence (DESIGN.md §8).
    /// Malformed member lists are typed rejections, never panics.
    pub fn restrict(&self, members: &[ItemId]) -> Result<CoverageOracle, SolverError> {
        validate_shard_members("CoverageOracle::restrict", self.sets.num_sets(), members)?;
        let member_sets: Vec<Vec<u32>> = members
            .iter()
            .map(|&v| self.sets.set(v as usize).to_vec())
            .collect();
        let sets = SetSystem::new(member_sets, self.sets.num_elements());
        Ok(CoverageOracle::new(
            sets,
            &Groups::from_assignment(self.group_of.clone()),
        ))
    }

    /// Restricts the oracle to every shard of an exact partition of the
    /// ground set, building the shard oracles in parallel on the rayon
    /// pool. Empty, overlapping, unsorted, or out-of-range partitions
    /// are typed [`SolverError::InvalidParams`] rejections.
    pub fn partition_shards(
        &self,
        partition: &[Vec<ItemId>],
    ) -> Result<Vec<CoverageOracle>, SolverError> {
        validate_shard_partition(
            "CoverageOracle::partition_shards",
            self.sets.num_sets(),
            partition,
        )?;
        partition
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|members| self.restrict(members))
            .collect::<Vec<Result<CoverageOracle, SolverError>>>()
            .into_iter()
            .collect()
    }

    /// The element-at-a-time `Vec<bool>` kernel over the same instance —
    /// the pre-bitset implementation, kept as the equivalence and
    /// benchmark reference.
    pub fn unpacked_reference(&self) -> UnpackedCoverageOracle {
        UnpackedCoverageOracle {
            sets: self.sets.clone(),
            group_of: self.group_of.clone(),
            group_sizes: self.group_sizes.clone(),
        }
    }

    /// The packed word-popcount rescan kernel over the same instance —
    /// the pre-counter implementation (PR 2's kernel, now with the
    /// 8-word complement-masked popcount), kept as the "before" side of
    /// the incremental-equivalence tests and perfbase scenarios.
    pub fn scan_reference(&self) -> ScanCoverageOracle {
        ScanCoverageOracle(self.clone())
    }

    #[inline]
    fn words_of(&self, item: usize) -> &[(u32, u64)] {
        &self.item_words[self.item_offsets[item]..self.item_offsets[item + 1]]
    }

    /// The word-parallel rescan gain kernel: complement-mask the item's
    /// words against the covered bitset ([`KERNEL_WORDS`] pairs at a
    /// time), then popcount the surviving free masks against each
    /// group's membership words. Integer counts accumulated in `f64`
    /// (exact), so it agrees bit for bit with the counter reads.
    fn scan_group_gains(&self, covered: &[u64], item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        let mut free_buf = [0u64; KERNEL_WORDS];
        let mut word_buf = [0u32; KERNEL_WORDS];
        for chunk in self.words_of(item as usize).chunks(KERNEL_WORDS) {
            let mut len = 0usize;
            for &(w, mask) in chunk {
                let free = mask & !covered[w as usize];
                if free != 0 {
                    free_buf[len] = free;
                    word_buf[len] = w;
                    len += 1;
                }
            }
            if len == 0 {
                continue;
            }
            for (g, gm) in self.group_masks.iter().enumerate() {
                let mut cnt = 0u32;
                for i in 0..len {
                    cnt += (free_buf[i] & gm[word_buf[i] as usize]).count_ones();
                }
                out[g] += cnt as f64;
            }
        }
    }
}

/// Incremental evaluation state of [`CoverageOracle`]: the packed
/// covered bitset plus the live uncovered-overlap counters.
#[derive(Clone, Debug)]
pub struct CoverageInner {
    /// Packed covered flag per user.
    covered: FixedBitset,
    /// `counts[v·c + g]` = uncovered group-`g` users item `v` covers.
    counts: Vec<u32>,
}

impl UtilitySystem for CoverageOracle {
    type Inner = CoverageInner;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        CoverageInner {
            covered: FixedBitset::zeros(self.sets.num_elements()),
            counts: self.base_counts.clone(),
        }
    }

    /// Counter read: `c` loads per query. Coverage gains are exact
    /// integers, so this is trivially bit-identical to both rescan
    /// kernels.
    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        let c = self.group_sizes.len();
        let row = &inner.counts[item as usize * c..item as usize * c + c];
        for (o, &cnt) in out.iter_mut().zip(row) {
            *o = cnt as f64;
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    /// Decremental maintenance: OR the item's masks into the coverage
    /// bitset, then walk only the **newly** covered users and decrement
    /// the counters of every item containing them. Each user is drained
    /// at most once per run, so total apply work is bounded by the
    /// inverted index size.
    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let c = self.group_sizes.len();
        let covered = inner.covered.words_mut();
        for &(w, mask) in self.words_of(item as usize) {
            let new = mask & !covered[w as usize];
            if new == 0 {
                continue;
            }
            covered[w as usize] |= mask;
            let base = w as usize * WORD_BITS;
            let mut bits = new;
            while bits != 0 {
                let u = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let g = self.group_of[u] as usize;
                for &t in &self.user_items[self.user_offsets[u]..self.user_offsets[u + 1]] {
                    inner.counts[t as usize * c + g] -= 1;
                }
            }
        }
    }

    fn gain_kernel(&self) -> &'static str {
        "incremental_counters"
    }

    /// Advisory footprint for the byte-budgeted instance store
    /// (DESIGN.md §11): the set-system CSR plus every derived structure
    /// (packed masks, group masks, inverted index, base counters).
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sets.approx_bytes()
            + self.group_of.len() * size_of::<u32>()
            + self.group_sizes.len() * size_of::<usize>()
            + self.item_offsets.len() * size_of::<usize>()
            + self.item_words.len() * size_of::<(u32, u64)>()
            + self
                .group_masks
                .iter()
                .map(|m| m.len() * size_of::<u64>())
                .sum::<usize>()
            + self.user_offsets.len() * size_of::<usize>()
            + self.user_items.len() * size_of::<u32>()
            + self.base_counts.len() * size_of::<u32>()
    }
}

/// The pre-counter packed kernel: word-popcount rescans per gain query
/// over a plain covered bitset. See [`CoverageOracle::scan_reference`].
#[derive(Clone, Debug)]
pub struct ScanCoverageOracle(CoverageOracle);

impl UtilitySystem for ScanCoverageOracle {
    /// Packed covered flag per user (no counters to maintain).
    type Inner = FixedBitset;

    fn num_items(&self) -> usize {
        self.0.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.0.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.0.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        FixedBitset::zeros(self.0.sets.num_elements())
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.0.scan_group_gains(inner.words(), item, out);
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let covered = inner.words_mut();
        for &(w, mask) in self.0.words_of(item as usize) {
            covered[w as usize] |= mask;
        }
    }
}

/// The seed `Vec<bool>` coverage kernel: one byte per user, one branch
/// per element. Semantically identical to [`CoverageOracle`] (both count
/// newly covered users per group as exact integers); kept so equivalence
/// tests and `perfbase` can pit the packed kernel against it.
#[derive(Clone, Debug)]
pub struct UnpackedCoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
}

impl UtilitySystem for UnpackedCoverageOracle {
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.sets.num_elements()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.sets.num_elements()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &u in self.sets.set(item as usize) {
            if !inner[u as usize] {
                out[self.group_of[u as usize] as usize] += 1.0;
            }
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &u in self.sets.set(item as usize) {
            inner[u as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::{SolutionState, SystemExt};

    fn figure1_oracle() -> CoverageOracle {
        let sets = SetSystem::new(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![5, 6, 7, 8],
                vec![5, 8, 9],
                vec![10, 11],
            ],
            12,
        );
        let mut assignment = vec![0u32; 12];
        for g in assignment.iter_mut().skip(9) {
            *g = 1;
        }
        CoverageOracle::new(sets, &Groups::from_assignment(assignment))
    }

    #[test]
    fn restricted_oracle_matches_central_gains_bitwise() {
        let oracle = figure1_oracle();
        let members: Vec<u32> = vec![0, 2, 3];
        let shard = oracle.restrict(&members).expect("valid members");
        assert_eq!(shard.num_items(), 3);
        assert_eq!(shard.num_users(), oracle.num_users());
        assert_eq!(shard.group_sizes(), oracle.group_sizes());
        let mut central = SolutionState::new(&oracle);
        let mut restricted = SolutionState::new(&shard);
        let c = oracle.num_groups();
        let mut through = vec![0.0; c];
        let mut direct = vec![0.0; c];
        for &pick in &[1u32, 0] {
            for (local, &global) in members.iter().enumerate() {
                restricted.gains_into(local as u32, &mut through);
                central.gains_into(global, &mut direct);
                for g in 0..c {
                    assert_eq!(through[g].to_bits(), direct[g].to_bits(), "member {global}");
                }
            }
            restricted.insert(pick);
            central.insert(members[pick as usize]);
            assert_eq!(restricted.group_sums(), central.group_sums());
        }
    }

    #[test]
    fn partition_shards_rejects_malformed_partitions() {
        let oracle = figure1_oracle();
        assert!(oracle.partition_shards(&[]).is_err());
        assert!(oracle
            .partition_shards(&[vec![0, 1, 2, 3], vec![]])
            .is_err());
        assert!(oracle
            .partition_shards(&[vec![0, 1], vec![1, 2, 3]])
            .is_err());
        assert!(oracle.partition_shards(&[vec![0, 1, 2], vec![4]]).is_err());
        assert!(oracle.partition_shards(&[vec![0, 1]]).is_err());
        assert!(oracle.restrict(&[]).is_err());
        assert!(oracle.restrict(&[2, 0]).is_err());
        let shards = oracle
            .partition_shards(&[vec![0, 3], vec![1, 2]])
            .expect("valid partition");
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn matches_paper_figure1_numbers() {
        let oracle = figure1_oracle();
        assert!((oracle.eval_f(&[0, 1]) - 0.75).abs() < 1e-12);
        assert!((oracle.eval_g(&[0, 3]) - 5.0 / 9.0).abs() < 1e-12);
        let e = evaluate(&oracle, &[0, 2]);
        assert!((e.f - 8.0 / 12.0).abs() < 1e-12);
        assert!((e.g - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gains_shrink_with_larger_solutions_submodularity() {
        let oracle = figure1_oracle();
        let mut small = SolutionState::new(&oracle);
        let mut big = SolutionState::new(&oracle);
        big.insert(1); // {v2} ⊂ every superset
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 0..4 {
            small.gains_into(v, &mut gs);
            big.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i], "item {v}, group {i}");
            }
        }
    }

    #[test]
    fn coverage_is_monotone_and_capped() {
        let oracle = figure1_oracle();
        let all: Vec<u32> = (0..4).collect();
        let e = evaluate(&oracle, &all);
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_unpacked_reference() {
        let oracle = figure1_oracle();
        let reference = oracle.unpacked_reference();
        let mut packed = SolutionState::new(&oracle);
        let mut plain = SolutionState::new(&reference);
        let mut gp = [0.0; 2];
        let mut gq = [0.0; 2];
        for &step in &[1u32, 3, 0, 2] {
            for v in 0..4u32 {
                packed.gains_into(v, &mut gp);
                plain.gains_into(v, &mut gq);
                assert_eq!(gp.map(f64::to_bits), gq.map(f64::to_bits), "item {v}");
            }
            packed.insert(step);
            plain.insert(step);
            assert_eq!(packed.group_sums(), plain.group_sums());
        }
    }

    #[test]
    fn counter_kernel_matches_scan_reference_bitwise() {
        let oracle = figure1_oracle();
        let scan = oracle.scan_reference();
        let mut inc = SolutionState::new(&oracle);
        let mut refc = SolutionState::new(&scan);
        let mut gi = [0.0; 2];
        let mut gr = [0.0; 2];
        for &step in &[2u32, 0, 3, 1] {
            for v in 0..4u32 {
                inc.gains_into(v, &mut gi);
                refc.gains_into(v, &mut gr);
                assert_eq!(gi.map(f64::to_bits), gr.map(f64::to_bits), "item {v}");
            }
            inc.insert(step);
            refc.insert(step);
            assert_eq!(inc.group_sums(), refc.group_sums());
        }
    }

    #[test]
    fn overlapping_sets_drain_each_user_once() {
        // Items 0 and 1 share users 5 and 8: applying one must drop the
        // other's counters for exactly the shared users, and re-applying
        // must change nothing.
        let oracle = figure1_oracle();
        let mut inner = oracle.init_inner();
        let mut out = [0.0; 2];
        oracle.apply(&mut inner, 2); // covers {5, 8, 9}
        oracle.group_gains(&inner, 1, &mut out); // {5,6,7,8} minus {5,8}
        assert_eq!(out, [2.0, 0.0]);
        let snapshot = inner.counts.clone();
        oracle.apply(&mut inner, 2);
        assert_eq!(inner.counts, snapshot);
    }
}
