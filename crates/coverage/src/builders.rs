//! Additional [`SetSystem`] constructors: bipartite edge lists,
//! inverted indices, and transaction-style data.
//!
//! Real coverage datasets arrive in many shapes — SNAP-style bipartite
//! edge lists (`set element` pairs), element→sets inverted files, or
//! "transactions" (one line of elements per set). These builders
//! normalize all of them into the CSR [`SetSystem`], plus summary
//! statistics used by dataset reports.

use crate::set_system::SetSystem;

/// Builds from `(set, element)` pairs; `n` sets over `m` elements.
/// Pairs may repeat and arrive in any order.
pub fn from_bipartite_edges(pairs: &[(u32, u32)], n: usize, m: usize) -> SetSystem {
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(s, e) in pairs {
        assert!((s as usize) < n, "set id {s} out of range");
        sets[s as usize].push(e);
    }
    SetSystem::new(sets, m)
}

/// Builds from an element→sets inverted index (`covering[e]` lists the
/// sets containing element `e`).
pub fn from_inverted_index(covering: &[Vec<u32>], n: usize) -> SetSystem {
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (e, in_sets) in covering.iter().enumerate() {
        for &s in in_sets {
            assert!((s as usize) < n, "set id {s} out of range");
            sets[s as usize].push(e as u32);
        }
    }
    SetSystem::new(sets, covering.len())
}

/// Parses transaction text: one set per non-empty line, elements
/// whitespace-separated; `#` lines are comments. Element universe size
/// is `1 + max element`.
pub fn from_transactions(text: &str) -> std::io::Result<SetSystem> {
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut max_elem: i64 = -1;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut set = Vec::new();
        for tok in line.split_whitespace() {
            let e: u32 = tok.parse().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad element '{tok}' at line {}", lineno + 1),
                )
            })?;
            max_elem = max_elem.max(e as i64);
            set.push(e);
        }
        sets.push(set);
    }
    Ok(SetSystem::new(sets, (max_elem + 1).max(0) as usize))
}

/// Summary statistics of a set system (for dataset tables).
#[derive(Clone, Debug, PartialEq)]
pub struct SetSystemStats {
    /// Number of sets.
    pub num_sets: usize,
    /// Element universe size.
    pub num_elements: usize,
    /// Mean set size.
    pub avg_set_size: f64,
    /// Largest set size.
    pub max_set_size: usize,
    /// Fraction of the universe covered by at least one set.
    pub coverable_fraction: f64,
}

/// Computes [`SetSystemStats`].
pub fn stats(sets: &SetSystem) -> SetSystemStats {
    let n = sets.num_sets();
    let mut max_size = 0usize;
    for i in 0..n {
        max_size = max_size.max(sets.set(i).len());
    }
    SetSystemStats {
        num_sets: n,
        num_elements: sets.num_elements(),
        avg_set_size: sets.total_size() as f64 / n.max(1) as f64,
        max_set_size: max_size,
        coverable_fraction: sets.coverable_elements() as f64 / sets.num_elements().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_edges_roundtrip() {
        let s = from_bipartite_edges(&[(0, 1), (0, 2), (1, 0), (0, 1)], 2, 3);
        assert_eq!(s.set(0), &[1, 2]); // dedup
        assert_eq!(s.set(1), &[0]);
    }

    #[test]
    fn inverted_index_transposes() {
        // Element 0 in sets {0,1}; element 1 in set {1}.
        let s = from_inverted_index(&[vec![0, 1], vec![1]], 2);
        assert_eq!(s.set(0), &[0]);
        assert_eq!(s.set(1), &[0, 1]);
        assert_eq!(s.num_elements(), 2);
    }

    #[test]
    fn transactions_parse_and_skip_comments() {
        let text = "# demo\n1 2 3\n\n0 3\n";
        let s = from_transactions(text).unwrap();
        assert_eq!(s.num_sets(), 2);
        assert_eq!(s.num_elements(), 4);
        assert_eq!(s.set(1), &[0, 3]);
    }

    #[test]
    fn transactions_reject_garbage() {
        assert!(from_transactions("1 x 3\n").is_err());
    }

    #[test]
    fn stats_summarize() {
        let s = from_bipartite_edges(&[(0, 0), (0, 1), (1, 2)], 3, 4);
        let st = stats(&s);
        assert_eq!(st.num_sets, 3);
        assert_eq!(st.max_set_size, 2);
        assert!((st.avg_set_size - 1.0).abs() < 1e-12);
        assert!((st.coverable_fraction - 0.75).abs() < 1e-12);
    }
}
