//! Weighted coverage: users carry non-negative importance weights.
//!
//! Generalizes [`CoverageOracle`](crate::oracle::CoverageOracle): user
//! `u` contributes `w_u` instead of 1 when first covered, i.e.
//! `f_u(S) = w_u·[u covered]`. The paper's framework only requires
//! monotone submodular per-user utilities, so everything (greedy,
//! Saturate, both BSM schemes, exact solvers) applies unchanged; this is
//! the natural model when users represent aggregated populations (e.g.
//! census blocks).

use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::Groups;

use crate::set_system::SetSystem;

/// Coverage with per-user weights.
#[derive(Clone, Debug)]
pub struct WeightedCoverageOracle {
    sets: SetSystem,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
    weights: Vec<f64>,
}

impl WeightedCoverageOracle {
    /// Builds the oracle; `weights[u] ≥ 0` is user `u`'s importance.
    ///
    /// # Panics
    /// Panics on shape mismatch or negative weights.
    pub fn new(sets: SetSystem, groups: &Groups, weights: Vec<f64>) -> Self {
        assert_eq!(sets.num_elements(), groups.num_users());
        assert_eq!(weights.len(), groups.num_users());
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        Self {
            sets,
            group_of: groups.assignment().to_vec(),
            group_sizes: groups.sizes().to_vec(),
            weights,
        }
    }

    /// Uniform weights reduce to the plain coverage oracle semantics.
    pub fn uniform(sets: SetSystem, groups: &Groups) -> Self {
        let m = groups.num_users();
        Self::new(sets, groups, vec![1.0; m])
    }
}

impl UtilitySystem for WeightedCoverageOracle {
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.sets.num_sets()
    }

    fn num_users(&self) -> usize {
        self.group_of.len()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.group_of.len()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &u in self.sets.set(item as usize) {
            if !inner[u as usize] {
                out[self.group_of[u as usize] as usize] += self.weights[u as usize];
            }
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &u in self.sets.set(item as usize) {
            inner[u as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::aggregate::MeanUtility;
    use fair_submod_core::algorithms::greedy::{greedy, GreedyConfig};
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::SystemExt;

    fn two_sets() -> (SetSystem, Groups) {
        let sets = SetSystem::new(vec![vec![0, 1], vec![2]], 3);
        (sets, Groups::from_assignment(vec![0, 0, 1]))
    }

    #[test]
    fn uniform_weights_match_plain_coverage() {
        let (sets, groups) = two_sets();
        let weighted = WeightedCoverageOracle::uniform(sets.clone(), &groups);
        let plain = crate::oracle::CoverageOracle::new(sets, &groups);
        for items in [&[0u32][..], &[1], &[0, 1]] {
            assert!((weighted.eval_f(items) - plain.eval_f(items)).abs() < 1e-12);
            assert!((weighted.eval_g(items) - plain.eval_g(items)).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_shift_greedy_choices() {
        let (sets, groups) = two_sets();
        // Make the single group-1 user dominate: greedy must pick set 1.
        let oracle = WeightedCoverageOracle::new(sets, &groups, vec![0.1, 0.1, 10.0]);
        let f = MeanUtility::new(3);
        let run = greedy(&oracle, &f, &GreedyConfig::lazy(1));
        assert_eq!(run.items, vec![1]);
    }

    #[test]
    fn zero_weight_users_are_ignored_in_value() {
        let (sets, groups) = two_sets();
        let oracle = WeightedCoverageOracle::new(sets, &groups, vec![1.0, 0.0, 1.0]);
        let e = evaluate(&oracle, &[0]);
        // Covered weight = 1.0 (user 0) + 0.0 (user 1) over m = 3.
        assert!((e.f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weights_rejected() {
        let (sets, groups) = two_sets();
        let _ = WeightedCoverageOracle::new(sets, &groups, vec![1.0, -1.0, 1.0]);
    }
}
