//! The paper's dominating-set construction (Section 5.1).
//!
//! Given a graph, the element universe is the node set, and for each node
//! `v` a set `S(v) = N_out(v) ∪ {v}` is created. Selecting `k` items then
//! means selecting `k` nodes that dominate as many users as possible.

use fair_submod_graphs::{CsrSlice, Graph};

use crate::set_system::SetSystem;

/// Builds the dominating-set system of `graph`.
pub fn dominating_set_system(graph: &Graph) -> SetSystem {
    let n = graph.num_nodes();
    let sets = (0..n as u32)
        .map(|v| {
            let mut s: Vec<u32> = graph.out_neighbors(v).to_vec();
            s.push(v);
            s
        })
        .collect();
    SetSystem::new(sets, n)
}

/// Builds the dominating-set system of one shard's [`CsrSlice`]: item
/// `i` is the slice's `i`-th node `v` with `S(v) = N_out(v) ∪ {v}` over
/// the **full** element universe `0..num_nodes`. Because the universe
/// (and hence every per-user utility) is the global one, the shard
/// sub-oracle's rows are bitwise equal to the corresponding rows of
/// [`dominating_set_system`] on the whole graph — the invariant the
/// sharded tier's bit-identity proof rests on.
pub fn dominating_slice_system(slice: &CsrSlice, num_nodes: usize) -> SetSystem {
    let sets = slice
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut s: Vec<u32> = slice.neighbors(i).to_vec();
            s.push(v);
            s
        })
        .collect();
    SetSystem::new(sets, num_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;

    #[test]
    fn dominating_sets_include_self_and_out_neighbors() {
        let mut b = GraphBuilder::new(4, true);
        b.add_edge(0, 1).add_edge(0, 2).add_edge(3, 0);
        let g = b.build();
        let s = dominating_set_system(&g);
        assert_eq!(s.num_sets(), 4);
        assert_eq!(s.set(0), &[0, 1, 2]);
        assert_eq!(s.set(1), &[1]);
        assert_eq!(s.set(3), &[0, 3]);
    }

    #[test]
    fn slice_system_rows_match_the_central_system() {
        let mut b = GraphBuilder::new(5, false);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4);
        let g = b.build();
        let central = dominating_set_system(&g);
        let members = [1u32, 3];
        let slice = g.slice_rows(&members);
        let sharded = dominating_slice_system(&slice, g.num_nodes());
        assert_eq!(sharded.num_sets(), 2);
        assert_eq!(sharded.num_elements(), central.num_elements());
        for (local, &v) in members.iter().enumerate() {
            assert_eq!(sharded.set(local), central.set(v as usize));
        }
    }

    #[test]
    fn undirected_graph_gives_closed_neighborhoods() {
        let mut b = GraphBuilder::new(3, false);
        b.add_edge(0, 1);
        let g = b.build();
        let s = dominating_set_system(&g);
        assert_eq!(s.set(0), &[0, 1]);
        assert_eq!(s.set(1), &[0, 1]);
        assert_eq!(s.set(2), &[2]);
    }
}
