//! # fair-submod-coverage
//!
//! Maximum-coverage (MC) substrate: weighted bipartite set systems, the
//! dominating-set construction used by the paper (`S(v) = N_out(v) ∪ {v}`
//! per node `v`), and [`CoverageOracle`] — the
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem)
//! implementation that drives all BSM algorithms on MC instances.
//!
//! In the paper's MC formulation, user `u`'s utility of a set `S` of
//! items is `1` if `u` is covered by the union of the chosen sets and `0`
//! otherwise, so `f(S)` is the average coverage and `g(S)` the minimum
//! average group coverage (Section 5.1).
//!
//! ## Example
//!
//! Fair maximum coverage on a tiny hand-built instance — the flow of
//! `examples/fair_coverage.rs`, minus the dataset generator. Set 0 is
//! the only set reaching the minority group (users 0–1), so the
//! fairness constraint forces it into the solution:
//!
//! ```
//! use fair_submod_core::prelude::*;
//! use fair_submod_coverage::{CoverageOracle, SetSystem};
//! use fair_submod_graphs::Groups;
//!
//! // 4 candidate sets over 6 users split into two groups ({0,1} | {2..5}).
//! let sets = vec![vec![0, 1], vec![2, 3], vec![3, 4, 5], vec![2, 4, 5]];
//! let groups = Groups::from_assignment(vec![0, 0, 1, 1, 1, 1]);
//! let oracle = CoverageOracle::new(SetSystem::new(sets, 6), &groups);
//!
//! // Fairness-unaware lazy greedy vs BSM-Saturate at τ = 0.8.
//! let f = MeanUtility::new(oracle.num_users());
//! let base = greedy(&oracle, &f, &GreedyConfig::lazy(2));
//! let fair = bsm_saturate(&oracle, &BsmSaturateConfig::new(2, 0.8));
//!
//! assert_eq!(base.items.len(), 2);
//! assert_eq!(fair.eval.size, 2);
//! // The minority group is served: its mean coverage is positive.
//! assert!(fair.eval.g > 0.0);
//! ```

pub mod builders;
pub mod dominating;
pub mod oracle;
pub mod set_system;
pub mod weighted;

pub use dominating::{dominating_set_system, dominating_slice_system};
pub use oracle::{CoverageOracle, UnpackedCoverageOracle};
pub use set_system::SetSystem;
pub use weighted::WeightedCoverageOracle;
