//! # fair-submod-coverage
//!
//! Maximum-coverage (MC) substrate: weighted bipartite set systems, the
//! dominating-set construction used by the paper (`S(v) = N_out(v) ∪ {v}`
//! per node `v`), and [`CoverageOracle`] — the
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem)
//! implementation that drives all BSM algorithms on MC instances.
//!
//! In the paper's MC formulation, user `u`'s utility of a set `S` of
//! items is `1` if `u` is covered by the union of the chosen sets and `0`
//! otherwise, so `f(S)` is the average coverage and `g(S)` the minimum
//! average group coverage (Section 5.1).

pub mod builders;
pub mod dominating;
pub mod oracle;
pub mod set_system;
pub mod weighted;

pub use dominating::dominating_set_system;
pub use oracle::CoverageOracle;
pub use set_system::SetSystem;
pub use weighted::WeightedCoverageOracle;
