//! Offline API-compatible subset of [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! Provides the slice of the rand API this workspace actually uses:
//! [`Rng`], [`SeedableRng`], [`RngCore`], [`rngs::StdRng`],
//! [`seq::SliceRandom`], and [`seq::index::sample`]. The generator
//! behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a fixed seed, statistically solid for simulation
//! work, but **not** stream-compatible with the real rand crate.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their
    /// full range, `bool` fair).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, bound) by widening multiply (Lemire); the
// tiny modulo bias of the plain multiply is irrelevant at these sizes
// but the rejection loop removes it anyway.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    let zone = bound.wrapping_neg() % bound; // # of biased low outcomes
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = (x as u128 * bound as u128) as u64;
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

pub mod rngs {
    //! Concrete generators ([`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers: shuffling and index sampling.

    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices.

        use super::super::Rng;

        /// A set of distinct indices in `0..length`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes the sample into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices uniformly from
        /// `0..length` (partial Fisher–Yates).
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount {amount} exceeds length {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = index::sample(&mut rng, 100, 10);
        let v = s.into_vec();
        assert_eq!(v.len(), 10);
        let mut dedup = v.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(v.iter().all(|&i| i < 100));
    }
}
