//! A small self-contained JSON tree: parse, build, and pretty-print
//! [`Value`]s without touching the network-fetched `serde_json` stack.
//!
//! The engine and scenario layers persist their specs and reports as
//! JSON artifacts through the [`crate::ToJson`] / [`crate::FromJson`]
//! traits, which convert to and from this [`Value`] type. The grammar
//! covered is exactly what those artifacts need: objects with string
//! keys, arrays, strings with the standard escapes, finite numbers,
//! booleans, and null.

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is preserved (insertion order), which keeps
    /// serialized artifacts stable and diffable.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        // `u64::MAX as f64` rounds up to 2^64, so the comparison must be
        // strict — otherwise 2^64 would pass and saturate on the cast.
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a vector of numbers, if it is an array of numbers.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Value::as_f64).collect()
    }

    /// The value as a vector of `usize`, if it is an array of
    /// non-negative integral numbers.
    pub fn as_usize_vec(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(Value::as_usize).collect()
    }

    /// The value as the object's key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly into bytes (e.g. an HTTP response body).
    pub fn to_body_bytes(&self) -> Vec<u8> {
        self.to_compact_string().into_bytes()
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => out.push_str(&format_number(*x)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

/// Formats a finite number; integral values print without a trailing
/// `.0` so integers round-trip textually.
fn format_number(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; clamp to null-adjacent sentinel.
        return "null".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        // `{:?}` is the shortest representation that round-trips f64.
        format!("{x:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse or conversion error, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input (parse errors only).
    pub offset: usize,
}

impl Error {
    /// A conversion (non-positional) error.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document from raw bytes (e.g. an HTTP request body).
///
/// The body must be UTF-8; invalid encoding is reported as a parse
/// error at the offending byte rather than a panic, so servers can map
/// it to a 400 response.
pub fn parse_bytes(input: &[u8]) -> Result<Value, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error {
        message: "body is not valid UTF-8".into(),
        offset: e.valid_up_to(),
    })?;
    parse(text)
}

/// Parses a JSON document (must consume the whole input up to trailing
/// whitespace).
pub fn parse(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error {
            message: "trailing characters after document".into(),
            offset: pos,
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err_at(pos: usize, message: impl Into<String>) -> Error {
    Error {
        message: message.into(),
        offset: pos,
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err_at(*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err_at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err_at(*pos, format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err_at(start, format!("invalid number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err_at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err_at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err_at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err_at(*pos, "invalid \\u escape"))?;
                        // Surrogates are not paired up (the writer never
                        // emits them); map them to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err_at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf8 tail");
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err_at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(err_at(*pos, "expected ',' or '}'")),
        }
    }
}

/// Convenience builder for object values: `obj([("k", v), ...])`.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null", "true", "false", "0", "-3", "2.5", "\"hi\"", "[]", "{}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_compact_string(), text, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let v = obj([
            ("name", Value::Str("fig3".into())),
            (
                "taus",
                Value::Arr(vec![Value::Num(0.1), Value::Num(0.5), Value::Num(0.9)]),
            ),
            ("quick", Value::Bool(false)),
            ("nested", obj([("k", Value::Num(5.0))])),
        ]);
        let compact = v.to_compact_string();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.to_pretty_string();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_compact_string()).unwrap(), v);
    }

    #[test]
    fn accessors_work() {
        let v = parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_usize), Some(3));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(2.5).as_u64(), None);
        // 2^64 must not saturate into range.
        assert_eq!(Value::Num((u64::MAX as f64) * 2.0).as_u64(), None);
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn byte_bodies_round_trip() {
        let v = obj([
            ("solver", Value::Str("Greedy".into())),
            ("k", Value::Num(5.0)),
        ]);
        let body = v.to_body_bytes();
        assert_eq!(parse_bytes(&body).unwrap(), v);
        assert_eq!(v.as_obj().map(<[_]>::len), Some(2));
        assert_eq!(Value::Num(1.0).as_obj(), None);
        // Invalid UTF-8 is a positioned parse error, not a panic.
        let err = parse_bytes(&[b'"', 0xFF, b'"']).unwrap_err();
        assert!(err.message.contains("UTF-8"));
        assert_eq!(err.offset, 1);
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn float_precision_round_trips() {
        let v = Value::Num(0.1 + 0.2);
        let back = parse(&v.to_compact_string()).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }
}
