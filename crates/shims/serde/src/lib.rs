//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! Two layers:
//!
//! * The no-op [`Serialize`] / [`Deserialize`] **derive macros**
//!   (re-exported from the `serde_derive` shim) keep the workspace's
//!   `#[derive(Serialize, Deserialize)]` annotations compiling without
//!   network access — they emit no code.
//! * The [`json`] module plus the [`ToJson`] / [`FromJson`] traits are
//!   the shim's *working* serialization surface: a small JSON tree with
//!   a parser and pretty-printer, used by the engine layer to persist
//!   scenario specs and solve reports as JSON artifacts. Types opt in
//!   with explicit `impl ToJson` / `impl FromJson` blocks (the derive
//!   macros do **not** generate these).
//!
//! To use the real crates.io serde stack instead, point the workspace
//! `serde` dependency back at the registry and replace `ToJson` /
//! `FromJson` impls with derives (see `crates/shims/README.md`).

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Conversion into a [`json::Value`] tree.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> json::Value;

    /// Serializes with two-space indentation (ends with a newline).
    fn to_json_pretty(&self) -> String {
        self.to_json().to_pretty_string()
    }
}

/// Conversion from a [`json::Value`] tree.
pub trait FromJson: Sized {
    /// Rebuilds `Self` from its JSON representation.
    fn from_json(value: &json::Value) -> Result<Self, json::Error>;

    /// Parses a JSON document and rebuilds `Self`.
    fn from_json_str(text: &str) -> Result<Self, json::Error> {
        Self::from_json(&json::parse(text)?)
    }
}
