//! Offline stand-in for [`serde`](https://docs.rs/serde): re-exports
//! the no-op [`Serialize`] / [`Deserialize`] derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without network access. No serialization is performed anywhere in
//! the workspace yet; when that changes, point the workspace `serde`
//! dependency back at crates.io (see `crates/shims/README.md`).

pub use serde_derive::{Deserialize, Serialize};
