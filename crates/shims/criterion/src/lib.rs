//! Offline API-compatible subset of
//! [`criterion`](https://docs.rs/criterion): enough to compile and run
//! the workspace's `benches/` with `harness = false`. Each benchmark
//! runs a small fixed number of timed iterations and prints the mean
//! time; there is no statistical analysis, HTML report, or baseline
//! comparison. Point the workspace `criterion` dependency back at
//! crates.io for real measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver; collects configuration and runs benchmark
/// closures.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false benches with `--test`; run a
        // single iteration there so the suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.effective_samples(), |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.criterion.effective_samples(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.criterion.effective_samples(), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new<N: Into<String>, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the
/// routine.
pub struct Bencher {
    samples: usize,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed());
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        elapsed: None,
    };
    f(&mut b);
    match b.elapsed {
        Some(total) => {
            let mean_ns = total.as_nanos() as f64 / samples as f64;
            println!("bench: {label:<50} {mean_ns:>14.0} ns/iter (n={samples})");
        }
        None => println!("bench: {label:<50} (no iter() call)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name. Both the `name =/config =/targets =` block
/// form and the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 3 timed + 1 warm-up (test_mode may clamp samples to 1 → 2 runs).
        assert!(runs >= 2);
    }

    #[test]
    fn group_benchmarks_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0usize;
        group.bench_with_input(BenchmarkId::new("case", 7), &7usize, |b, &k| {
            b.iter(|| hits += k)
        });
        group.finish();
        assert!(hits > 0);
    }
}
