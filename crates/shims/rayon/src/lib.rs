//! Sequential, API-compatible subset of
//! [`rayon`](https://docs.rs/rayon): `into_par_iter()` plus the
//! `fold → map → reduce` combinator chain the workspace uses, executed
//! on the calling thread.
//!
//! Results are identical to real rayon for the reductions used here
//! (associative, commutative merges of per-run tallies); only
//! wall-clock parallelism is lost. Swap the workspace `rayon`
//! dependency back to crates.io to restore it.

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// exposing rayon's combinator names.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Folds every item into per-split accumulators (a single split
    /// here), yielding an iterator over the accumulators.
    pub fn fold<T, Id, F>(self, identity: Id, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        Id: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter {
            inner: std::iter::once(self.inner.fold(identity(), fold_op)),
        }
    }

    /// Maps each item through `f`.
    pub fn map<O, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> O,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Reduces all items with `op`, starting from `identity()`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> I::Item
    where
        Id: Fn() -> I::Item,
        Op: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Sums all items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Collects all items.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for everything
/// iterable, mirroring rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wraps `self` in a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_map_reduce_matches_sequential() {
        let total: Vec<i64> = (0..100)
            .into_par_iter()
            .fold(
                || (vec![0i64; 2], 0usize),
                |(mut acc, scratch), x: i64| {
                    acc[(x % 2) as usize] += x;
                    (acc, scratch)
                },
            )
            .map(|(acc, _)| acc)
            .reduce(
                || vec![0; 2],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(total, vec![2450, 2500]);
    }
}
