//! Work-distributing, API-compatible subset of
//! [`rayon`](https://docs.rs/rayon): `into_par_iter()` with the
//! `map / fold / reduce / sum / collect` combinator chain, slice
//! `par_chunks` / `par_chunks_mut`, and `join`, executed on real
//! `std::thread` workers.
//!
//! # Execution model
//!
//! Every parallel operation splits its input into **chunks whose
//! boundaries depend only on the input length** (never on the thread
//! count), hands chunks to scoped worker threads through a shared
//! atomic cursor (dynamic load balancing), and then merges per-chunk
//! results **in ascending chunk order** on the calling thread. Because
//! the chunking and the merge order are both thread-count independent,
//! every reduction is bit-for-bit reproducible: running with
//! `RAYON_NUM_THREADS=1` and with 64 threads produces identical
//! results, even for non-associative floating-point merges.
//!
//! # Thread-count control
//!
//! The worker count is, in order of precedence:
//!
//! 1. [`set_num_threads`] (a shim-only runtime override, `0` = auto);
//! 2. the `RAYON_NUM_THREADS` environment variable (read once);
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are spawned per parallel call via [`std::thread::scope`], so
//! borrowed data flows into closures without `'static` bounds; a call
//! whose input is small (or when one thread is configured) runs inline
//! on the caller with zero spawn overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on the number of chunks a parallel call splits into.
///
/// Fixed (rather than derived from the worker count) so that chunk
/// boundaries — and therefore floating-point merge order — never depend
/// on how many threads happen to run. 64 chunks keeps the dynamic
/// load-balancing granularity fine enough for skewed workloads while
/// bounding per-call bookkeeping.
const MAX_CHUNKS: usize = 64;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn configured_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads parallel calls currently use.
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// Overrides the worker count at runtime (`0` restores the default).
///
/// Shim-only extension (real rayon sizes its pool once at startup),
/// used by benchmarks to time sequential-vs-parallel runs in one
/// process and by tests to prove thread-count invariance. Results never
/// depend on this value — only wall-clock time does.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Deterministic chunk boundaries for an input of `len` items: at most
/// [`MAX_CHUNKS`] contiguous ranges, sizes differing by at most one.
fn chunk_bounds(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = len.min(MAX_CHUNKS);
    let base = len / chunks;
    let rem = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Runs `work` over every task, distributing tasks to scoped worker
/// threads via an atomic cursor. Returns results in task order.
fn run_tasks<T, R, F>(tasks: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 || n <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| work(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let run_some = || {
        let mut done: Vec<(usize, R)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let task = slots[i]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task taken twice");
            done.push((i, work(i, task)));
        }
        done
    };

    let mut pairs: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers).map(|_| s.spawn(run_some)).collect();
        let mut all = run_some();
        for h in handles {
            // Re-raise worker panics with their original payload so
            // assertion messages from inside parallel closures survive.
            all.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
        all
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into the deterministic chunks of [`chunk_bounds`].
fn split_chunks<T>(mut items: Vec<T>) -> Vec<Vec<T>> {
    let bounds = chunk_bounds(items.len());
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    // Split from the back so each split_off is O(chunk).
    for &(start, _) in bounds.iter().rev() {
        chunks.push(items.split_off(start));
    }
    chunks.reverse();
    chunks
}

/// A parallel iterator over materialized items, mirroring rayon's
/// combinator names. Combinators execute eagerly: `map` and `fold` do
/// their work across the thread pool immediately; `reduce`, `sum`, and
/// `collect` merge the (already ordered) results on the caller.
pub struct ParIter<T> {
    items: Vec<T>,
    /// Set after `fold`: the items are at most [`MAX_CHUNKS`] per-chunk
    /// accumulators whose remaining per-item work (the `.map(|(acc, _)|
    /// acc)` projection of the canonical fold→map→reduce chain) is
    /// trivial, so later combinators run inline instead of paying a
    /// second round of thread spawns.
    post_fold: bool,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` in parallel, preserving order.
    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        if self.post_fold {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
                post_fold: true,
            };
        }
        let mapped = run_tasks(split_chunks(self.items), |_, chunk: Vec<T>| {
            chunk.into_iter().map(&f).collect::<Vec<O>>()
        });
        ParIter {
            items: mapped.into_iter().flatten().collect(),
            post_fold: false,
        }
    }

    /// Folds every item into per-chunk accumulators in parallel,
    /// yielding one accumulator per chunk (in chunk order). Chunk
    /// boundaries depend only on the input length, so the accumulator
    /// sequence is identical for any thread count.
    pub fn fold<A, Id, F>(self, identity: Id, fold_op: F) -> ParIter<A>
    where
        A: Send,
        Id: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let accs = run_tasks(split_chunks(self.items), |_, chunk: Vec<T>| {
            chunk.into_iter().fold(identity(), &fold_op)
        });
        ParIter {
            items: accs,
            post_fold: true,
        }
    }

    /// Reduces all items with `op`, starting from `identity()`, merging
    /// in ascending item order (deterministic).
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: FnOnce() -> T,
        Op: FnMut(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Sums all items in ascending order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collects all items in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_tasks(split_chunks(self.items), |_, chunk: Vec<T>| {
            for item in chunk {
                f(item);
            }
        });
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for everything
/// iterable, mirroring rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Materializes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            post_fold: false,
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

/// Immutable parallel chunk access for slices, mirroring
/// `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` items
    /// (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
            post_fold: false,
        }
    }
}

/// Mutable parallel chunk access for slices, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` items (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable sub-slices.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_tasks(self.chunks, |_, chunk| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumeratedParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Runs `f` on every `(chunk_index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_tasks(self.chunks, |i, chunk| f((i, chunk)));
    }
}

/// Runs two closures, potentially in parallel, returning both results
/// `(a(), b())`. Mirrors `rayon::join`.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn fold_map_reduce_matches_sequential() {
        let total: Vec<i64> = (0..100)
            .into_par_iter()
            .fold(
                || (vec![0i64; 2], 0usize),
                |(mut acc, scratch), x: i64| {
                    acc[(x % 2) as usize] += x;
                    (acc, scratch)
                },
            )
            .map(|(acc, _)| acc)
            .reduce(
                || vec![0; 2],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(total, vec![2450, 2500]);
    }

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<usize> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        // A non-associative float reduction: bitwise equality across
        // thread counts holds only because chunking is fixed.
        let run = || -> f64 {
            (0..10_000)
                .into_par_iter()
                .fold(|| 0.0f64, |acc, x: i64| acc + 1.0 / (1.0 + x as f64))
                .reduce(|| 0.0, |a, b| a + b)
        };
        set_num_threads(1);
        let seq = run();
        set_num_threads(7);
        let par = run();
        set_num_threads(0);
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i));
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn par_chunks_reads_in_order() {
        let data: Vec<u64> = (0..257).collect();
        let sums: Vec<u64> = data.par_chunks(16).map(|c| c.iter().sum::<u64>()).collect();
        let expect: Vec<u64> = data.chunks(16).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn join_returns_both_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 5, 63, 64, 65, 1000] {
            let bounds = chunk_bounds(len);
            let mut covered = 0;
            for (i, &(s, e)) in bounds.iter().enumerate() {
                assert_eq!(s, covered, "len {len} chunk {i}");
                assert!(e > s, "empty chunk at len {len}");
                covered = e;
            }
            assert_eq!(covered, len);
            assert!(bounds.len() <= MAX_CHUNKS);
        }
    }
}
