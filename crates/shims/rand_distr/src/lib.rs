//! Offline API-compatible subset of
//! [`rand_distr` 0.4](https://docs.rs/rand_distr/0.4): the
//! [`Distribution`] trait and the [`Normal`] distribution
//! (Box–Muller transform).

use rand::{Rng, RngCore};

/// Types that can be sampled given a source of randomness.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms → one standard normal deviate.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
