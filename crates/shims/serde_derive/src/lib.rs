//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! Nothing in this workspace serializes data yet; the derives exist so
//! that `#[derive(Serialize, Deserialize)]` annotations — kept on the
//! data types for the day a real serde is wired in — compile without
//! pulling the real proc-macro stack into an offline build.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
