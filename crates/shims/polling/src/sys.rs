//! The thin FFI layer: raw declarations of the readiness syscalls and
//! safe wrappers the rest of the crate (and nothing else) calls.
//!
//! Declared by hand against the kernel/libc ABI instead of pulling the
//! `libc` crate, keeping the workspace fully offline. Only the handful
//! of symbols the poller needs are bound.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_short, c_ulong, c_void};

use crate::{Event, Interest};

// ── ABI types ────────────────────────────────────────────────────────

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI packs it
/// there so 32- and 64-bit layouts match); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    #[link_name = "epoll_wait"]
    fn epoll_wait_raw(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    #[link_name = "poll"]
    fn poll_raw(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn interest_to_epoll(interest: Interest) -> u32 {
    let mut bits = EPOLLRDHUP;
    if interest.readable {
        bits |= EPOLLIN;
    }
    if interest.writable {
        bits |= EPOLLOUT;
    }
    bits
}

// ── epoll backend ────────────────────────────────────────────────────

pub(crate) fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes a flags integer and returns an fd or
    // -1; no pointers cross the boundary.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

fn epoll_ctl_op(
    epfd: RawFd,
    op: c_int,
    fd: RawFd,
    token: u64,
    interest: Interest,
) -> io::Result<()> {
    let mut event = EpollEvent {
        events: interest_to_epoll(interest),
        data: token,
    };
    // SAFETY: `event` outlives the call; the kernel copies it before
    // returning (DEL ignores the pointer entirely on modern kernels but
    // a valid one is passed anyway for pre-2.6.9 compatibility).
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
}

pub(crate) fn epoll_add(epfd: RawFd, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
    epoll_ctl_op(epfd, EPOLL_CTL_ADD, fd, token, interest)
}

pub(crate) fn epoll_mod(epfd: RawFd, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
    epoll_ctl_op(epfd, EPOLL_CTL_MOD, fd, token, interest)
}

pub(crate) fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl_op(epfd, EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
}

pub(crate) fn epoll_wait(epfd: RawFd, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
    const MAX_EVENTS: usize = 1024;
    let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    let n = loop {
        // SAFETY: `buf` is a valid writable array of MAX_EVENTS
        // epoll_event structs; the kernel writes at most that many.
        let ret =
            unsafe { epoll_wait_raw(epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
        match cvt(ret) {
            Ok(n) => break n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    for raw in &buf[..n] {
        // Copy out of the (possibly packed) struct before field reads.
        let (bits, data) = { (raw.events, raw.data) };
        out.push(Event {
            token: data as usize,
            // Error/hangup conditions are folded into readable: the
            // consumer's next read observes the error or EOF.
            readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
        });
    }
    Ok(n)
}

pub(crate) fn close_fd(fd: RawFd) {
    // SAFETY: plain close of an fd this crate created.
    let _ = unsafe { close(fd) };
}

// ── poll(2) fallback ─────────────────────────────────────────────────

pub(crate) fn poll_wait(
    registered: &std::collections::HashMap<RawFd, (usize, Interest)>,
    out: &mut Vec<Event>,
    timeout_ms: i32,
) -> io::Result<usize> {
    let mut fds: Vec<PollFd> = Vec::with_capacity(registered.len());
    let mut tokens: Vec<usize> = Vec::with_capacity(registered.len());
    for (&fd, &(token, interest)) in registered {
        let mut events: c_short = 0;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        tokens.push(token);
    }
    if fds.is_empty() {
        // poll(NULL, 0, t) is a valid sleep, but spare the syscall.
        if timeout_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
        }
        return Ok(0);
    }
    loop {
        // SAFETY: `fds` is a valid mutable pollfd array of fds.len()
        // entries for the duration of the call.
        let ret = unsafe { poll_raw(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        match cvt(ret) {
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    for (pfd, &token) in fds.iter().zip(&tokens) {
        if pfd.revents == 0 {
            continue;
        }
        out.push(Event {
            token,
            readable: pfd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
            writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
        });
    }
    Ok(out.len())
}

// ── signal → self-pipe bridge (see crate::signals) ───────────────────

pub(crate) const SIGINT: c_int = 2;
pub(crate) const SIGTERM: c_int = 15;

extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

pub(crate) fn install_handler(signum: c_int, handler: extern "C" fn(c_int)) {
    // SAFETY: registering a handler function whose address stays valid
    // for the process lifetime (a plain fn item).
    let _ = unsafe { signal(signum, handler as usize) };
}

pub(crate) fn write_byte(fd: RawFd) {
    let byte = b's';
    // SAFETY: write(2) of one byte from a live stack buffer;
    // async-signal-safe per POSIX.
    let _ = unsafe { write(fd, std::ptr::addr_of!(byte).cast(), 1) };
}
