//! Termination signals as readiness events: the classic self-pipe
//! trick, so an event loop can treat SIGINT/SIGTERM as one more
//! readable descriptor instead of re-inventing signal safety.
//!
//! [`notify_on_terminate`] stores the given descriptor in a static and
//! installs a handler that `write(2)`s a single byte to it — the only
//! async-signal-safe action taken. The caller registers the other half
//! of its socketpair/pipe with a [`crate::Poller`] and maps readiness
//! on it to graceful shutdown.

use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::sync::atomic::{AtomicI32, Ordering};

use crate::sys;

static NOTIFY_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_signal(_signum: c_int) {
    let fd = NOTIFY_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        sys::write_byte(fd);
    }
}

/// Routes SIGINT and SIGTERM to one byte written on `fd`.
///
/// Installs process-wide handlers; the last registered fd wins. The fd
/// must stay open for the process lifetime (leak the write half of the
/// pair — it is one descriptor).
pub fn notify_on_terminate(fd: RawFd) {
    NOTIFY_FD.store(fd, Ordering::Relaxed);
    sys::install_handler(sys::SIGINT, on_signal);
    sys::install_handler(sys::SIGTERM, on_signal);
}
