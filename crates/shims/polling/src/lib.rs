//! Readiness polling for the event-driven service layer: a small,
//! offline, API-compatible subset of the [`mio`](https://docs.rs/mio) /
//! [`polling`](https://docs.rs/polling) idea — register file
//! descriptors with a token and an interest set, then [`Poller::wait`]
//! for readiness events — implemented directly over the kernel's
//! readiness syscalls with no external crates.
//!
//! Two backends:
//!
//! * **epoll** (Linux, the default): `epoll_create1` / `epoll_ctl` /
//!   `epoll_wait` through thin FFI declarations. O(ready) per wait —
//!   the kernel hands back only the descriptors that changed state, so
//!   a loop holding 10k idle connections pays nothing for them.
//! * **poll** (portable fallback): `poll(2)` over the registered set,
//!   rebuilt per wait. O(registered) per call, but works on every
//!   POSIX system and exercises the exact same [`Event`] semantics —
//!   the service's tests run the loop under both backends.
//!
//! Selection: [`Poller::new`] uses epoll on Linux unless the
//! `POLLING_BACKEND=poll` environment variable forces the fallback;
//! [`Poller::with_backend`] picks explicitly.
//!
//! Both backends are **level-triggered**: a readable socket keeps
//! reporting readable until drained, so a consumer that processes only
//! part of a buffer is re-notified on the next wait — the forgiving
//! semantics an HTTP state machine wants (no lost-wakeup edge cases).
//!
//! This crate is the workspace's single home for `unsafe`: the FFI
//! declarations and call sites live here (plus the tiny async-signal
//! helper in [`signals`]), and every crate above it keeps the
//! workspace-wide `unsafe_code = "deny"`.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

mod sys;

pub mod signals;

/// What to watch a descriptor for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registered token plus what fired.
///
/// `error`/`hangup` conditions are reported with `readable = true` as
/// well (a read on the descriptor returns the error or EOF), matching
/// how level-triggered consumers actually handle them: read, observe
/// the result, close.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// Readable (includes peer hang-up and error conditions).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Which syscall family backs a [`Poller`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) waits.
    Epoll,
    /// Portable `poll(2)` — O(registered) waits.
    Poll,
}

enum Inner {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        registered: HashMap<RawFd, (usize, Interest)>,
    },
}

/// A readiness poller over raw file descriptors.
///
/// Register descriptors with [`register`](Poller::register) under a
/// caller-chosen token, then loop on [`wait`](Poller::wait). The poller
/// never owns the descriptors; callers close them (and should
/// [`deregister`](Poller::deregister) first — mandatory on the poll
/// backend, which has no kernel-side auto-cleanup).
pub struct Poller {
    inner: Inner,
}

impl Poller {
    /// A poller on the platform default backend (epoll on Linux),
    /// honoring `POLLING_BACKEND=poll` as a runtime override.
    pub fn new() -> io::Result<Self> {
        let force_poll = std::env::var("POLLING_BACKEND").is_ok_and(|v| v == "poll");
        if cfg!(target_os = "linux") && !force_poll {
            Self::with_backend(Backend::Epoll)
        } else {
            Self::with_backend(Backend::Poll)
        }
    }

    /// A poller on an explicit backend. `Backend::Epoll` fails off
    /// Linux.
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        let inner = match backend {
            Backend::Epoll => Inner::Epoll {
                epfd: sys::epoll_create()?,
            },
            Backend::Poll => Inner::Poll {
                registered: HashMap::new(),
            },
        };
        Ok(Self { inner })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.inner {
            Inner::Epoll { .. } => Backend::Epoll,
            Inner::Poll { .. } => Backend::Poll,
        }
    }

    /// Starts watching `fd` under `token`. One registration per
    /// descriptor; re-registering an fd is an error on epoll (use
    /// [`modify`](Poller::modify)).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            Inner::Epoll { epfd } => sys::epoll_add(*epfd, fd, token as u64, interest),
            Inner::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the token and/or interest of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            Inner::Epoll { epfd } => sys::epoll_mod(*epfd, fd, token as u64, interest),
            Inner::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stops watching a registered descriptor. Call before closing the
    /// fd: epoll would clean up on close anyway, the poll backend would
    /// not (a closed fd in its set reports POLLNVAL forever).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.inner {
            Inner::Epoll { epfd } => sys::epoll_del(*epfd, fd),
            Inner::Poll { registered } => {
                registered.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses (`None` = wait forever), appending the ready
    /// events to `events` (which is cleared first). Returns the number
    /// of events delivered; `0` means the timeout fired. `EINTR` is
    /// retried internally with the remaining timeout approximated by
    /// the full timeout (good enough for a loop that re-checks timers
    /// every wake).
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0 < t < 1ms timeout does not busy-spin.
            Some(t) => t
                .as_millis()
                .min(i32::MAX as u128)
                .max(u128::from(!t.is_zero())) as i32,
        };
        match &mut self.inner {
            Inner::Epoll { epfd } => sys::epoll_wait(*epfd, events, timeout_ms),
            Inner::Poll { registered } => sys::poll_wait(registered, events, timeout_ms),
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Inner::Epoll { epfd } = self.inner {
            sys::close_fd(epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller
                .register(listener.as_raw_fd(), 7, Interest::READABLE)
                .unwrap();

            let mut events = Vec::new();
            // Nothing pending: a short wait times out with no events.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: idle listener reported ready");

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            poller.deregister(listener.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn stream_reports_writable_then_readable_and_hangup() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(client.as_raw_fd(), 1, Interest::BOTH)
                .unwrap();

            // A fresh connected socket is writable but not readable.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.writable));
            assert!(!events.iter().any(|e| e.readable), "{backend:?}");

            // Peer data flips it readable (level-triggered: it stays
            // readable across waits until drained).
            (&server_side).write_all(b"ping").unwrap();
            for _ in 0..2 {
                poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .unwrap();
                assert!(events.iter().any(|e| e.token == 1 && e.readable));
            }
            let mut buf = [0u8; 16];
            assert_eq!((&client).read(&mut buf).unwrap(), 4);

            // Peer hang-up surfaces as readable (read returns 0).
            drop(server_side);
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
            assert_eq!((&client).read(&mut buf).unwrap(), 0, "{backend:?}");
            poller.deregister(client.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn modify_switches_interest() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(client.as_raw_fd(), 3, Interest::WRITABLE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 3 && e.writable));

            // Writable-only socket with nothing to read: after dropping
            // write interest, a wait times out.
            poller
                .modify(client.as_raw_fd(), 4, Interest::READABLE)
                .unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: read interest fired without data");
            poller.deregister(client.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn unix_pair_works_as_a_waker() {
        // The service wakes its loop by writing one byte to a
        // socketpair half from worker threads; prove the pattern here.
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair().unwrap();
            wake_rx.set_nonblocking(true).unwrap();
            poller
                .register(wake_rx.as_raw_fd(), 9, Interest::READABLE)
                .unwrap();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                (&wake_tx).write_all(b"w").unwrap();
                wake_tx
            });
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 9);
            let mut drain = [0u8; 8];
            assert_eq!((&wake_rx).read(&mut drain).unwrap(), 1);
            drop(handle.join().unwrap());
            poller.deregister(wake_rx.as_raw_fd()).unwrap();
        }
    }
}
