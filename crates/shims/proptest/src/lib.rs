//! Offline API-compatible subset of
//! [`proptest`](https://docs.rs/proptest): the [`proptest!`] macro,
//! the [`Strategy`] trait with [`Strategy::prop_map`], range / tuple /
//! [`any`] / [`collection::vec`] strategies, `prop_assert*!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test stream (seeded from the test's module path
//! and case index), and failing inputs are **not shrunk** — the first
//! failing case panics with the ordinary assertion message. Failures
//! therefore reproduce exactly across runs and machines.

/// Deterministic generator handed to strategies by the [`proptest!`]
/// macro (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream for `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span.saturating_add(1)) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Skips the current generated case unless the condition holds.
///
/// Unlike the real proptest, skipped cases are not replaced by fresh
/// ones — the test simply runs fewer cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])+ fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng); )*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` that runs its body over `cases` generated
/// inputs (no shrinking; deterministic per-test streams).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..10, any::<u64>()).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.75, z in 2u32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((2..=5).contains(&z));
        }

        #[test]
        fn mapped_tuples_generate((a, _b) in pair(), flag in any::<bool>()) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a, 1);
            let _ = flag;
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use crate::TestRng;
}
