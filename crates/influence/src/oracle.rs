//! The group-aware RIS (reverse influence sampling) oracle.
//!
//! [`RisOracle`] materializes a stratified collection of RR sets — at
//! least [`RisConfig::min_per_group`] per group, the rest allocated
//! proportionally to group sizes — and exposes the induced weighted
//! coverage problem as a [`UtilitySystem`]:
//!
//! * group sum estimate: `σ_i(S) = m_i · (covered group-i RR sets)/r_i`,
//!   an unbiased estimator of `Σ_{u∈U_i} P_u(S)`;
//! * marginal gains via an inverted index node → RR sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::{Graph, Groups};

use crate::models::DiffusionModel;
use crate::rr::{sample_rr, RrScratch};

/// RR-sampling configuration.
#[derive(Clone, Debug)]
pub struct RisConfig {
    /// Total number of RR sets (before per-group floors).
    pub num_rr: usize,
    /// Minimum RR sets per group (stratification floor).
    pub min_per_group: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl RisConfig {
    /// A sensible default: `num_rr` total, floor 50 per group.
    pub fn new(num_rr: usize, seed: u64) -> Self {
        Self {
            num_rr,
            min_per_group: 50,
            seed,
        }
    }
}

/// Per-RR-set RNG seed: a SplitMix64-style mix of the oracle seed and
/// the RR index, so set `i` samples from its own stream regardless of
/// which worker thread draws it.
fn rr_stream_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Weighted RR-set coverage oracle for group-fair influence maximization.
#[derive(Clone, Debug)]
pub struct RisOracle {
    n: usize,
    m: usize,
    group_sizes: Vec<usize>,
    /// Group of each RR set's root.
    rr_group: Vec<u32>,
    /// `m_i / r_i` per group: converting covered counts to group sums.
    weight: Vec<f64>,
    /// Inverted index: CSR of node → RR-set ids containing it.
    idx_offsets: Vec<usize>,
    idx_rr: Vec<u32>,
    num_rr: usize,
}

impl RisOracle {
    /// Samples RR sets under `model` with roots stratified by `groups`.
    pub fn generate(
        graph: &Graph,
        model: DiffusionModel,
        groups: &Groups,
        cfg: &RisConfig,
    ) -> Self {
        assert_eq!(graph.num_nodes(), groups.num_users());
        let n = graph.num_nodes();
        let m = groups.num_users();
        let c = groups.num_groups();
        let sizes = groups.sizes().to_vec();

        // Per-group allocation: proportional with a floor.
        let alloc: Vec<usize> = sizes
            .iter()
            .map(|&mi| {
                let prop = (cfg.num_rr as f64 * mi as f64 / m as f64).round() as usize;
                prop.max(cfg.min_per_group).max(1)
            })
            .collect();

        // Users bucketed per group for root sampling.
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
        for u in 0..m {
            members[groups.group_of(u) as usize].push(u as NodeId);
        }

        let total_rr: usize = alloc.iter().sum();
        let mut rr_group: Vec<u32> = Vec::with_capacity(total_rr);
        for (gi, &count) in alloc.iter().enumerate() {
            rr_group.extend(std::iter::repeat(gi as u32).take(count));
        }

        // Sample RR sets batched across worker threads. Each RR set `i`
        // derives its own RNG from `(seed, i)` — never from a shared
        // sequential stream — so the sample is identical for any thread
        // count; chunk boundaries depend only on `total_rr`, and the
        // ordered collect reassembles sets in RR-id order. One
        // `RrScratch` (an `n`-sized visited buffer) lives per in-flight
        // chunk — created and dropped inside the task — so peak scratch
        // memory scales with the worker count, not the chunk count.
        let ids: Vec<u32> = (0..total_rr as u32).collect();
        let chunk_size = total_rr.div_ceil(64).max(1);
        let sampled: Vec<Vec<Vec<NodeId>>> = ids
            .par_chunks(chunk_size)
            .map(|chunk| {
                let mut scratch = RrScratch::new(n);
                chunk
                    .iter()
                    .map(|&i| {
                        let mut rng = StdRng::seed_from_u64(rr_stream_seed(cfg.seed, i as usize));
                        let bucket = &members[rr_group[i as usize] as usize];
                        let root = bucket[rng.gen_range(0..bucket.len())];
                        sample_rr(graph, model, root, &mut rng, &mut scratch)
                    })
                    .collect()
            })
            .collect();
        let rr_sets: Vec<Vec<NodeId>> = sampled.into_iter().flatten().collect();

        // Build the inverted index with counting sort over nodes.
        let mut pairs: Vec<(NodeId, u32)> = Vec::new();
        for (rr_id, rr) in rr_sets.iter().enumerate() {
            for &node in rr {
                pairs.push((node, rr_id as u32));
            }
        }

        let mut idx_offsets = vec![0usize; n + 1];
        for &(node, _) in &pairs {
            idx_offsets[node as usize + 1] += 1;
        }
        for i in 0..n {
            idx_offsets[i + 1] += idx_offsets[i];
        }
        let mut cursor = idx_offsets.clone();
        let mut idx_rr = vec![0u32; pairs.len()];
        for &(node, rr) in &pairs {
            idx_rr[cursor[node as usize]] = rr;
            cursor[node as usize] += 1;
        }

        let weight = sizes
            .iter()
            .zip(&alloc)
            .map(|(&mi, &ri)| mi as f64 / ri as f64)
            .collect();

        Self {
            n,
            m,
            group_sizes: sizes,
            rr_group,
            weight,
            idx_offsets,
            idx_rr,
            num_rr: total_rr,
        }
    }

    /// Number of materialized RR sets.
    pub fn num_rr_sets(&self) -> usize {
        self.num_rr
    }

    /// RR sets containing `node`.
    #[inline]
    fn rr_of(&self, node: usize) -> &[u32] {
        &self.idx_rr[self.idx_offsets[node]..self.idx_offsets[node + 1]]
    }

    /// Estimated overall spread (expected influenced users) of `items`.
    pub fn estimated_spread(&self, items: &[ItemId]) -> f64 {
        let eval = fair_submod_core::metrics::evaluate(self, items);
        eval.f * self.m as f64
    }
}

impl UtilitySystem for RisOracle {
    /// Covered flag per RR set.
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.n
    }

    fn num_users(&self) -> usize {
        self.m
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.num_rr]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &rr in self.rr_of(item as usize) {
            if !inner[rr as usize] {
                let gi = self.rr_group[rr as usize] as usize;
                out[gi] += self.weight[gi];
            }
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &rr in self.rr_of(item as usize) {
            inner[rr as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::monte_carlo_evaluate;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_graphs::generators::sbm;
    use fair_submod_graphs::GraphBuilder;

    #[test]
    fn oracle_shape_and_allocation() {
        let g = sbm(&[20, 80], 0.2, 0.05, 3);
        let groups = Groups::from_ratios(100, &[("a", 0.2), ("b", 0.8)], 1);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.1),
            &groups,
            &RisConfig::new(1000, 7),
        );
        assert_eq!(oracle.num_items(), 100);
        assert_eq!(oracle.num_users(), 100);
        assert!(oracle.num_rr_sets() >= 1000);
    }

    #[test]
    fn seeding_everything_covers_every_rr_set() {
        let g = sbm(&[30, 30], 0.2, 0.1, 5);
        let groups = Groups::from_ratios(60, &[("a", 0.5), ("b", 0.5)], 2);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.2),
            &groups,
            &RisConfig::new(500, 11),
        );
        let all: Vec<ItemId> = (0..60).collect();
        let e = evaluate(&oracle, &all);
        // Every RR set contains its root, so seeding V covers all of them.
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ris_estimate_agrees_with_monte_carlo() {
        // Closed-form check on a path: 0 → 1 → 2, p = 0.5, seed {0}:
        // P = [1, 0.5, 0.25] → f = 7/12, groups {0,1} vs {2}: g = 0.25.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let model = DiffusionModel::ic(0.5);
        let oracle = RisOracle::generate(&g, model, &groups, &RisConfig::new(60_000, 13));
        let ris = evaluate(&oracle, &[0]);
        let mc = monte_carlo_evaluate(&g, model, &groups, &[0], 60_000, 17);
        assert!((ris.f - mc.f).abs() < 0.02, "ris {} mc {}", ris.f, mc.f);
        assert!((ris.g - mc.g).abs() < 0.02, "ris {} mc {}", ris.g, mc.g);
        assert!((ris.g - 0.25).abs() < 0.02);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let g = sbm(&[40, 40], 0.2, 0.05, 9);
        let groups = Groups::from_ratios(80, &[("a", 0.5), ("b", 0.5)], 4);
        let cfg = RisConfig::new(2_000, 23);
        rayon::set_num_threads(1);
        let seq = RisOracle::generate(&g, DiffusionModel::ic(0.15), &groups, &cfg);
        rayon::set_num_threads(6);
        let par = RisOracle::generate(&g, DiffusionModel::ic(0.15), &groups, &cfg);
        rayon::set_num_threads(0);
        assert_eq!(seq.rr_group, par.rr_group);
        assert_eq!(seq.idx_offsets, par.idx_offsets);
        assert_eq!(seq.idx_rr, par.idx_rr);
        assert_eq!(seq.weight, par.weight);
    }

    #[test]
    fn greedy_on_ris_picks_influential_seeds() {
        use fair_submod_core::aggregate::MeanUtility;
        use fair_submod_core::algorithms::greedy::{greedy, GreedyConfig};
        // A hub (node 0) pointing at everyone should be picked first.
        let mut b = GraphBuilder::new(50, true);
        for v in 1..50 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let groups = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 3);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.3),
            &groups,
            &RisConfig::new(3000, 19),
        );
        let f = MeanUtility::new(oracle.num_users());
        let run = greedy(&oracle, &f, &GreedyConfig::lazy(1));
        assert_eq!(run.items, vec![0]);
    }
}
