//! The group-aware RIS (reverse influence sampling) oracle.
//!
//! [`RisOracle`] materializes a stratified collection of RR sets — at
//! least [`RisConfig::min_per_group`] per group, the rest allocated
//! proportionally to group sizes — and exposes the induced weighted
//! coverage problem as a [`UtilitySystem`]:
//!
//! * group sum estimate: `σ_i(S) = m_i · (covered group-i RR sets)/r_i`,
//!   an unbiased estimator of `Σ_{u∈U_i} P_u(S)`;
//! * marginal gains from **per-item uncovered-coverage counters**
//!   maintained decrementally (DESIGN.md §9): `Δ_i(v|S) = w_i ·
//!   #{uncovered group-i RR sets containing v}`, so a gain query is `c`
//!   counter reads and an `apply` touches only the nodes of the RR sets
//!   it newly covers — each RR set is drained exactly once per run,
//!   making a full greedy round loop near-linear in the arena size
//!   instead of rescan-quadratic. [`RisOracle::rescan_reference`] keeps
//!   the index-scanning kernel for equivalence tests and `perfbase`;
//! * a **compressed arena** (DESIGN.md §11): each RR set's node list is
//!   sorted, gap-encoded, and varint-packed (`RrArena`), so the
//!   dominant resident structure shrinks ~2–4× while `apply` decodes on
//!   scan through an 8-word block cursor.
//!   [`RisOracle::uncompressed_reference`] keeps the flat `u32` arena
//!   kernel as the bit-identity twin.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use fair_submod_core::bitset::FixedBitset;
use fair_submod_core::engine::{validate_shard_members, validate_shard_partition, SolverError};
use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::{CsrSlice, Graph, Groups};

use crate::models::{DiffusionModel, EdgeWeighting};
use crate::rr::{sample_rr_into, sample_rr_masked_into, RrInMasks, RrScratch};

/// RR-sampling configuration.
#[derive(Clone, Debug)]
pub struct RisConfig {
    /// Total number of RR sets (before per-group floors).
    pub num_rr: usize,
    /// Minimum RR sets per group (stratification floor).
    pub min_per_group: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl RisConfig {
    /// A sensible default: `num_rr` total, floor 50 per group.
    pub fn new(num_rr: usize, seed: u64) -> Self {
        Self {
            num_rr,
            min_per_group: 50,
            seed,
        }
    }
}

/// Per-RR-set RNG seed: a SplitMix64-style mix of the oracle seed and
/// the RR index, so set `i` samples from its own stream regardless of
/// which worker thread draws it.
fn rr_stream_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Delta + LEB128 compressed RR-set arena (DESIGN.md §11).
///
/// Each set's node list is stored sorted ascending and gap-encoded: the
/// first id verbatim, every later id as its distance to the predecessor,
/// each gap packed as a little-endian base-128 varint into one shared
/// byte buffer. Sorting is semantically free — the arena is only ever
/// consumed by commutative counter decrements ([`RisOracle::apply`]) and
/// by member filtering, neither of which observes within-set order — and
/// it is what makes the gaps small: a dense RR set over a 2^20-node
/// graph averages gaps below 2^7, so most nodes cost one byte instead of
/// four.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RrArena {
    /// Byte offset of set `i`'s encoded span in `bytes` (`num_sets + 1`
    /// entries, seeded with 0).
    offsets: Vec<usize>,
    /// The shared gap-varint payload.
    bytes: Vec<u8>,
    /// Total decoded nodes across all sets (the uncompressed length).
    total_nodes: usize,
}

impl RrArena {
    fn with_capacity(sets: usize, nodes_hint: usize) -> Self {
        let mut offsets = Vec::with_capacity(sets + 1);
        offsets.push(0);
        Self {
            offsets,
            bytes: Vec::with_capacity(nodes_hint),
            total_nodes: 0,
        }
    }

    /// Appends one set. `sorted` must be strictly ascending (RR sets
    /// hold unique nodes), which keeps every gap after the first ≥ 1.
    fn push_set(&mut self, sorted: &[u32]) {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut prev = 0u32;
        for &v in sorted {
            let mut delta = v - prev;
            prev = v;
            loop {
                let byte = (delta & 0x7F) as u8;
                delta >>= 7;
                if delta == 0 {
                    self.bytes.push(byte);
                    break;
                }
                self.bytes.push(byte | 0x80);
            }
        }
        self.offsets.push(self.bytes.len());
        self.total_nodes += sorted.len();
    }

    fn num_sets(&self) -> usize {
        self.offsets.len() - 1
    }

    fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Encoded payload size in bytes (the uncompressed equivalent is
    /// `4 · total_nodes`).
    fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Resident footprint of the arena itself (payload + offsets).
    fn approx_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Decode-on-scan over set `rr`: gaps are decoded into an 8-word
    /// block which is then drained through `f`, so the varint state
    /// machine and the consumer loop stay separate (the block body
    /// vectorizes; the decoder carries the running prefix sum).
    #[inline]
    fn for_each(&self, rr: usize, mut f: impl FnMut(u32)) {
        let bytes = &self.bytes[self.offsets[rr]..self.offsets[rr + 1]];
        let mut block = [0u32; 8];
        let mut prev = 0u32;
        let mut p = 0usize;
        while p < bytes.len() {
            let mut filled = 0usize;
            while filled < 8 && p < bytes.len() {
                let mut delta = 0u32;
                let mut shift = 0u32;
                loop {
                    let b = bytes[p];
                    p += 1;
                    delta |= ((b & 0x7F) as u32) << shift;
                    if b & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                }
                prev = prev.wrapping_add(delta);
                block[filled] = prev;
                filled += 1;
            }
            for &v in &block[..filled] {
                f(v);
            }
        }
    }

    /// Appends set `rr`'s decoded (ascending) node list to `out`.
    fn decode_into(&self, rr: usize, out: &mut Vec<u32>) {
        self.for_each(rr, |v| out.push(v));
    }
}

/// Weighted RR-set coverage oracle for group-fair influence maximization.
#[derive(Clone, Debug)]
pub struct RisOracle {
    n: usize,
    m: usize,
    group_sizes: Vec<usize>,
    /// Group of each RR set's root. Shared (not cloned) across every
    /// shard restriction — RR ids stay global, so one copy serves all.
    rr_group: Arc<[u32]>,
    /// `m_i / r_i` per group: converting covered counts to group sums.
    weight: Vec<f64>,
    /// Compressed RR-set arena: set `i`'s nodes, sorted ascending,
    /// delta + varint packed (DESIGN.md §11). Shared behind an `Arc`
    /// with every restricted view.
    arena: Arc<RrArena>,
    /// Inverted index: CSR of node → RR-set ids containing it. Shared
    /// with every restricted view.
    idx_offsets: Arc<Vec<usize>>,
    idx_rr: Arc<Vec<u32>>,
    /// Uncovered-coverage counters at `S = ∅`: `base_counts[v·c + g]` =
    /// number of group-`g` RR sets containing node `v`. Shared with
    /// every restricted view; [`RisOracle::init_inner`] copies out the
    /// rows a solve actually owns.
    base_counts: Arc<Vec<u32>>,
    num_rr: usize,
    /// `Some(members)` marks this oracle as a zero-copy restriction
    /// (DESIGN.md §8): local item `j` is central item `members[j]`
    /// (ascending), and the arena/index/counters above belong to the
    /// root oracle. `None` for the root itself.
    members: Option<Arc<Vec<ItemId>>>,
}

/// Wall-clock split of [`RisOracle::generate_profiled`]: where oracle
/// construction spends its time.
#[derive(Clone, Copy, Debug, Default)]
pub struct RisBuildPhases {
    /// RR-set sampling (the parallel reverse-BFS sweep).
    pub sample_seconds: f64,
    /// Inverted-index + base-counter construction.
    pub index_seconds: f64,
    /// Span sort + delta/varint packing of the compressed arena.
    pub compress_seconds: f64,
}

impl RisOracle {
    /// Samples RR sets under `model` with roots stratified by `groups`.
    pub fn generate(
        graph: &Graph,
        model: DiffusionModel,
        groups: &Groups,
        cfg: &RisConfig,
    ) -> Self {
        Self::generate_profiled(graph, model, groups, cfg).0
    }

    /// [`RisOracle::generate`] with per-phase wall-clock timings, the
    /// measurement hook behind `perfbase --profile`.
    pub fn generate_profiled(
        graph: &Graph,
        model: DiffusionModel,
        groups: &Groups,
        cfg: &RisConfig,
    ) -> (Self, RisBuildPhases) {
        assert_eq!(graph.num_nodes(), groups.num_users());
        let n = graph.num_nodes();
        let m = groups.num_users();
        let c = groups.num_groups();
        let sizes = groups.sizes().to_vec();

        // Per-group allocation: proportional with a floor.
        let alloc: Vec<usize> = sizes
            .iter()
            .map(|&mi| {
                let prop = (cfg.num_rr as f64 * mi as f64 / m as f64).round() as usize;
                prop.max(cfg.min_per_group).max(1)
            })
            .collect();

        // Users bucketed per group for root sampling.
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
        for u in 0..m {
            members[groups.group_of(u) as usize].push(u as NodeId);
        }

        let total_rr: usize = alloc.iter().sum();
        let mut rr_group: Vec<u32> = Vec::with_capacity(total_rr);
        for (gi, &count) in alloc.iter().enumerate() {
            rr_group.extend(std::iter::repeat(gi as u32).take(count));
        }

        // Sample RR sets batched across worker threads. Each RR set `i`
        // derives its own RNG from `(seed, i)` — never from a shared
        // sequential stream — so the sample is identical for any thread
        // count; chunk boundaries depend only on `total_rr`, and the
        // ordered collect reassembles sets in RR-id order. One
        // `RrScratch` (an `n`-sized visited buffer) and one node arena
        // live per in-flight chunk — created and dropped inside the task
        // — so each worker appends every sampled set into a single
        // growing buffer instead of allocating a `Vec` per RR set, and
        // peak scratch memory scales with the worker count, not the
        // chunk count.
        let t0 = Instant::now();
        // Small uniform-`p` IC graphs get the mask-accelerated sampler
        // (same RNG stream, same sets — see `sample_rr_masked_into`);
        // the shared read-only mask table is built once, outside the
        // parallel loop.
        let masks = RrInMasks::applies(graph, model).then(|| RrInMasks::build(graph));
        let uniform_p = match model {
            DiffusionModel::IndependentCascade(EdgeWeighting::Uniform(p)) => p,
            _ => 0.0,
        };
        let ids: Vec<u32> = (0..total_rr as u32).collect();
        let chunk_size = total_rr.div_ceil(64).max(1);
        let sampled: Vec<(Vec<NodeId>, Vec<u32>)> = ids
            .par_chunks(chunk_size)
            .map(|chunk| {
                let mut scratch = RrScratch::new(n);
                let mut arena: Vec<NodeId> = Vec::with_capacity(chunk.len() * 8);
                let mut lens: Vec<u32> = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let mut rng = StdRng::seed_from_u64(rr_stream_seed(cfg.seed, i as usize));
                    let bucket = &members[rr_group[i as usize] as usize];
                    let root = bucket[rng.gen_range(0..bucket.len())];
                    let len = match &masks {
                        Some(m) => sample_rr_masked_into(
                            m,
                            uniform_p,
                            root,
                            &mut rng,
                            &mut scratch,
                            &mut arena,
                        ),
                        None => {
                            sample_rr_into(graph, model, root, &mut rng, &mut scratch, &mut arena)
                        }
                    };
                    lens.push(len as u32);
                }
                (arena, lens)
            })
            .collect();
        let sample_seconds = t0.elapsed().as_secs_f64();

        // Splice the per-chunk arenas (already in RR-id order) into one
        // flat arena with offsets, then invert it into the node → RR-set
        // index by counting sort — no per-pair materialization: the
        // counting pass reads the arena directly.
        let t1 = Instant::now();
        let total_nodes: usize = sampled.iter().map(|(a, _)| a.len()).sum();
        let mut rr_nodes: Vec<u32> = Vec::with_capacity(total_nodes);
        let mut rr_offsets: Vec<usize> = Vec::with_capacity(total_rr + 1);
        rr_offsets.push(0);
        for (arena, lens) in &sampled {
            rr_nodes.extend_from_slice(arena);
            for &len in lens {
                let last = *rr_offsets.last().expect("seeded with 0");
                rr_offsets.push(last + len as usize);
            }
        }
        drop(sampled);

        let mut idx_offsets = vec![0usize; n + 1];
        for &node in &rr_nodes {
            idx_offsets[node as usize + 1] += 1;
        }
        for i in 0..n {
            idx_offsets[i + 1] += idx_offsets[i];
        }
        let mut cursor = idx_offsets.clone();
        let mut idx_rr = vec![0u32; rr_nodes.len()];
        let mut base_counts = vec![0u32; n * c];
        for rr_id in 0..total_rr {
            let gi = rr_group[rr_id] as usize;
            for &node in &rr_nodes[rr_offsets[rr_id]..rr_offsets[rr_id + 1]] {
                idx_rr[cursor[node as usize]] = rr_id as u32;
                cursor[node as usize] += 1;
                base_counts[node as usize * c + gi] += 1;
            }
        }
        let index_seconds = t1.elapsed().as_secs_f64();

        // Compress: sort each span (order inside a set is unobservable —
        // `apply` decrements commute and the index is already built) and
        // gap/varint-pack the sorted lists. The flat `u32` arena is
        // dropped here; [`RisOracle::uncompressed_reference`] can decode
        // it back for the bit-identity twin.
        let t2 = Instant::now();
        let mut arena = RrArena::with_capacity(total_rr, rr_nodes.len());
        for rr in 0..total_rr {
            let span = &mut rr_nodes[rr_offsets[rr]..rr_offsets[rr + 1]];
            span.sort_unstable();
            arena.push_set(span);
        }
        drop(rr_nodes);
        debug_assert_eq!(arena.num_sets(), total_rr);
        let compress_seconds = t2.elapsed().as_secs_f64();

        let weight = sizes
            .iter()
            .zip(&alloc)
            .map(|(&mi, &ri)| mi as f64 / ri as f64)
            .collect();

        (
            Self {
                n,
                m,
                group_sizes: sizes,
                rr_group: rr_group.into(),
                weight,
                arena: Arc::new(arena),
                idx_offsets: Arc::new(idx_offsets),
                idx_rr: Arc::new(idx_rr),
                base_counts: Arc::new(base_counts),
                num_rr: total_rr,
                members: None,
            },
            RisBuildPhases {
                sample_seconds,
                index_seconds,
                compress_seconds,
            },
        )
    }

    /// [`RisOracle::generate`] from per-shard CSR slices instead of a
    /// resident [`Graph`] — the slice-backed build path of the sharded
    /// tier. Reverse-reachable sampling walks *in*-neighbors across
    /// shard boundaries, so the slices (which jointly carry every
    /// adjacency row) are first reassembled via [`Graph::from_slices`];
    /// because slice rows are bitwise equal to the rows of the graph
    /// they were cut from, the reassembled CSR — and therefore every RR
    /// set, sampled from its own per-index seeded stream — is
    /// bit-identical to a build from the original graph.
    pub fn generate_from_slices(
        slices: &[CsrSlice],
        num_nodes: usize,
        directed: bool,
        model: DiffusionModel,
        groups: &Groups,
        cfg: &RisConfig,
    ) -> Self {
        let graph = Graph::from_slices(slices, num_nodes, directed);
        Self::generate(&graph, model, groups, cfg)
    }

    /// Restricts the oracle to an ascending member list, producing a
    /// zero-copy shard **view** whose local item `j` is central item
    /// `members[j]`: the compressed arena, inverted index, and base
    /// counters stay shared behind `Arc`s (RR-set ids are global, so
    /// covered-set semantics are shared across shards), and only the
    /// member list itself is materialized. A restrict therefore costs
    /// O(|members|) time and memory — never O(n) or O(num_rr) — which
    /// is what keeps shard fan-out cheaper than a centralized solve.
    ///
    /// This is the DESIGN.md §8 row-separability construction for RIS:
    /// a gain query reads only the member's own counter row (gathered
    /// into the view's [`RisInner`] at `init_inner`), and an `apply`
    /// drains globally-id'd RR sets, decrementing member rows only —
    /// non-members are filtered by binary search over the ascending
    /// member list, and since decrements commute the filtering is
    /// unobservable to any member gain. Restricted gains are therefore
    /// **bit-identical** to centralized gains for every member under
    /// any shared apply sequence. Malformed member lists (empty,
    /// unsorted, duplicated, out of range) are typed rejections, never
    /// panics; the row-separability invariant itself — counter rows
    /// consistent with each member's index degree — is structural
    /// (both sides are built by the same counting pass over the
    /// sample) and is asserted in debug builds. Restricting a view
    /// composes the member lists, so the result always chains directly
    /// to the root oracle.
    pub fn restrict(&self, members: &[ItemId]) -> Result<RisOracle, SolverError> {
        validate_shard_members("RisOracle::restrict", self.n, members)?;
        // Compose through an existing view: local ids chain to central
        // ids (ascending in, ascending out — `members` is ascending and
        // so is the view's own list).
        let central: Vec<ItemId> = match &self.members {
            None => members.to_vec(),
            Some(own) => members.iter().map(|&j| own[j as usize]).collect(),
        };
        // §8 row-separability invariant: each member's counter row must
        // total exactly its inverted-index degree — the structural fact
        // that makes shard gains a verbatim read of central rows. Both
        // sides come from the same counting pass in `generate`, so this
        // is a debug assertion rather than a release-path scan, keeping
        // a release restrict a pure O(|members|) id translation.
        #[cfg(debug_assertions)]
        {
            let c = self.weight.len();
            for &v in &central {
                let v = v as usize;
                let degree = self.idx_offsets[v + 1] - self.idx_offsets[v];
                let total: u32 = self.base_counts[v * c..(v + 1) * c].iter().sum();
                debug_assert_eq!(
                    total as usize, degree,
                    "row-separability violated at member {v}"
                );
            }
        }
        Ok(RisOracle {
            n: members.len(),
            m: self.m,
            group_sizes: self.group_sizes.clone(),
            rr_group: Arc::clone(&self.rr_group),
            weight: self.weight.clone(),
            arena: Arc::clone(&self.arena),
            idx_offsets: Arc::clone(&self.idx_offsets),
            idx_rr: Arc::clone(&self.idx_rr),
            base_counts: Arc::clone(&self.base_counts),
            num_rr: self.num_rr,
            members: Some(Arc::new(central)),
        })
    }

    /// Restricts the oracle to every shard of an exact partition of the
    /// ground set, building the shard oracles in parallel on the rayon
    /// pool. Empty, overlapping, unsorted, or out-of-range partitions
    /// are typed [`SolverError::InvalidParams`] rejections.
    pub fn partition_shards(
        &self,
        partition: &[Vec<ItemId>],
    ) -> Result<Vec<RisOracle>, SolverError> {
        validate_shard_partition("RisOracle::partition_shards", self.n, partition)?;
        partition
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|members| self.restrict(members))
            .collect::<Vec<Result<RisOracle, SolverError>>>()
            .into_iter()
            .collect()
    }

    /// Number of materialized RR sets.
    pub fn num_rr_sets(&self) -> usize {
        self.num_rr
    }

    /// Total nodes across all RR sets (the decoded arena length). A
    /// restricted view counts its members' incidences only, so the
    /// shard lengths of an exact partition sum to the central length.
    pub fn arena_len(&self) -> usize {
        match &self.members {
            None => self.arena.total_nodes(),
            Some(ms) => ms
                .iter()
                .map(|&v| self.idx_offsets[v as usize + 1] - self.idx_offsets[v as usize])
                .sum(),
        }
    }

    /// Encoded size of the compressed arena payload in bytes. For the
    /// root oracle the uncompressed equivalent is `4 · arena_len()`;
    /// views report the shared payload they pin, not a per-shard cut.
    pub fn arena_bytes(&self) -> usize {
        self.arena.encoded_bytes()
    }

    /// Approximate resident footprint of the oracle in bytes: the
    /// compressed arena, the inverted index, the base counters, and the
    /// per-set/per-group metadata. Drives the service's byte-budgeted
    /// instance store (DESIGN.md §11). A restricted view counts the
    /// shared structures it keeps alive in full — deliberately
    /// conservative for budgeting, since dropping the view may or may
    /// not free them.
    pub fn approx_bytes(&self) -> usize {
        let usz = std::mem::size_of::<usize>();
        self.arena.approx_bytes()
            + self.idx_offsets.len() * usz
            + self.idx_rr.len() * 4
            + self.base_counts.len() * 4
            + self.rr_group.len() * 4
            + (self.weight.len() + self.group_sizes.len()) * 8
            + self.members.as_ref().map_or(0, |ms| ms.len() * 4)
    }

    /// Central id of local item `j` (identity for the root oracle).
    #[inline]
    fn central_of(&self, j: usize) -> usize {
        match &self.members {
            None => j,
            Some(ms) => ms[j] as usize,
        }
    }

    /// RR sets containing local item `item` (its central row).
    #[inline]
    fn rr_of(&self, item: usize) -> &[u32] {
        let v = self.central_of(item);
        &self.idx_rr[self.idx_offsets[v]..self.idx_offsets[v + 1]]
    }

    /// Estimated overall spread (expected influenced users) of `items`.
    pub fn estimated_spread(&self, items: &[ItemId]) -> f64 {
        let eval = fair_submod_core::metrics::evaluate(self, items);
        eval.f * self.m as f64
    }

    /// The index-scanning kernel over the same RR sample: every gain
    /// query walks the item's inverted-index slice instead of reading
    /// counters. Bit-identical to the incremental oracle (both compute
    /// count-then-multiply per group) and kept as the "before" side of
    /// the `ris_incremental_vs_rescan` perfbase scenario and the
    /// incremental-equivalence property tests.
    pub fn rescan_reference(&self) -> RisRescanOracle {
        RisRescanOracle(self.clone())
    }

    /// The PR-7 flat-arena kernel over the same RR sample: identical
    /// inverted index and counters, but `apply` walks an uncompressed
    /// `u32` arena instead of decoding varint gaps. Decrements commute,
    /// so both kernels leave bit-identical counters after every apply —
    /// the "before" side of the `rr_arena_compressed` perfbase scenario
    /// and the reference twin of `tests/compressed_equivalence.rs`.
    pub fn uncompressed_reference(&self) -> RisUncompressedOracle {
        let mut rr_offsets = Vec::with_capacity(self.num_rr + 1);
        rr_offsets.push(0usize);
        let mut rr_nodes = Vec::with_capacity(self.arena_len());
        for rr in 0..self.num_rr {
            match &self.members {
                None => self.arena.decode_into(rr, &mut rr_nodes),
                // A view's flat twin stores local ids: member nodes
                // only, remapped through the ascending member list
                // (ascending in, ascending out).
                Some(ms) => self.arena.for_each(rr, |node| {
                    if let Ok(local) = ms.binary_search(&node) {
                        rr_nodes.push(local as u32);
                    }
                }),
            }
            rr_offsets.push(rr_nodes.len());
        }
        RisUncompressedOracle {
            base: self.clone(),
            rr_offsets,
            rr_nodes,
        }
    }
}

/// Incremental evaluation state of [`RisOracle`]: which RR sets are
/// covered, plus the live uncovered-coverage counters (DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct RisInner {
    /// Covered flag per RR set.
    covered: FixedBitset,
    /// `counts[v·c + g]` = uncovered group-`g` RR sets containing `v`.
    counts: Vec<u32>,
}

impl UtilitySystem for RisOracle {
    type Inner = RisInner;

    fn num_items(&self) -> usize {
        self.n
    }

    fn num_users(&self) -> usize {
        self.m
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        // A view gathers just its members' counter rows — the solve's
        // mutable state is O(members · groups), never O(n · groups).
        let counts = match &self.members {
            None => (*self.base_counts).clone(),
            Some(ms) => {
                let c = self.weight.len();
                let mut counts = Vec::with_capacity(ms.len() * c);
                for &v in ms.iter() {
                    let v = v as usize;
                    counts.extend_from_slice(&self.base_counts[v * c..(v + 1) * c]);
                }
                counts
            }
        };
        RisInner {
            covered: FixedBitset::zeros(self.num_rr),
            counts,
        }
    }

    /// Counter read: `c` loads and one multiply per group. The product
    /// `(count as f64) · w_g` is exactly what the rescan kernel computes
    /// (it accumulates the integer count in `f64` — exact below 2^53 —
    /// then multiplies once), so both kernels agree bit for bit.
    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        let c = self.weight.len();
        let row = &inner.counts[item as usize * c..item as usize * c + c];
        for ((o, &cnt), &w) in out.iter_mut().zip(row).zip(&self.weight) {
            *o = cnt as f64 * w;
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    /// Decremental maintenance: for each RR set this item newly covers,
    /// mark it covered and decrement the counter of every node it
    /// contains, decoding the set's gap-varint span on the fly. Each RR
    /// set is drained at most once per run, so the total apply work over
    /// a whole greedy run is bounded by the arena size — gains stay
    /// exact without ever rescanning, and decode order is unobservable
    /// because the decrements commute. A restricted view decrements
    /// member rows only: decoded central node ids are filtered and
    /// remapped to local rows by binary search over the ascending
    /// member list, which changes nothing any member gain can observe
    /// (non-member rows don't exist in the view's counters).
    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let c = self.weight.len();
        let RisInner { covered, counts } = inner;
        for &rr in self.rr_of(item as usize) {
            if !covered.contains(rr as usize) {
                covered.insert(rr as usize);
                let gi = self.rr_group[rr as usize] as usize;
                match &self.members {
                    None => self.arena.for_each(rr as usize, |node| {
                        counts[node as usize * c + gi] -= 1;
                    }),
                    Some(ms) => self.arena.for_each(rr as usize, |node| {
                        if let Ok(local) = ms.binary_search(&node) {
                            counts[local * c + gi] -= 1;
                        }
                    }),
                }
            }
        }
    }

    fn gain_kernel(&self) -> &'static str {
        "compressed_counters"
    }

    fn approx_bytes(&self) -> usize {
        RisOracle::approx_bytes(self)
    }
}

/// The flat-`u32`-arena twin of [`RisOracle`]; see
/// [`RisOracle::uncompressed_reference`].
#[derive(Clone, Debug)]
pub struct RisUncompressedOracle {
    base: RisOracle,
    /// Flat arena: set `i`'s nodes are
    /// `rr_nodes[rr_offsets[i]..rr_offsets[i+1]]`, ascending.
    rr_offsets: Vec<usize>,
    rr_nodes: Vec<u32>,
}

impl UtilitySystem for RisUncompressedOracle {
    type Inner = RisInner;

    fn num_items(&self) -> usize {
        self.base.n
    }

    fn num_users(&self) -> usize {
        self.base.m
    }

    fn group_sizes(&self) -> &[usize] {
        &self.base.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        self.base.init_inner()
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.base.group_gains(inner, item, out);
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let c = self.base.weight.len();
        let RisInner { covered, counts } = inner;
        for &rr in self.base.rr_of(item as usize) {
            if !covered.contains(rr as usize) {
                covered.insert(rr as usize);
                let gi = self.base.rr_group[rr as usize] as usize;
                let span =
                    &self.rr_nodes[self.rr_offsets[rr as usize]..self.rr_offsets[rr as usize + 1]];
                for &node in span {
                    counts[node as usize * c + gi] -= 1;
                }
            }
        }
    }

    fn gain_kernel(&self) -> &'static str {
        "incremental_counters"
    }
}

/// The pre-incremental [`RisOracle`] kernel: rescan-per-query over the
/// inverted index. See [`RisOracle::rescan_reference`].
#[derive(Clone, Debug)]
pub struct RisRescanOracle(RisOracle);

impl UtilitySystem for RisRescanOracle {
    /// Covered flag per RR set (no counters to maintain).
    type Inner = FixedBitset;

    fn num_items(&self) -> usize {
        self.0.n
    }

    fn num_users(&self) -> usize {
        self.0.m
    }

    fn group_sizes(&self) -> &[usize] {
        &self.0.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        FixedBitset::zeros(self.0.num_rr)
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        // Accumulate integer counts in f64 (exact), multiply once at the
        // end — the same count-then-multiply the counter kernel does.
        for &rr in self.0.rr_of(item as usize) {
            if !inner.contains(rr as usize) {
                out[self.0.rr_group[rr as usize] as usize] += 1.0;
            }
        }
        for (o, &w) in out.iter_mut().zip(&self.0.weight) {
            *o *= w;
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &rr in self.0.rr_of(item as usize) {
            inner.insert(rr as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::monte_carlo_evaluate;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_graphs::generators::sbm;
    use fair_submod_graphs::GraphBuilder;

    #[test]
    fn oracle_shape_and_allocation() {
        let g = sbm(&[20, 80], 0.2, 0.05, 3);
        let groups = Groups::from_ratios(100, &[("a", 0.2), ("b", 0.8)], 1);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.1),
            &groups,
            &RisConfig::new(1000, 7),
        );
        assert_eq!(oracle.num_items(), 100);
        assert_eq!(oracle.num_users(), 100);
        assert!(oracle.num_rr_sets() >= 1000);
    }

    #[test]
    fn seeding_everything_covers_every_rr_set() {
        let g = sbm(&[30, 30], 0.2, 0.1, 5);
        let groups = Groups::from_ratios(60, &[("a", 0.5), ("b", 0.5)], 2);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.2),
            &groups,
            &RisConfig::new(500, 11),
        );
        let all: Vec<ItemId> = (0..60).collect();
        let e = evaluate(&oracle, &all);
        // Every RR set contains its root, so seeding V covers all of them.
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ris_estimate_agrees_with_monte_carlo() {
        // Closed-form check on a path: 0 → 1 → 2, p = 0.5, seed {0}:
        // P = [1, 0.5, 0.25] → f = 7/12, groups {0,1} vs {2}: g = 0.25.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let model = DiffusionModel::ic(0.5);
        let oracle = RisOracle::generate(&g, model, &groups, &RisConfig::new(60_000, 13));
        let ris = evaluate(&oracle, &[0]);
        let mc = monte_carlo_evaluate(&g, model, &groups, &[0], 60_000, 17);
        assert!((ris.f - mc.f).abs() < 0.02, "ris {} mc {}", ris.f, mc.f);
        assert!((ris.g - mc.g).abs() < 0.02, "ris {} mc {}", ris.g, mc.g);
        assert!((ris.g - 0.25).abs() < 0.02);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let g = sbm(&[40, 40], 0.2, 0.05, 9);
        let groups = Groups::from_ratios(80, &[("a", 0.5), ("b", 0.5)], 4);
        let cfg = RisConfig::new(2_000, 23);
        rayon::set_num_threads(1);
        let seq = RisOracle::generate(&g, DiffusionModel::ic(0.15), &groups, &cfg);
        rayon::set_num_threads(6);
        let par = RisOracle::generate(&g, DiffusionModel::ic(0.15), &groups, &cfg);
        rayon::set_num_threads(0);
        assert_eq!(seq.rr_group, par.rr_group);
        assert_eq!(seq.arena, par.arena);
        assert_eq!(seq.idx_offsets, par.idx_offsets);
        assert_eq!(seq.idx_rr, par.idx_rr);
        assert_eq!(seq.base_counts, par.base_counts);
        assert_eq!(seq.weight, par.weight);
    }

    #[test]
    fn varint_delta_codec_round_trips() {
        // Boundary gaps around every 7-bit group, ids including 0, an
        // empty set, and a singleton.
        let lists: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![5],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            vec![0, 127, 128, 16_383, 16_384, 2_097_151, 2_097_152, u32::MAX],
            (0..100).map(|i| i * 131).collect(),
        ];
        let mut arena = RrArena::with_capacity(lists.len(), 64);
        for list in &lists {
            arena.push_set(list);
        }
        assert_eq!(arena.num_sets(), lists.len());
        assert_eq!(
            arena.total_nodes(),
            lists.iter().map(|l| l.len()).sum::<usize>()
        );
        for (rr, list) in lists.iter().enumerate() {
            let mut decoded = Vec::new();
            arena.decode_into(rr, &mut decoded);
            assert_eq!(&decoded, list, "set {rr}");
        }
        // Dense ascending lists should compress well below 4 B/node.
        let dense = &lists[3];
        let span = arena.offsets[4] - arena.offsets[3];
        assert!(span < dense.len() * 4, "dense list not compressed");
    }

    #[test]
    fn compression_shrinks_the_arena() {
        let g = sbm(&[60, 60], 0.2, 0.05, 27);
        let groups = Groups::from_ratios(120, &[("a", 0.5), ("b", 0.5)], 4);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.15),
            &groups,
            &RisConfig::new(2_000, 41),
        );
        assert!(oracle.arena_len() > 0);
        assert!(
            oracle.arena_bytes() < oracle.arena_len() * 4,
            "compressed {} B >= flat {} B",
            oracle.arena_bytes(),
            oracle.arena_len() * 4
        );
        assert!(oracle.approx_bytes() > oracle.arena_bytes());
    }

    #[test]
    fn compressed_kernel_matches_uncompressed_reference_bitwise() {
        use fair_submod_core::system::SolutionState;
        let g = sbm(&[40, 40], 0.2, 0.05, 31);
        let groups = Groups::from_ratios(80, &[("a", 0.5), ("b", 0.5)], 4);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.15),
            &groups,
            &RisConfig::new(1_500, 43),
        );
        let flat = oracle.uncompressed_reference();
        assert_eq!(oracle.gain_kernel(), "compressed_counters");
        assert_eq!(flat.gain_kernel(), "incremental_counters");
        let mut comp = SolutionState::new(&oracle);
        let mut refc = SolutionState::new(&flat);
        let c = oracle.num_groups();
        let mut gc = vec![0.0; c];
        let mut gr = vec![0.0; c];
        for &step in &[9u32, 55, 0, 23, 71] {
            for v in 0..80u32 {
                comp.gains_into(v, &mut gc);
                refc.gains_into(v, &mut gr);
                for g in 0..c {
                    assert_eq!(gc[g].to_bits(), gr[g].to_bits(), "item {v} group {g}");
                }
            }
            comp.insert(step);
            refc.insert(step);
            assert_eq!(comp.group_sums(), refc.group_sums());
        }
    }

    #[test]
    fn counter_kernel_matches_rescan_reference_bitwise() {
        use fair_submod_core::system::SolutionState;
        let g = sbm(&[40, 40], 0.2, 0.05, 13);
        let groups = Groups::from_ratios(80, &[("a", 0.5), ("b", 0.5)], 4);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.15),
            &groups,
            &RisConfig::new(1_500, 29),
        );
        let rescan = oracle.rescan_reference();
        let mut inc = SolutionState::new(&oracle);
        let mut refc = SolutionState::new(&rescan);
        let c = oracle.num_groups();
        let mut gi = vec![0.0; c];
        let mut gr = vec![0.0; c];
        for &step in &[3u32, 61, 0, 17, 42] {
            for v in 0..80u32 {
                inc.gains_into(v, &mut gi);
                refc.gains_into(v, &mut gr);
                for g in 0..c {
                    assert_eq!(gi[g].to_bits(), gr[g].to_bits(), "item {v} group {g}");
                }
            }
            inc.insert(step);
            refc.insert(step);
            assert_eq!(inc.group_sums(), refc.group_sums());
        }
    }

    #[test]
    fn restricted_oracle_reads_central_rows_bitwise() {
        use fair_submod_core::system::SolutionState;
        let g = sbm(&[30, 30], 0.2, 0.08, 17);
        let groups = Groups::from_ratios(60, &[("a", 0.5), ("b", 0.5)], 6);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.15),
            &groups,
            &RisConfig::new(800, 31),
        );
        let members: Vec<ItemId> = vec![1, 7, 20, 21, 44, 59];
        let shard = oracle.restrict(&members).expect("valid members");
        assert_eq!(shard.num_items(), members.len());
        assert_eq!(shard.num_users(), oracle.num_users());
        assert_eq!(shard.num_rr_sets(), oracle.num_rr_sets());

        let mut central = SolutionState::new(&oracle);
        let mut restricted = SolutionState::new(&shard);
        let c = oracle.num_groups();
        let mut through = vec![0.0; c];
        let mut direct = vec![0.0; c];
        // Apply a shared member sequence; gains must stay bitwise equal
        // throughout (the sequence drains RR sets on both sides).
        for &pick in &[2u32, 0, 5] {
            for (local, &global) in members.iter().enumerate() {
                restricted.gains_into(local as ItemId, &mut through);
                central.gains_into(global, &mut direct);
                for g in 0..c {
                    assert_eq!(
                        through[g].to_bits(),
                        direct[g].to_bits(),
                        "member {global} group {g}"
                    );
                }
            }
            restricted.insert(pick);
            central.insert(members[pick as usize]);
            assert_eq!(restricted.group_sums(), central.group_sums());
        }
    }

    #[test]
    fn partition_shards_rejects_malformed_partitions() {
        let g = sbm(&[10, 10], 0.3, 0.1, 3);
        let groups = Groups::from_ratios(20, &[("a", 0.5), ("b", 0.5)], 2);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.2),
            &groups,
            &RisConfig::new(200, 5),
        );
        // Empty partition list.
        assert!(oracle.partition_shards(&[]).is_err());
        // Empty shard.
        assert!(oracle
            .partition_shards(&[(0..20).collect(), vec![]])
            .is_err());
        // Overlap.
        assert!(oracle
            .partition_shards(&[(0..11).collect(), (10..20).collect()])
            .is_err());
        // Out of range.
        assert!(oracle
            .partition_shards(&[(0..19).collect(), vec![25]])
            .is_err());
        // Not an exact cover.
        assert!(oracle.partition_shards(&[(0..19).collect()]).is_err());
        // Restrict alone: unsorted and empty member lists are typed
        // rejections too.
        assert!(oracle.restrict(&[]).is_err());
        assert!(oracle.restrict(&[5, 2]).is_err());
        // A valid partition round-trips.
        let shards = oracle
            .partition_shards(&[(0..7).collect(), (7..13).collect(), (13..20).collect()])
            .expect("valid partition");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.num_items()).sum::<usize>(), 20);
    }

    #[test]
    fn slice_backed_generation_matches_resident_graph() {
        let g = sbm(&[25, 25], 0.2, 0.06, 21);
        let groups = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 3);
        let cfg = RisConfig::new(600, 37);
        let central = RisOracle::generate(&g, DiffusionModel::ic(0.12), &groups, &cfg);
        // Cut the graph into three ragged slices and rebuild from them.
        let slices = vec![
            g.slice_rows(&(0..20).collect::<Vec<_>>()),
            g.slice_rows(&(20..21).collect::<Vec<_>>()),
            g.slice_rows(&(21..50).collect::<Vec<_>>()),
        ];
        let sliced = RisOracle::generate_from_slices(
            &slices,
            50,
            g.is_directed(),
            DiffusionModel::ic(0.12),
            &groups,
            &cfg,
        );
        assert_eq!(sliced.rr_group, central.rr_group);
        assert_eq!(sliced.arena, central.arena);
        assert_eq!(sliced.idx_offsets, central.idx_offsets);
        assert_eq!(sliced.idx_rr, central.idx_rr);
        assert_eq!(sliced.base_counts, central.base_counts);
        assert_eq!(sliced.weight, central.weight);
    }

    #[test]
    fn greedy_on_ris_picks_influential_seeds() {
        use fair_submod_core::aggregate::MeanUtility;
        use fair_submod_core::algorithms::greedy::{greedy, GreedyConfig};
        // A hub (node 0) pointing at everyone should be picked first.
        let mut b = GraphBuilder::new(50, true);
        for v in 1..50 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let groups = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 3);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.3),
            &groups,
            &RisConfig::new(3000, 19),
        );
        let f = MeanUtility::new(oracle.num_users());
        let run = greedy(&oracle, &f, &GreedyConfig::lazy(1));
        assert_eq!(run.items, vec![0]);
    }
}
