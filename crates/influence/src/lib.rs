//! # fair-submod-influence
//!
//! Influence-maximization (IM) substrate: the independent-cascade (IC)
//! and linear-threshold (LT) diffusion models (Kempe et al., 2003),
//! forward Monte-Carlo spread estimation (rayon-parallel; the paper uses
//! 10,000 runs per reported value), reverse-reachable (RR) set sampling
//! (Borgs et al., 2014), an IMM-style sample-size schedule (Tang et al.,
//! 2015), and [`RisOracle`] — the group-aware RIS estimator that plugs IM
//! into the BSM algorithm suite as a
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem).
//!
//! ## Estimator design
//!
//! An RR set rooted at a user `u` is the set of nodes that would have
//! influenced `u` under one random realization of the diffusion. For any
//! seed set `S`, `Pr[S covers a u-rooted RR set] = P_u(S)`, the
//! probability that `u` is influenced. Sampling roots per group therefore
//! yields unbiased estimates of every group utility
//! `f_i(S) = (1/m_i) Σ_{u∈U_i} P_u(S)` — IM becomes a *weighted coverage*
//! problem over RR sets, and the entire BSM machinery applies unchanged.
//! Final reported values always come from independent forward Monte-Carlo
//! simulation, as in the paper.

pub mod imm;
pub mod models;
pub mod oracle;
pub mod rr;
pub mod simulate;

pub use models::{DiffusionModel, EdgeWeighting};
pub use oracle::RisOracle;
pub use simulate::monte_carlo_evaluate;
