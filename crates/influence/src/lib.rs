//! # fair-submod-influence
//!
//! Influence-maximization (IM) substrate: the independent-cascade (IC)
//! and linear-threshold (LT) diffusion models (Kempe et al., 2003),
//! forward Monte-Carlo spread estimation (rayon-parallel; the paper uses
//! 10,000 runs per reported value), reverse-reachable (RR) set sampling
//! (Borgs et al., 2014), an IMM-style sample-size schedule (Tang et al.,
//! 2015), and [`RisOracle`] — the group-aware RIS estimator that plugs IM
//! into the BSM algorithm suite as a
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem).
//!
//! ## Estimator design
//!
//! An RR set rooted at a user `u` is the set of nodes that would have
//! influenced `u` under one random realization of the diffusion. For any
//! seed set `S`, `Pr[S covers a u-rooted RR set] = P_u(S)`, the
//! probability that `u` is influenced. Sampling roots per group therefore
//! yields unbiased estimates of every group utility
//! `f_i(S) = (1/m_i) Σ_{u∈U_i} P_u(S)` — IM becomes a *weighted coverage*
//! problem over RR sets, and the entire BSM machinery applies unchanged.
//! Final reported values always come from independent forward Monte-Carlo
//! simulation, as in the paper.
//!
//! ## Example
//!
//! Fair influence maximization on a tiny two-community graph — the flow
//! of `examples/fair_influence.rs`: select seeds on the stratified RIS
//! estimator, then report spread with independent forward simulation:
//!
//! ```
//! use fair_submod_core::prelude::*;
//! use fair_submod_graphs::{GraphBuilder, Groups};
//! use fair_submod_influence::oracle::RisConfig;
//! use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel, RisOracle};
//!
//! // Two triangles bridged by a single edge; one group per community.
//! let mut builder = GraphBuilder::new(6, false);
//! builder.extend([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
//! let graph = builder.build();
//! let groups = Groups::from_assignment(vec![0, 0, 0, 1, 1, 1]);
//! let model = DiffusionModel::ic(0.3);
//!
//! // Seed selection happens on the group-stratified RIS oracle…
//! let oracle = RisOracle::generate(&graph, model, &groups, &RisConfig::new(500, 7));
//! let fair = bsm_saturate(&oracle, &BsmSaturateConfig::new(2, 0.8));
//! assert_eq!(fair.items.len(), 2);
//!
//! // …while reported numbers come from forward Monte-Carlo runs.
//! let eval = monte_carlo_evaluate(&graph, model, &groups, &fair.items, 200, 99);
//! assert!(eval.f > 0.0 && eval.g > 0.0);
//! ```

pub mod imm;
pub mod models;
pub mod oracle;
pub mod rr;
pub mod simulate;

pub use models::{DiffusionModel, EdgeWeighting};
pub use oracle::{RisOracle, RisUncompressedOracle};
pub use simulate::monte_carlo_evaluate;
