//! Forward Monte-Carlo diffusion simulation.
//!
//! Ground-truth evaluation of `f(S)` and `g(S)` for IM: run the diffusion
//! `runs` times and average per-group influenced fractions. The paper
//! reports all IM values from 10,000 simulations; this module
//! parallelizes the runs with rayon and is deterministic for a fixed
//! `(seed, runs)` pair regardless of thread count (each run derives its
//! own RNG from `seed ⊕ run_index`).
//!
//! The per-run state uses epoch stamps rather than clearing an
//! `n`-sized bitmap, so one cascade costs `O(touched arcs)` — essential
//! on the 100k-node Pokec stand-in where cascades are tiny under
//! `p = 0.01` but `runs` is in the thousands.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use fair_submod_core::items::ItemId;
use fair_submod_core::metrics::Evaluation;
use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::{Graph, Groups};

use crate::models::{DiffusionModel, EdgeWeighting};

/// Reusable per-thread simulation scratch with epoch marking.
struct Scratch {
    /// Epoch stamp per node; `stamp[v] == epoch` means active this run.
    stamp: Vec<u32>,
    epoch: u32,
    /// Activation order of the current run (exactly the influenced set).
    queue: Vec<NodeId>,
    /// LT-only: per-node threshold and accumulated pressure, epoch-tagged.
    lt_mark: Vec<u32>,
    lt_threshold: Vec<f64>,
    lt_pressure: Vec<f64>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
            queue: Vec::with_capacity(64),
            lt_mark: vec![0; n],
            lt_threshold: vec![0.0; n],
            lt_pressure: vec![0.0; n],
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.lt_mark.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
        self.epoch
    }
}

/// One IC cascade; on return `scratch.queue` holds the influenced nodes.
fn simulate_ic(
    graph: &Graph,
    weighting: EdgeWeighting,
    seeds: &[NodeId],
    rng: &mut StdRng,
    scratch: &mut Scratch,
) {
    let epoch = scratch.next_epoch();
    for &s in seeds {
        if scratch.stamp[s as usize] != epoch {
            scratch.stamp[s as usize] = epoch;
            scratch.queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        for &v in graph.out_neighbors(u) {
            if scratch.stamp[v as usize] != epoch
                && rng.gen::<f64>() < weighting.probability(graph, u, v)
            {
                scratch.stamp[v as usize] = epoch;
                scratch.queue.push(v);
            }
        }
    }
}

/// One LT cascade with uniform in-edge weights `1/in_degree` and
/// uniformly random thresholds, drawn lazily per touched node.
fn simulate_lt(graph: &Graph, seeds: &[NodeId], rng: &mut StdRng, scratch: &mut Scratch) {
    let epoch = scratch.next_epoch();
    for &s in seeds {
        if scratch.stamp[s as usize] != epoch {
            scratch.stamp[s as usize] = epoch;
            scratch.queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        for &v in graph.out_neighbors(u) {
            let vi = v as usize;
            if scratch.stamp[vi] == epoch {
                continue;
            }
            let d = graph.in_degree(v);
            if d == 0 {
                continue;
            }
            if scratch.lt_mark[vi] != epoch {
                scratch.lt_mark[vi] = epoch;
                scratch.lt_threshold[vi] = rng.gen::<f64>();
                scratch.lt_pressure[vi] = 0.0;
            }
            scratch.lt_pressure[vi] += 1.0 / d as f64;
            if scratch.lt_pressure[vi] >= scratch.lt_threshold[vi] {
                scratch.stamp[vi] = epoch;
                scratch.queue.push(v);
            }
        }
    }
}

/// Estimates `f(S)`, `g(S)`, and all group means by `runs` independent
/// forward simulations. Deterministic in `(seed, runs)`.
pub fn monte_carlo_evaluate(
    graph: &Graph,
    model: DiffusionModel,
    groups: &Groups,
    seeds: &[ItemId],
    runs: usize,
    seed: u64,
) -> Evaluation {
    assert!(runs > 0);
    assert_eq!(graph.num_nodes(), groups.num_users());
    let c = groups.num_groups();
    let node_seeds: Vec<NodeId> = seeds.to_vec();

    let totals: Vec<f64> = (0..runs)
        .into_par_iter()
        .fold(
            || (vec![0.0f64; c], Scratch::new(graph.num_nodes())),
            |(mut acc, mut scratch), run| {
                let mut rng = StdRng::seed_from_u64(seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
                match model {
                    DiffusionModel::IndependentCascade(w) => {
                        simulate_ic(graph, w, &node_seeds, &mut rng, &mut scratch);
                    }
                    DiffusionModel::LinearThreshold => {
                        simulate_lt(graph, &node_seeds, &mut rng, &mut scratch);
                    }
                }
                // The queue is exactly the influenced set.
                for &v in &scratch.queue {
                    acc[groups.group_of(v as usize) as usize] += 1.0;
                }
                (acc, scratch)
            },
        )
        .map(|(acc, _)| acc)
        .reduce(
            || vec![0.0; c],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );

    let m = groups.num_users() as f64;
    let sizes = groups.sizes();
    let group_means: Vec<f64> = totals
        .iter()
        .zip(sizes)
        .map(|(&t, &mi)| t / (runs as f64 * mi as f64))
        .collect();
    let f = totals.iter().sum::<f64>() / (runs as f64 * m);
    let g = group_means.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    Evaluation {
        f,
        g,
        group_means,
        size: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;

    fn path_graph() -> Graph {
        // 0 → 1 → 2, directed.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        b.build()
    }

    #[test]
    fn deterministic_p1_cascade_influences_everything() {
        let g = path_graph();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let e = monte_carlo_evaluate(&g, DiffusionModel::ic(1.0), &groups, &[0], 50, 7);
        assert!((e.f - 1.0).abs() < 1e-12);
        assert!((e.g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p0_cascade_influences_only_seeds() {
        let g = path_graph();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let e = monte_carlo_evaluate(&g, DiffusionModel::ic(0.0), &groups, &[0], 20, 7);
        assert!((e.f - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.g, 0.0); // group 1 (node 2) never influenced
        assert!((e.group_means[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intermediate_probability_matches_closed_form() {
        // Seed {0}: P(1 influenced) = p; P(2) = p².
        let g = path_graph();
        let groups = Groups::from_assignment(vec![0, 1, 2]);
        let p = 0.3;
        let e = monte_carlo_evaluate(&g, DiffusionModel::ic(p), &groups, &[0], 60_000, 11);
        assert!((e.group_means[1] - p).abs() < 0.01, "{}", e.group_means[1]);
        assert!(
            (e.group_means[2] - p * p).abs() < 0.01,
            "{}",
            e.group_means[2]
        );
    }

    #[test]
    fn lt_on_path_is_deterministic_diffusion() {
        // In LT with in-degree-1 nodes, weight 1 ≥ any threshold < 1, so a
        // seeded path cascades fully (thresholds are U(0,1), P(t=1)=0).
        let g = path_graph();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let e = monte_carlo_evaluate(&g, DiffusionModel::LinearThreshold, &groups, &[0], 30, 3);
        assert!((e.f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lt_pressure_accumulates_across_neighbors() {
        // Node 2 has in-degree 2 (weights 1/2 each); seeding both 0 and 1
        // always activates 2 (pressure reaches 1 ≥ threshold).
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 2).add_edge(1, 2);
        let g = b.build();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let e = monte_carlo_evaluate(
            &g,
            DiffusionModel::LinearThreshold,
            &groups,
            &[0, 1],
            200,
            5,
        );
        assert!((e.g - 1.0).abs() < 1e-9, "g = {}", e.g);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let g = fair_submod_graphs::generators::erdos_renyi(40, 0.1, 5);
        let groups = Groups::from_ratios(40, &[("a", 0.5), ("b", 0.5)], 1);
        let a = monte_carlo_evaluate(&g, DiffusionModel::ic(0.2), &groups, &[0, 3], 500, 9);
        let b = monte_carlo_evaluate(&g, DiffusionModel::ic(0.2), &groups, &[0, 3], 500, 9);
        assert_eq!(a.f, b.f);
        assert_eq!(a.group_means, b.group_means);
    }

    #[test]
    fn duplicate_seeds_are_counted_once() {
        let g = path_graph();
        let groups = Groups::from_assignment(vec![0, 0, 1]);
        let e = monte_carlo_evaluate(&g, DiffusionModel::ic(0.0), &groups, &[0, 0, 0], 10, 1);
        assert!((e.f - 1.0 / 3.0).abs() < 1e-12);
    }
}
