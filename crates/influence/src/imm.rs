//! IMM-style sample-size schedule (Tang, Shi, Xiao; SIGMOD 2015).
//!
//! IMM chooses the number of RR sets `θ` so that, with probability
//! `1 − 1/n^ℓ`, greedy seed selection on the sample is a
//! `(1 − 1/e − ε)`-approximation of the expected spread. The schedule has
//! two parts:
//!
//! 1. **OPT lower-bounding** — geometric search over candidate lower
//!    bounds `x = n/2^i`: sample `θ_i = λ'/x` RR sets, run greedy
//!    `k`-coverage, and accept `LB = n·F(S_k)/(1+ε')` once it crosses `x`.
//! 2. **Final sampling** — `θ = λ*/LB` with
//!    `λ* = 2n·((1−1/e)α + β)²·ε⁻²`,
//!    `α = √(ℓ·ln n + ln 2)`,
//!    `β = √((1−1/e)(ln C(n,k) + ℓ·ln n + ln 2))`.
//!
//! We use the schedule to size [`RisOracle`](crate::oracle::RisOracle)
//! samples; the group stratification happens downstream (the schedule
//! guards the overall-spread estimate, which is the quantity the paper's
//! `f` objective needs; group floors are added on top).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::Graph;

use crate::models::DiffusionModel;
use crate::rr::{sample_rr, RrScratch};

/// IMM parameters.
#[derive(Clone, Debug)]
pub struct ImmConfig {
    /// Seed-set size `k` the sample must support.
    pub k: usize,
    /// Approximation slack `ε` (the paper's IMM default is 0.5 for
    /// selection-quality experiments; smaller means more RR sets).
    pub epsilon: f64,
    /// Failure exponent `ℓ` (guarantee holds w.p. `1 − 1/n^ℓ`).
    pub ell: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Hard cap on `θ` to bound memory (0 = uncapped).
    pub max_theta: usize,
}

impl ImmConfig {
    /// IMM defaults: `ε = 0.5`, `ℓ = 1`.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            epsilon: 0.5,
            ell: 1.0,
            seed,
            max_theta: 2_000_000,
        }
    }
}

/// `ln C(n, k)` via `ln Γ` sums (numerically stable).
fn ln_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Computes the IMM sample size `θ` for `graph` under `model`.
///
/// Returns `(theta, opt_lower_bound_in_users)`.
pub fn imm_theta(graph: &Graph, model: DiffusionModel, cfg: &ImmConfig) -> (usize, f64) {
    let n = graph.num_nodes();
    assert!(n >= 2 && cfg.k >= 1);
    let nf = n as f64;
    let k = cfg.k.min(n);
    let eps = cfg.epsilon;
    let ell = cfg.ell * (1.0 + 2f64.ln() / nf.ln()); // IMM's ℓ adjustment

    let ln_nk = ln_binomial(n, k);
    let alpha = (ell * nf.ln() + 2f64.ln()).sqrt();
    let beta = ((1.0 - 1.0 / std::f64::consts::E) * (ln_nk + ell * nf.ln() + 2f64.ln())).sqrt();
    let lambda_star =
        2.0 * nf * ((1.0 - 1.0 / std::f64::consts::E) * alpha + beta).powi(2) / (eps * eps);

    // Phase 1: lower-bound OPT.
    let eps_prime = (2.0f64).sqrt() * eps;
    let lambda_prime =
        (2.0 + 2.0 * eps_prime / 3.0) * (ln_nk + ell * nf.ln() + (nf.log2().max(1.0)).ln()) * nf
            / (eps_prime * eps_prime);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = RrScratch::new(n);
    let mut rr_sets: Vec<Vec<NodeId>> = Vec::new();
    let mut lb = 1.0f64;

    let max_i = (nf.log2().ceil() as usize).max(1);
    'outer: for i in 1..max_i {
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (lambda_prime / x).ceil() as usize;
        let theta_i = if cfg.max_theta > 0 {
            theta_i.min(cfg.max_theta)
        } else {
            theta_i
        };
        while rr_sets.len() < theta_i {
            let root = rng.gen_range(0..n) as NodeId;
            rr_sets.push(sample_rr(graph, model, root, &mut rng, &mut scratch));
        }
        let frac = greedy_coverage_fraction(&rr_sets, n, k);
        if nf * frac >= (1.0 + eps_prime) * x {
            lb = nf * frac / (1.0 + eps_prime);
            break 'outer;
        }
        if cfg.max_theta > 0 && rr_sets.len() >= cfg.max_theta {
            lb = (nf * frac / (1.0 + eps_prime)).max(1.0);
            break 'outer;
        }
    }

    let mut theta = (lambda_star / lb).ceil() as usize;
    if cfg.max_theta > 0 {
        theta = theta.min(cfg.max_theta);
    }
    (theta.max(1), lb)
}

/// Max fraction of RR sets coverable by `k` nodes (plain greedy).
fn greedy_coverage_fraction(rr_sets: &[Vec<NodeId>], n: usize, k: usize) -> f64 {
    if rr_sets.is_empty() {
        return 0.0;
    }
    // Inverted index.
    let mut idx: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, rr) in rr_sets.iter().enumerate() {
        for &v in rr {
            idx[v as usize].push(i as u32);
        }
    }
    let mut covered = vec![false; rr_sets.len()];
    let mut deg: Vec<usize> = idx.iter().map(|l| l.len()).collect();
    let mut total = 0usize;
    for _ in 0..k {
        let (best, &bd) = match deg.iter().enumerate().max_by_key(|&(_, &d)| d) {
            Some(x) => x,
            None => break,
        };
        if bd == 0 {
            break;
        }
        for &rr in &idx[best] {
            if !covered[rr as usize] {
                covered[rr as usize] = true;
                total += 1;
                // Decrement degrees of other members.
                for &w in &rr_sets[rr as usize] {
                    deg[w as usize] = deg[w as usize].saturating_sub(1);
                }
            }
        }
        deg[best] = 0;
    }
    total as f64 / rr_sets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::generators::sbm;

    #[test]
    fn ln_binomial_values() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_binomial(10, 0) - 0.0).abs() < 1e-12);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn theta_grows_as_epsilon_shrinks() {
        let g = sbm(&[50, 50], 0.1, 0.02, 1);
        let loose = imm_theta(&g, DiffusionModel::ic(0.1), &ImmConfig::new(5, 3));
        let mut tight_cfg = ImmConfig::new(5, 3);
        tight_cfg.epsilon = 0.2;
        let tight = imm_theta(&g, DiffusionModel::ic(0.1), &tight_cfg);
        assert!(tight.0 > loose.0);
    }

    #[test]
    fn lower_bound_is_plausible() {
        let g = sbm(&[50, 50], 0.15, 0.05, 2);
        let (theta, lb) = imm_theta(&g, DiffusionModel::ic(0.1), &ImmConfig::new(5, 7));
        // LB must be within [k, n]: seeding k nodes influences ≥ k of them.
        assert!(lb >= 1.0 && lb <= 100.0, "lb = {lb}");
        assert!(theta >= 100, "theta = {theta}");
    }

    #[test]
    fn greedy_coverage_fraction_on_known_instance() {
        // 4 RR sets; node 7 hits three of them.
        let rr = vec![vec![7, 1], vec![7, 2], vec![7], vec![3]];
        let f1 = greedy_coverage_fraction(&rr, 10, 1);
        assert!((f1 - 0.75).abs() < 1e-12);
        let f2 = greedy_coverage_fraction(&rr, 10, 2);
        assert!((f2 - 1.0).abs() < 1e-12);
    }
}
