//! Reverse-reachable (RR) set sampling (Borgs et al., SODA 2014).
//!
//! An RR set for root `u` under the IC model is the random set of nodes
//! `w` such that `u` is reachable from `w` in the "live-edge" graph where
//! each arc `(w→x)` survives independently with probability `p(w→x)`.
//! Sampling proceeds by reverse BFS from `u`, flipping each *incoming*
//! arc's coin on first touch.
//!
//! Under the LT model, each node activates through at most one in-arc
//! (chosen uniformly when in-weights are `1/in_degree`), so an RR set is
//! a reverse random walk.

use rand::rngs::StdRng;
use rand::Rng;

use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::Graph;

use crate::models::DiffusionModel;

/// Reusable per-worker sampling scratch: epoch-stamped visited marks and
/// the BFS queue, bundled so batched parallel sampling holds exactly one
/// scratch per worker thread instead of threading three loose `&mut`
/// parameters through every call.
#[derive(Clone, Debug, Default)]
pub struct RrScratch {
    /// Epoch stamp per node; `visited[v] == stamp` means "in this RR set".
    visited: Vec<u32>,
    stamp: u32,
    /// BFS queue of the current sample.
    queue: Vec<NodeId>,
}

impl RrScratch {
    /// Scratch pre-sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            visited: vec![0; n],
            stamp: 0,
            queue: Vec::with_capacity(64),
        }
    }

    /// Begins a new sample over `n` nodes, returning the fresh epoch
    /// mark. Resizing and stamp wrap-around are handled here so repeated
    /// calls never clear the `n`-sized buffer.
    fn next_epoch(&mut self, n: usize) -> u32 {
        if self.visited.len() != n {
            self.visited.clear();
            self.visited.resize(n, 0);
            self.stamp = 0;
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.visited.fill(0);
            self.stamp = 1;
        }
        self.queue.clear();
        self.stamp
    }
}

/// Samples one RR set for `root`; the result always contains `root`.
///
/// `scratch` persists across calls (epoch marking avoids clearing).
pub fn sample_rr(
    graph: &Graph,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut StdRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mark = scratch.next_epoch(n);

    let mut rr = Vec::with_capacity(8);
    scratch.visited[root as usize] = mark;
    scratch.queue.push(root);
    rr.push(root);

    match model {
        DiffusionModel::IndependentCascade(weighting) => {
            let mut head = 0usize;
            while head < scratch.queue.len() {
                let u = scratch.queue[head];
                head += 1;
                for &w in graph.in_neighbors(u) {
                    if scratch.visited[w as usize] != mark
                        && rng.gen::<f64>() < weighting.probability(graph, w, u)
                    {
                        scratch.visited[w as usize] = mark;
                        scratch.queue.push(w);
                        rr.push(w);
                    }
                }
            }
        }
        DiffusionModel::LinearThreshold => {
            // Reverse random walk: each node is influenced through exactly
            // one (uniform) in-neighbor in the live-edge view.
            let mut cur = root;
            loop {
                let ins = graph.in_neighbors(cur);
                if ins.is_empty() {
                    break;
                }
                let w = ins[rng.gen_range(0..ins.len())];
                if scratch.visited[w as usize] == mark {
                    break; // walked into the set: stop (cycle)
                }
                scratch.visited[w as usize] = mark;
                rr.push(w);
                cur = w;
            }
        }
    }
    rr
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn rr_contains_root() {
        let g = GraphBuilder::new(4, true).build();
        let mut scratch = RrScratch::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let rr = sample_rr(&g, DiffusionModel::ic(0.5), 2, &mut rng, &mut scratch);
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_with_p1_is_full_reverse_reachability() {
        // 0 → 1 → 2: RR(2) at p=1 must be {2, 1, 0}.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = sample_rr(&g, DiffusionModel::ic(1.0), 2, &mut rng, &mut scratch);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }

    #[test]
    fn rr_with_p0_is_just_the_root() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let rr = sample_rr(&g, DiffusionModel::ic(0.0), 2, &mut rng, &mut scratch);
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_frequency_matches_edge_probability() {
        // Single arc 0 → 1 with p = 0.3: RR(1) contains 0 w.p. 0.3.
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 1);
        let g = b.build();
        let mut scratch = RrScratch::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let runs = 50_000;
        for _ in 0..runs {
            let rr = sample_rr(&g, DiffusionModel::ic(0.3), 1, &mut rng, &mut scratch);
            if rr.len() == 2 {
                hits += 1;
            }
        }
        let freq = hits as f64 / runs as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lt_rr_is_a_path() {
        let g = fair_submod_graphs::generators::erdos_renyi(30, 0.2, 7);
        let mut scratch = RrScratch::new(30);
        let mut rng = StdRng::seed_from_u64(9);
        for root in 0..30u32 {
            let rr = sample_rr(
                &g,
                DiffusionModel::LinearThreshold,
                root,
                &mut rng,
                &mut scratch,
            );
            // A reverse random walk has no duplicate nodes.
            let mut sorted = rr.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rr.len());
        }
    }

    #[test]
    fn default_scratch_resizes_on_first_use() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = sample_rr(&g, DiffusionModel::ic(1.0), 2, &mut rng, &mut scratch);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }
}
