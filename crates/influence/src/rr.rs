//! Reverse-reachable (RR) set sampling (Borgs et al., SODA 2014).
//!
//! An RR set for root `u` under the IC model is the random set of nodes
//! `w` such that `u` is reachable from `w` in the "live-edge" graph where
//! each arc `(w→x)` survives independently with probability `p(w→x)`.
//! Sampling proceeds by reverse BFS from `u`, flipping each *incoming*
//! arc's coin on first touch.
//!
//! Under the LT model, each node activates through at most one in-arc
//! (chosen uniformly when in-weights are `1/in_degree`), so an RR set is
//! a reverse random walk.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::Graph;

use crate::models::{DiffusionModel, EdgeWeighting};

/// Reusable per-worker sampling scratch: epoch-stamped visited marks,
/// bundled so batched parallel sampling holds exactly one scratch per
/// worker thread instead of threading loose `&mut` parameters through
/// every call. The BFS frontier needs no buffer of its own — the run a
/// sample appends to its output arena *is* the queue.
#[derive(Clone, Debug, Default)]
pub struct RrScratch {
    /// Epoch stamp per node; `visited[v] == stamp` means "in this RR set".
    visited: Vec<u32>,
    stamp: u32,
    /// Visited bitmap for the mask-accelerated sampler
    /// ([`sample_rr_masked_into`]); zeroed per sample (≤
    /// [`RR_MASK_NODE_CAP`]/64 words, cheaper than epoch bookkeeping).
    visited_bits: Vec<u64>,
}

impl RrScratch {
    /// Scratch pre-sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            visited: vec![0; n],
            stamp: 0,
            visited_bits: Vec::new(),
        }
    }

    /// Begins a new sample over `n` nodes, returning the fresh epoch
    /// mark. Resizing and stamp wrap-around are handled here so repeated
    /// calls never clear the `n`-sized buffer.
    fn next_epoch(&mut self, n: usize) -> u32 {
        if self.visited.len() != n {
            self.visited.clear();
            self.visited.resize(n, 0);
            self.stamp = 0;
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.visited.fill(0);
            self.stamp = 1;
        }
        self.stamp
    }
}

/// Samples one RR set for `root`; the result always contains `root`.
///
/// `scratch` persists across calls (epoch marking avoids clearing).
/// Convenience wrapper over [`sample_rr_into`] that allocates a fresh
/// `Vec` per sample; batch producers should append into a reused arena
/// instead.
pub fn sample_rr(
    graph: &Graph,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut StdRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    let mut rr = Vec::with_capacity(8);
    sample_rr_into(graph, model, root, rng, scratch, &mut rr);
    rr
}

/// Samples one RR set for `root`, **appending** its nodes to `arena`
/// and returning how many were appended. The appended run always starts
/// with `root`, in the exact order [`sample_rr`] would have produced —
/// batch generation pushes thousands of sets into one growing arena
/// per worker instead of allocating (and later re-walking) a `Vec` per
/// RR set.
pub fn sample_rr_into(
    graph: &Graph,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut StdRng,
    scratch: &mut RrScratch,
    arena: &mut Vec<NodeId>,
) -> usize {
    let n = graph.num_nodes();
    let mark = scratch.next_epoch(n);

    let start = arena.len();
    let rr = arena;
    scratch.visited[root as usize] = mark;
    rr.push(root);

    match model {
        DiffusionModel::IndependentCascade(EdgeWeighting::Uniform(p)) => {
            // Hot path for the paper's uniform-`p` setting. Two
            // rewrites of the general loop below, both decision-exact:
            // the appended arena run doubles as the BFS queue (the
            // queue's contents *are* `rr[start..]`, in the same push
            // order), and the per-arc coin `gen::<f64>() < p` becomes
            // an integer compare on the raw 53-bit draw — `x·2⁻⁵³ < p
            // ⟺ x < ⌈p·2⁵³⌉` because scaling by a power of two is
            // exact, so the same single `next_u64` per arc yields the
            // same accept bit.
            let threshold = (p * (1u64 << 53) as f64).ceil() as u64;
            let mut head = start;
            while head < rr.len() {
                let u = rr[head];
                head += 1;
                for &w in graph.in_neighbors(u) {
                    if scratch.visited[w as usize] == mark {
                        continue;
                    }
                    if (rng.next_u64() >> 11) < threshold {
                        scratch.visited[w as usize] = mark;
                        rr.push(w);
                    }
                }
            }
        }
        DiffusionModel::IndependentCascade(weighting) => {
            let mut head = start;
            while head < rr.len() {
                let u = rr[head];
                head += 1;
                for &w in graph.in_neighbors(u) {
                    if scratch.visited[w as usize] != mark
                        && rng.gen::<f64>() < weighting.probability(graph, w, u)
                    {
                        scratch.visited[w as usize] = mark;
                        rr.push(w);
                    }
                }
            }
        }
        DiffusionModel::LinearThreshold => {
            // Reverse random walk: each node is influenced through exactly
            // one (uniform) in-neighbor in the live-edge view.
            let mut cur = root;
            loop {
                let ins = graph.in_neighbors(cur);
                if ins.is_empty() {
                    break;
                }
                let w = ins[rng.gen_range(0..ins.len())];
                if scratch.visited[w as usize] == mark {
                    break; // walked into the set: stop (cycle)
                }
                scratch.visited[w as usize] = mark;
                rr.push(w);
                cur = w;
            }
        }
    }
    rr.len() - start
}

/// Largest node count at which batch generation precomputes in-neighbor
/// bitmasks ([`RrInMasks`]): `n · ⌈n/64⌉` words of mask memory, so the
/// cap keeps the table at ≤ 2 MiB (cache-resident alongside the 64-byte
/// visited bitmap).
pub const RR_MASK_NODE_CAP: usize = 2048;

/// Per-node in-neighbor bitmasks for the mask-accelerated IC sampler.
///
/// Row `u` holds an `n`-bit mask of `in_neighbors(u)`. The BFS then
/// finds the *unvisited* in-neighbors of a node with `⌈n/64⌉` AND-NOT
/// word operations instead of one visited-array probe per arc — on the
/// paper's dense-percolation instances ~3 of 4 arc examinations hit an
/// already-visited target and consume no randomness, so skipping them
/// word-parallel removes most of the sampling loop's work.
#[derive(Clone, Debug)]
pub struct RrInMasks {
    words: usize,
    bits: Vec<u64>,
}

impl RrInMasks {
    /// Whether the masked sampler applies: uniform-probability IC (the
    /// per-arc coin must not depend on the arc) on a graph small enough
    /// for the mask table.
    pub fn applies(graph: &Graph, model: DiffusionModel) -> bool {
        graph.num_nodes() <= RR_MASK_NODE_CAP
            && matches!(
                model,
                DiffusionModel::IndependentCascade(EdgeWeighting::Uniform(_))
            )
    }

    /// Builds the mask table (one pass over the in-adjacency).
    pub fn build(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        for u in 0..n as NodeId {
            let row = &mut bits[u as usize * words..(u as usize + 1) * words];
            for &w in graph.in_neighbors(u) {
                row[w as usize / 64] |= 1u64 << (w % 64);
            }
        }
        Self { words, bits }
    }
}

/// Mask-accelerated twin of [`sample_rr_into`] for uniform-`p` IC.
///
/// Produces the **same appended run from the same RNG stream** as the
/// scalar sampler: `in_neighbors(u)` is stored ascending (CSR counting
/// sort), and ascending bit iteration over `mask[u] & !visited` visits
/// exactly the unvisited in-neighbors in that same order — and those
/// are precisely the arcs the scalar loop consumes a coin for. Word
/// snapshots stay coherent because an accepted node's bit is already
/// cleared from the snapshot and no node appears twice in a row's mask.
pub fn sample_rr_masked_into(
    masks: &RrInMasks,
    uniform_p: f64,
    root: NodeId,
    rng: &mut StdRng,
    scratch: &mut RrScratch,
    arena: &mut Vec<NodeId>,
) -> usize {
    let words = masks.words;
    let threshold = (uniform_p * (1u64 << 53) as f64).ceil() as u64;
    let visited = &mut scratch.visited_bits;
    visited.clear();
    visited.resize(words, 0);

    let start = arena.len();
    let rr = arena;
    visited[root as usize / 64] |= 1u64 << (root % 64);
    rr.push(root);

    let mut head = start;
    while head < rr.len() {
        let u = rr[head] as usize;
        head += 1;
        let row = &masks.bits[u * words..(u + 1) * words];
        for (wi, (&m, vis)) in row.iter().zip(visited.iter_mut()).enumerate() {
            let mut cand = m & !*vis;
            while cand != 0 {
                let bit = cand.trailing_zeros();
                cand &= cand - 1;
                if (rng.next_u64() >> 11) < threshold {
                    *vis |= 1u64 << bit;
                    rr.push((wi * 64) as NodeId + bit);
                }
            }
        }
    }
    rr.len() - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn rr_contains_root() {
        let g = GraphBuilder::new(4, true).build();
        let mut scratch = RrScratch::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let rr = sample_rr(&g, DiffusionModel::ic(0.5), 2, &mut rng, &mut scratch);
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_with_p1_is_full_reverse_reachability() {
        // 0 → 1 → 2: RR(2) at p=1 must be {2, 1, 0}.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = sample_rr(&g, DiffusionModel::ic(1.0), 2, &mut rng, &mut scratch);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }

    #[test]
    fn rr_with_p0_is_just_the_root() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let rr = sample_rr(&g, DiffusionModel::ic(0.0), 2, &mut rng, &mut scratch);
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_frequency_matches_edge_probability() {
        // Single arc 0 → 1 with p = 0.3: RR(1) contains 0 w.p. 0.3.
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 1);
        let g = b.build();
        let mut scratch = RrScratch::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let runs = 50_000;
        for _ in 0..runs {
            let rr = sample_rr(&g, DiffusionModel::ic(0.3), 1, &mut rng, &mut scratch);
            if rr.len() == 2 {
                hits += 1;
            }
        }
        let freq = hits as f64 / runs as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lt_rr_is_a_path() {
        let g = fair_submod_graphs::generators::erdos_renyi(30, 0.2, 7);
        let mut scratch = RrScratch::new(30);
        let mut rng = StdRng::seed_from_u64(9);
        for root in 0..30u32 {
            let rr = sample_rr(
                &g,
                DiffusionModel::LinearThreshold,
                root,
                &mut rng,
                &mut scratch,
            );
            // A reverse random walk has no duplicate nodes.
            let mut sorted = rr.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rr.len());
        }
    }

    #[test]
    fn arena_sampling_appends_identical_sets() {
        let g = fair_submod_graphs::generators::erdos_renyi(40, 0.1, 3);
        let mut scratch = RrScratch::new(40);
        // Two RNG clones from the same seed: per-call Vecs vs one arena.
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut arena: Vec<NodeId> = Vec::new();
        let mut lens = Vec::new();
        let mut separate = Vec::new();
        for root in 0..40u32 {
            separate.push(sample_rr(
                &g,
                DiffusionModel::ic(0.2),
                root,
                &mut rng_a,
                &mut scratch,
            ));
            lens.push(sample_rr_into(
                &g,
                DiffusionModel::ic(0.2),
                root,
                &mut rng_b,
                &mut scratch,
                &mut arena,
            ));
        }
        let mut offset = 0usize;
        for (rr, &len) in separate.iter().zip(&lens) {
            assert_eq!(&arena[offset..offset + len], &rr[..]);
            offset += len;
        }
        assert_eq!(offset, arena.len());
    }

    #[test]
    fn masked_sampler_replays_the_scalar_stream_exactly() {
        // Across graph shapes, densities, and probabilities, the masked
        // sampler must append the identical node run from the identical
        // RNG stream — including the final RNG state (same number of
        // draws), checked via a post-sample draw.
        for (n, density, seed) in [
            (30usize, 0.05, 1u64),
            (64, 0.2, 2),
            (130, 0.1, 3),
            (500, 0.04, 4),
        ] {
            let g = fair_submod_graphs::generators::erdos_renyi(n, density, seed);
            let masks = RrInMasks::build(&g);
            for p in [0.0, 0.05, 0.3, 1.0] {
                let mut scratch_a = RrScratch::new(n);
                let mut scratch_b = RrScratch::new(n);
                for root in (0..n as NodeId).step_by(7) {
                    let mut rng_a = StdRng::seed_from_u64(seed * 1000 + root as u64);
                    let mut rng_b = StdRng::seed_from_u64(seed * 1000 + root as u64);
                    let mut scalar: Vec<NodeId> = Vec::new();
                    let mut masked: Vec<NodeId> = Vec::new();
                    let la = sample_rr_into(
                        &g,
                        DiffusionModel::ic(p),
                        root,
                        &mut rng_a,
                        &mut scratch_a,
                        &mut scalar,
                    );
                    let lb = sample_rr_masked_into(
                        &masks,
                        p,
                        root,
                        &mut rng_b,
                        &mut scratch_b,
                        &mut masked,
                    );
                    assert_eq!(la, lb, "n={n} p={p} root={root}");
                    assert_eq!(scalar, masked, "n={n} p={p} root={root}");
                    assert_eq!(
                        rng_a.next_u64(),
                        rng_b.next_u64(),
                        "RNG streams desynced: n={n} p={p} root={root}"
                    );
                }
            }
        }
    }

    #[test]
    fn mask_applicability_is_gated_on_size_and_model() {
        let small = fair_submod_graphs::generators::erdos_renyi(40, 0.1, 3);
        assert!(RrInMasks::applies(&small, DiffusionModel::ic(0.1)));
        assert!(!RrInMasks::applies(&small, DiffusionModel::LinearThreshold));
        assert!(!RrInMasks::applies(
            &small,
            DiffusionModel::IndependentCascade(EdgeWeighting::WeightedCascade)
        ));
    }

    #[test]
    fn default_scratch_resizes_on_first_use() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut scratch = RrScratch::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = sample_rr(&g, DiffusionModel::ic(1.0), 2, &mut rng, &mut scratch);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }
}
