//! Reverse-reachable (RR) set sampling (Borgs et al., SODA 2014).
//!
//! An RR set for root `u` under the IC model is the random set of nodes
//! `w` such that `u` is reachable from `w` in the "live-edge" graph where
//! each arc `(w→x)` survives independently with probability `p(w→x)`.
//! Sampling proceeds by reverse BFS from `u`, flipping each *incoming*
//! arc's coin on first touch.
//!
//! Under the LT model, each node activates through at most one in-arc
//! (chosen uniformly when in-weights are `1/in_degree`), so an RR set is
//! a reverse random walk.

use rand::rngs::StdRng;
use rand::Rng;

use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::Graph;

use crate::models::DiffusionModel;

/// Samples one RR set for `root`; the result always contains `root`.
///
/// `visited`/`stamp` implement epoch-marking so repeated calls reuse the
/// scratch without clearing (caller keeps them across calls).
pub fn sample_rr(
    graph: &Graph,
    model: DiffusionModel,
    root: NodeId,
    rng: &mut StdRng,
    visited: &mut Vec<u32>,
    stamp: &mut u32,
    queue: &mut Vec<NodeId>,
) -> Vec<NodeId> {
    let n = graph.num_nodes();
    if visited.len() != n {
        visited.clear();
        visited.resize(n, 0);
        *stamp = 0;
    }
    *stamp = stamp.wrapping_add(1);
    if *stamp == 0 {
        visited.fill(0);
        *stamp = 1;
    }
    let mark = *stamp;

    queue.clear();
    let mut rr = Vec::with_capacity(8);
    visited[root as usize] = mark;
    queue.push(root);
    rr.push(root);

    match model {
        DiffusionModel::IndependentCascade(weighting) => {
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &w in graph.in_neighbors(u) {
                    if visited[w as usize] != mark
                        && rng.gen::<f64>() < weighting.probability(graph, w, u)
                    {
                        visited[w as usize] = mark;
                        queue.push(w);
                        rr.push(w);
                    }
                }
            }
        }
        DiffusionModel::LinearThreshold => {
            // Reverse random walk: each node is influenced through exactly
            // one (uniform) in-neighbor in the live-edge view.
            let mut cur = root;
            loop {
                let ins = graph.in_neighbors(cur);
                if ins.is_empty() {
                    break;
                }
                let w = ins[rng.gen_range(0..ins.len())];
                if visited[w as usize] == mark {
                    break; // walked into the set: stop (cycle)
                }
                visited[w as usize] = mark;
                rr.push(w);
                cur = w;
            }
        }
    }
    rr
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;
    use rand::SeedableRng;

    fn scratch(n: usize) -> (Vec<u32>, u32, Vec<NodeId>) {
        (vec![0; n], 0, Vec::new())
    }

    #[test]
    fn rr_contains_root() {
        let g = GraphBuilder::new(4, true).build();
        let (mut vis, mut stamp, mut q) = scratch(4);
        let mut rng = StdRng::seed_from_u64(1);
        let rr = sample_rr(
            &g,
            DiffusionModel::ic(0.5),
            2,
            &mut rng,
            &mut vis,
            &mut stamp,
            &mut q,
        );
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_with_p1_is_full_reverse_reachability() {
        // 0 → 1 → 2: RR(2) at p=1 must be {2, 1, 0}.
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let (mut vis, mut stamp, mut q) = scratch(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = sample_rr(
            &g,
            DiffusionModel::ic(1.0),
            2,
            &mut rng,
            &mut vis,
            &mut stamp,
            &mut q,
        );
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }

    #[test]
    fn rr_with_p0_is_just_the_root() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let (mut vis, mut stamp, mut q) = scratch(3);
        let mut rng = StdRng::seed_from_u64(3);
        let rr = sample_rr(
            &g,
            DiffusionModel::ic(0.0),
            2,
            &mut rng,
            &mut vis,
            &mut stamp,
            &mut q,
        );
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn rr_frequency_matches_edge_probability() {
        // Single arc 0 → 1 with p = 0.3: RR(1) contains 0 w.p. 0.3.
        let mut b = GraphBuilder::new(2, true);
        b.add_edge(0, 1);
        let g = b.build();
        let (mut vis, mut stamp, mut q) = scratch(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let runs = 50_000;
        for _ in 0..runs {
            let rr = sample_rr(
                &g,
                DiffusionModel::ic(0.3),
                1,
                &mut rng,
                &mut vis,
                &mut stamp,
                &mut q,
            );
            if rr.len() == 2 {
                hits += 1;
            }
        }
        let freq = hits as f64 / runs as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lt_rr_is_a_path() {
        let g = fair_submod_graphs::generators::erdos_renyi(30, 0.2, 7);
        let (mut vis, mut stamp, mut q) = scratch(30);
        let mut rng = StdRng::seed_from_u64(9);
        for root in 0..30u32 {
            let rr = sample_rr(
                &g,
                DiffusionModel::LinearThreshold,
                root,
                &mut rng,
                &mut vis,
                &mut stamp,
                &mut q,
            );
            // A reverse random walk has no duplicate nodes.
            let mut sorted = rr.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rr.len());
        }
    }
}
