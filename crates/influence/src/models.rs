//! Diffusion model specifications.
//!
//! The paper's experiments use the IC model with uniform propagation
//! probability `p(e) = 0.1` or `0.01` (Section 5.2) and note that every
//! compared algorithm extends to other triggering models (footnote 3);
//! we implement IC with three standard weightings plus the LT model.

use fair_submod_graphs::csr::NodeId;
use fair_submod_graphs::Graph;
use serde::{Deserialize, Serialize};

/// Per-arc probability/weight assignment. All variants are computable
/// from the arc endpoints, which keeps RR-set sampling allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EdgeWeighting {
    /// Uniform probability `p` on every arc (the paper's setting).
    Uniform(f64),
    /// Weighted cascade: `p(w→u) = 1 / in_degree(u)`.
    WeightedCascade,
    /// Trivalency: a deterministic hash of the arc picks
    /// 0.1 / 0.01 / 0.001.
    Trivalency,
}

impl EdgeWeighting {
    /// Probability of arc `src → dst`.
    #[inline]
    pub fn probability(&self, graph: &Graph, src: NodeId, dst: NodeId) -> f64 {
        match *self {
            EdgeWeighting::Uniform(p) => p,
            EdgeWeighting::WeightedCascade => {
                let d = graph.in_degree(dst);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            }
            EdgeWeighting::Trivalency => {
                // Deterministic arc hash → {0.1, 0.01, 0.001}.
                let h = (src as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(dst as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                match (h >> 33) % 3 {
                    0 => 0.1,
                    1 => 0.01,
                    _ => 0.001,
                }
            }
        }
    }
}

/// Diffusion process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DiffusionModel {
    /// Independent cascade with the given edge weighting.
    IndependentCascade(EdgeWeighting),
    /// Linear threshold with uniform in-edge weights `1/in_degree`.
    LinearThreshold,
}

impl DiffusionModel {
    /// The paper's default: IC with uniform `p = 0.1`.
    pub fn ic(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        DiffusionModel::IndependentCascade(EdgeWeighting::Uniform(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_graphs::GraphBuilder;

    #[test]
    fn uniform_probability() {
        let g = GraphBuilder::new(3, true).build();
        let w = EdgeWeighting::Uniform(0.1);
        assert_eq!(w.probability(&g, 0, 1), 0.1);
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 2).add_edge(1, 2);
        let g = b.build();
        let w = EdgeWeighting::WeightedCascade;
        assert!((w.probability(&g, 0, 2) - 0.5).abs() < 1e-12);
        assert_eq!(w.probability(&g, 2, 0), 0.0); // node 0 has no in-arcs
    }

    #[test]
    fn trivalency_is_deterministic_and_valid() {
        let g = GraphBuilder::new(10, true).build();
        let w = EdgeWeighting::Trivalency;
        let p1 = w.probability(&g, 3, 7);
        let p2 = w.probability(&g, 3, 7);
        assert_eq!(p1, p2);
        assert!([0.1, 0.01, 0.001].contains(&p1));
    }
}
