//! Benefit matrices `B ∈ R^{m×n}` with the paper's two constructions.
//!
//! * **RBF kernel** (Lindgren et al., 2016): `b_uv = exp(−dist(p_u, p_v))`
//!   — used for the Adult and random-blob datasets.
//! * **k-median** (Badanidiyuru et al., 2014):
//!   `b_uv = max{0, d̄ − dist(p_u, p_v)}` for a normalization distance
//!   `d̄` — used for FourSquare.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::points::PointSet;

/// Dense non-negative benefit matrix, row-major by user.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenefitMatrix {
    b: Vec<f64>,
    m: usize,
    n: usize,
}

impl BenefitMatrix {
    /// Builds from an explicit row-major matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch or negative entries.
    pub fn new(b: Vec<f64>, m: usize, n: usize) -> Self {
        assert_eq!(b.len(), m * n, "matrix shape mismatch");
        assert!(b.iter().all(|&x| x >= 0.0), "benefits must be non-negative");
        Self { b, m, n }
    }

    /// RBF-kernel benefits between `users` and `items`.
    pub fn rbf(users: &PointSet, items: &PointSet) -> Self {
        Self::from_distance(users, items, |d| (-d).exp())
    }

    /// k-median benefits `max{0, d_norm − dist}`.
    pub fn k_median(users: &PointSet, items: &PointSet, d_norm: f64) -> Self {
        assert!(d_norm > 0.0, "normalization distance must be positive");
        Self::from_distance(users, items, |d| (d_norm - d).max(0.0))
    }

    /// Generic distance-to-benefit construction.
    ///
    /// Rows are computed in parallel (each user's benefit row is an
    /// independent pure function of the point sets) and concatenated in
    /// user order, so the matrix is identical for any thread count.
    pub fn from_distance(
        users: &PointSet,
        items: &PointSet,
        benefit: impl Fn(f64) -> f64 + Sync,
    ) -> Self {
        let m = users.len();
        let n = items.len();
        let mut b = vec![0.0; m * n];
        if n > 0 {
            let rows_per_block = m.div_ceil(64).max(1);
            b.par_chunks_mut(rows_per_block * n)
                .enumerate()
                .for_each(|(blk, block)| {
                    for (j, row) in block.chunks_mut(n).enumerate() {
                        let u = blk * rows_per_block + j;
                        for (v, slot) in row.iter_mut().enumerate() {
                            let val = benefit(users.distance(u, items, v));
                            assert!(val >= 0.0, "benefit function produced a negative value");
                            *slot = val;
                        }
                    }
                });
        }
        Self { b, m, n }
    }

    /// Number of users (rows).
    pub fn num_users(&self) -> usize {
        self.m
    }

    /// Number of items (columns).
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// Benefit of item `v` for user `u`.
    #[inline]
    pub fn benefit(&self, u: usize, v: usize) -> f64 {
        self.b[u * self.n + v]
    }

    /// Row of benefits for user `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[f64] {
        &self.b[u * self.n..(u + 1) * self.n]
    }

    /// Column-partitioned shard view: a standalone matrix keeping every
    /// user row but only `members`' columns, in the given order (shard
    /// column `j` is global column `members[j]`). Entries are copied
    /// verbatim — shard benefits are bitwise equal to the centralized
    /// matrix's — which is the facility half of the DESIGN.md §8
    /// row-separability condition: `f_u(S) = max_{v∈S} b_uv` only ever
    /// reads the columns of `S`, so a shard owning a column owns every
    /// bit of that item's contribution.
    ///
    /// # Panics
    /// Panics if a member column is out of range (the oracle-level
    /// `restrict` validates first and returns typed errors instead).
    pub fn select_columns(&self, members: &[u32]) -> BenefitMatrix {
        assert!(
            members.iter().all(|&v| (v as usize) < self.n),
            "member column out of range"
        );
        let k = members.len();
        let mut b = Vec::with_capacity(self.m * k);
        for u in 0..self.m {
            let row = self.row(u);
            for &v in members {
                b.push(row[v as usize]);
            }
        }
        Self { b, m: self.m, n: k }
    }

    /// The 95th-percentile pairwise distance is a common choice for the
    /// k-median normalization `d̄`; this helper computes a quantile of
    /// the user–item distance distribution.
    pub fn distance_quantile(users: &PointSet, items: &PointSet, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let mut d: Vec<f64> = Vec::with_capacity(users.len() * items.len());
        for u in 0..users.len() {
            for v in 0..items.len() {
                d.push(users.distance(u, items, v));
            }
        }
        d.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((d.len() - 1) as f64 * q).round() as usize;
        d[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_points() -> (PointSet, PointSet) {
        let users = PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
        let items = PointSet::new(vec![0.0, 0.0, 0.0, 2.0], 2);
        (users, items)
    }

    #[test]
    fn rbf_decreases_with_distance() {
        let (u, i) = two_points();
        let b = BenefitMatrix::rbf(&u, &i);
        assert!((b.benefit(0, 0) - 1.0).abs() < 1e-12); // distance 0
        assert!(b.benefit(0, 1) < b.benefit(0, 0));
        assert!((b.benefit(0, 1) - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn k_median_clamps_at_zero() {
        let (u, i) = two_points();
        let b = BenefitMatrix::k_median(&u, &i, 1.5);
        assert!((b.benefit(0, 0) - 1.5).abs() < 1e-12);
        assert_eq!(b.benefit(0, 1), 0.0); // distance 2 > 1.5
    }

    #[test]
    fn distance_quantile_brackets() {
        let (u, i) = two_points();
        let d0 = BenefitMatrix::distance_quantile(&u, &i, 0.0);
        let d1 = BenefitMatrix::distance_quantile(&u, &i, 1.0);
        assert!(d0 <= d1);
        assert!((d0 - 0.0).abs() < 1e-12);
        assert!((d1 - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_benefits_rejected() {
        let _ = BenefitMatrix::new(vec![1.0, -0.5], 1, 2);
    }
}
