//! The facility-location utility oracle.

use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;

use crate::benefit::BenefitMatrix;

/// Facility-location utility system: `f_u(S) = max_{v∈S} b_uv`
/// (Section 5.3 of the paper).
///
/// Incremental state is the per-user current best benefit, so a
/// marginal-gain query costs `O(m)` (a scan over the item's benefit
/// column) and an insertion the same.
#[derive(Clone, Debug)]
pub struct FacilityOracle {
    benefits: BenefitMatrix,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
}

impl FacilityOracle {
    /// Builds the oracle from a benefit matrix and a group assignment of
    /// its users.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the matrix's user
    /// count or some group is empty.
    pub fn new(benefits: BenefitMatrix, group_of: Vec<u32>) -> Self {
        assert_eq!(
            benefits.num_users(),
            group_of.len(),
            "group assignment and benefit matrix disagree"
        );
        let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(0);
        assert!(c > 0, "no users");
        let mut group_sizes = vec![0usize; c];
        for &g in &group_of {
            group_sizes[g as usize] += 1;
        }
        assert!(group_sizes.iter().all(|&s| s > 0), "empty group");
        Self {
            benefits,
            group_of,
            group_sizes,
        }
    }

    /// The underlying benefit matrix.
    pub fn benefits(&self) -> &BenefitMatrix {
        &self.benefits
    }
}

impl UtilitySystem for FacilityOracle {
    /// Current best benefit per user.
    type Inner = Vec<f64>;

    fn num_items(&self) -> usize {
        self.benefits.num_items()
    }

    fn num_users(&self) -> usize {
        self.benefits.num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![0.0; self.benefits.num_users()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        let v = item as usize;
        for (u, &cur) in inner.iter().enumerate() {
            let b = self.benefits.benefit(u, v);
            if b > cur {
                out[self.group_of[u] as usize] += b - cur;
            }
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let v = item as usize;
        for (u, cur) in inner.iter_mut().enumerate() {
            let b = self.benefits.benefit(u, v);
            if b > *cur {
                *cur = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::SolutionState;

    /// 3 users (groups \[0,0,1\]), 2 items.
    fn small() -> FacilityOracle {
        let b = BenefitMatrix::new(vec![1.0, 0.2, 0.5, 0.5, 0.0, 0.9], 3, 2);
        FacilityOracle::new(b, vec![0, 0, 1])
    }

    #[test]
    fn max_semantics() {
        let o = small();
        let e = evaluate(&o, &[0]);
        // f_u: [1.0, 0.5, 0.0]; group means: [(1.0+0.5)/2, 0.0].
        assert!((e.f - 1.5 / 3.0).abs() < 1e-12);
        assert!((e.group_means[0] - 0.75).abs() < 1e-12);
        assert_eq!(e.g, 0.0);
        let e2 = evaluate(&o, &[0, 1]);
        // f_u: [1.0, 0.5, 0.9]; group means: [0.75, 0.9] → g = 0.75.
        assert!((e2.f - 2.4 / 3.0).abs() < 1e-12);
        assert!((e2.g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gains_are_improvements_only() {
        let o = small();
        let mut st = SolutionState::new(&o);
        st.insert(0);
        let mut out = [0.0; 2];
        st.gains_into(1, &mut out);
        // User 0: 0.2 < 1.0 → 0; user 1: 0.0 < 0.5 → 0; user 2: 0.9 > 0.
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn submodularity_of_max_benefit() {
        let o = small();
        let mut small_state = SolutionState::new(&o);
        let mut big_state = SolutionState::new(&o);
        big_state.insert(0);
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 0..2 {
            small_state.gains_into(v, &mut gs);
            big_state.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i]);
            }
        }
    }
}
