//! The facility-location utility oracle.

use fair_submod_core::engine::{validate_shard_members, validate_shard_partition, SolverError};
use fair_submod_core::items::ItemId;
use fair_submod_core::system::UtilitySystem;
use rayon::prelude::*;

use crate::benefit::BenefitMatrix;

/// Facility-location utility system: `f_u(S) = max_{v∈S} b_uv`
/// (Section 5.3 of the paper).
///
/// Incremental state ([`FacilityInner`]) is the per-user current best
/// benefit plus the **active-user list**: the users whose best is still
/// below their precomputed maximum attainable benefit `max_v b_uv`. A
/// saturated user (`best[u] == maxb[u]`, exact — `best` is only ever
/// assigned values from `u`'s own benefit row, so the max is reached
/// exactly) can never contribute to any future gain, so queries and
/// applies scan only the active users, in ascending id order — the
/// identical `f64` additions, in the identical order, as a full-`m`
/// scan whose saturated users contribute nothing (DESIGN.md §9). As
/// greedy rounds saturate users, per-round cost shrinks from `O(m)`
/// toward the surviving tail. [`FacilityOracle::rescan_reference`]
/// keeps the full-scan kernel for equivalence tests and benchmarks.
#[derive(Clone, Debug)]
pub struct FacilityOracle {
    benefits: BenefitMatrix,
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
    /// `max_v b_uv` per user: the saturation ceiling for the active-set
    /// filter.
    max_benefit: Vec<f64>,
}

impl FacilityOracle {
    /// Builds the oracle from a benefit matrix and a group assignment of
    /// its users.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the matrix's user
    /// count or some group is empty.
    pub fn new(benefits: BenefitMatrix, group_of: Vec<u32>) -> Self {
        assert_eq!(
            benefits.num_users(),
            group_of.len(),
            "group assignment and benefit matrix disagree"
        );
        let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(0);
        assert!(c > 0, "no users");
        let mut group_sizes = vec![0usize; c];
        for &g in &group_of {
            group_sizes[g as usize] += 1;
        }
        assert!(group_sizes.iter().all(|&s| s > 0), "empty group");
        let m = benefits.num_users();
        let max_benefit = (0..m).map(|u| row_max(&benefits, u)).collect();
        Self {
            benefits,
            group_of,
            group_sizes,
            max_benefit,
        }
    }

    /// The underlying benefit matrix.
    pub fn benefits(&self) -> &BenefitMatrix {
        &self.benefits
    }

    /// Restricts the oracle to an ascending member list: a standalone
    /// shard oracle over the column-partitioned
    /// [`BenefitMatrix::select_columns`] view, with the full user
    /// universe and group assignment passing through unchanged.
    ///
    /// Shard gains are **bit-identical** to the centralized gains of the
    /// same items under any shared member apply sequence: benefit
    /// columns are copied verbatim, and both kernels fold improvements
    /// over users in the same ascending order (the shard's recomputed
    /// saturation ceilings only drop users whose every shard column
    /// fails `b > best[u]` — contributors of exactly nothing centrally
    /// too). In particular, over a column partition the per-shard
    /// singleton gains sum to the centralized total:
    /// `Σ_s Σ_{v∈shard s} Δ_s(v|∅) = Σ_v Δ(v|∅)`.
    /// Malformed member lists are typed rejections, never panics.
    pub fn restrict(&self, members: &[ItemId]) -> Result<FacilityOracle, SolverError> {
        validate_shard_members(
            "FacilityOracle::restrict",
            self.benefits.num_items(),
            members,
        )?;
        Ok(FacilityOracle::new(
            self.benefits.select_columns(members),
            self.group_of.clone(),
        ))
    }

    /// Restricts the oracle to every shard of an exact column partition,
    /// building the shard oracles in parallel on the rayon pool. Empty,
    /// overlapping, unsorted, or out-of-range partitions are typed
    /// [`SolverError::InvalidParams`] rejections.
    pub fn partition_shards(
        &self,
        partition: &[Vec<ItemId>],
    ) -> Result<Vec<FacilityOracle>, SolverError> {
        validate_shard_partition(
            "FacilityOracle::partition_shards",
            self.benefits.num_items(),
            partition,
        )?;
        partition
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|members| self.restrict(members))
            .collect::<Vec<Result<FacilityOracle, SolverError>>>()
            .into_iter()
            .collect()
    }

    /// The full-`m`-scan kernel over the same instance — the pre-active-
    /// set implementation, bit-identical to the filtered scans (saturated
    /// users contribute exactly nothing to either) and kept as the
    /// "before" side of the incremental-equivalence tests and perfbase.
    pub fn rescan_reference(&self) -> FacilityRescanOracle {
        FacilityRescanOracle(self.clone())
    }
}

/// Largest benefit in user `u`'s row (0.0 for an all-nonpositive row,
/// matching the `f_u(∅) = 0` baseline).
fn row_max(benefits: &BenefitMatrix, u: usize) -> f64 {
    let mut best = 0.0f64;
    for v in 0..benefits.num_items() {
        let b = benefits.benefit(u, v);
        if b > best {
            best = b;
        }
    }
    best
}

/// Incremental evaluation state of [`FacilityOracle`]: per-user current
/// best benefits plus the shrinking active-user list.
#[derive(Clone, Debug)]
pub struct FacilityInner {
    /// Current best benefit per user (all `m`, saturated included, so
    /// downstream reads stay O(1)).
    best: Vec<f64>,
    /// Users with `best[u] < max_v b_uv`, ascending — the only users a
    /// future gain can come from.
    active: Vec<u32>,
}

impl UtilitySystem for FacilityOracle {
    type Inner = FacilityInner;

    fn num_items(&self) -> usize {
        self.benefits.num_items()
    }

    fn num_users(&self) -> usize {
        self.benefits.num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        let m = self.benefits.num_users();
        FacilityInner {
            best: vec![0.0; m],
            // Users whose ceiling is 0.0 can never gain: inactive from
            // the start, exactly as a full scan would never add for them.
            active: (0..m as u32)
                .filter(|&u| self.max_benefit[u as usize] > 0.0)
                .collect(),
        }
    }

    /// Filtered scan: only still-improvable users, ascending. The `f64`
    /// additions performed are exactly those a full-`m` ascending scan
    /// performs (saturated users fail `b > cur` there: no benefit can
    /// exceed their ceiling), in the same order — bit-identical sums.
    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        let v = item as usize;
        for &u in &inner.active {
            let u = u as usize;
            let cur = inner.best[u];
            let b = self.benefits.benefit(u, v);
            if b > cur {
                out[self.group_of[u] as usize] += b - cur;
            }
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let v = item as usize;
        for &u in &inner.active {
            let u = u as usize;
            let b = self.benefits.benefit(u, v);
            if b > inner.best[u] {
                inner.best[u] = b;
            }
        }
        let best = &inner.best;
        let maxb = &self.max_benefit;
        inner
            .active
            .retain(|&u| best[u as usize] < maxb[u as usize]);
    }

    fn gain_kernel(&self) -> &'static str {
        "active_set"
    }

    /// Advisory footprint for the byte-budgeted instance store
    /// (DESIGN.md §11): the dense benefit matrix dominates; the group
    /// assignment and saturation ceilings ride along.
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.benefits.num_users() * self.benefits.num_items() * size_of::<f64>()
            + self.group_of.len() * size_of::<u32>()
            + self.group_sizes.len() * size_of::<usize>()
            + self.max_benefit.len() * size_of::<f64>()
    }
}

/// The pre-active-set [`FacilityOracle`] kernel: every query scans all
/// `m` users. See [`FacilityOracle::rescan_reference`].
#[derive(Clone, Debug)]
pub struct FacilityRescanOracle(FacilityOracle);

impl UtilitySystem for FacilityRescanOracle {
    /// Current best benefit per user.
    type Inner = Vec<f64>;

    fn num_items(&self) -> usize {
        self.0.benefits.num_items()
    }

    fn num_users(&self) -> usize {
        self.0.benefits.num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.0.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![0.0; self.0.benefits.num_users()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        let v = item as usize;
        for (u, &cur) in inner.iter().enumerate() {
            let b = self.0.benefits.benefit(u, v);
            if b > cur {
                out[self.0.group_of[u] as usize] += b - cur;
            }
        }
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        fair_submod_core::system::parallel_group_gains(self, inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        let v = item as usize;
        for (u, cur) in inner.iter_mut().enumerate() {
            let b = self.0.benefits.benefit(u, v);
            if b > *cur {
                *cur = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_core::metrics::evaluate;
    use fair_submod_core::system::SolutionState;

    /// 3 users (groups \[0,0,1\]), 2 items.
    fn small() -> FacilityOracle {
        let b = BenefitMatrix::new(vec![1.0, 0.2, 0.5, 0.5, 0.0, 0.9], 3, 2);
        FacilityOracle::new(b, vec![0, 0, 1])
    }

    #[test]
    fn max_semantics() {
        let o = small();
        let e = evaluate(&o, &[0]);
        // f_u: [1.0, 0.5, 0.0]; group means: [(1.0+0.5)/2, 0.0].
        assert!((e.f - 1.5 / 3.0).abs() < 1e-12);
        assert!((e.group_means[0] - 0.75).abs() < 1e-12);
        assert_eq!(e.g, 0.0);
        let e2 = evaluate(&o, &[0, 1]);
        // f_u: [1.0, 0.5, 0.9]; group means: [0.75, 0.9] → g = 0.75.
        assert!((e2.f - 2.4 / 3.0).abs() < 1e-12);
        assert!((e2.g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gains_are_improvements_only() {
        let o = small();
        let mut st = SolutionState::new(&o);
        st.insert(0);
        let mut out = [0.0; 2];
        st.gains_into(1, &mut out);
        // User 0: 0.2 < 1.0 → 0; user 1: 0.0 < 0.5 → 0; user 2: 0.9 > 0.
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn active_set_matches_rescan_reference_bitwise() {
        let o = small();
        let rescan = o.rescan_reference();
        let mut inc = SolutionState::new(&o);
        let mut refc = SolutionState::new(&rescan);
        let mut gi = [0.0; 2];
        let mut gr = [0.0; 2];
        for &step in &[1u32, 0] {
            for v in 0..2u32 {
                inc.gains_into(v, &mut gi);
                refc.gains_into(v, &mut gr);
                assert_eq!(gi.map(f64::to_bits), gr.map(f64::to_bits), "item {v}");
            }
            inc.insert(step);
            refc.insert(step);
            assert_eq!(inc.group_sums(), refc.group_sums());
        }
    }

    #[test]
    fn saturated_users_leave_the_active_list() {
        let o = small();
        let mut inner = o.init_inner();
        assert_eq!(inner.active, vec![0, 1, 2]);
        // Item 0 gives users 0 and 1 their row maxima (1.0 and 0.5);
        // user 2's maximum (0.9) sits on item 1.
        o.apply(&mut inner, 0);
        assert_eq!(inner.active, vec![2]);
        o.apply(&mut inner, 1);
        assert!(inner.active.is_empty());
        let mut out = [0.0; 2];
        o.group_gains(&inner, 0, &mut out);
        o.group_gains(&inner, 1, &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }

    /// 6 users in two groups, 8 items, deterministic pseudo-random rows.
    fn wide() -> FacilityOracle {
        let mut vals = Vec::with_capacity(6 * 8);
        let mut state = 0x9E37_79B9u64;
        for _ in 0..6 * 8 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            vals.push((state >> 33) as f64 / (1u64 << 31) as f64);
        }
        FacilityOracle::new(BenefitMatrix::new(vals, 6, 8), vec![0, 1, 0, 1, 0, 1])
    }

    #[test]
    fn restricted_columns_match_central_gains_bitwise() {
        let o = wide();
        let members: Vec<u32> = vec![1, 3, 4, 7];
        let shard = o.restrict(&members).expect("valid members");
        assert_eq!(shard.num_items(), 4);
        assert_eq!(shard.num_users(), o.num_users());
        assert_eq!(shard.group_sizes(), o.group_sizes());
        let mut central = SolutionState::new(&o);
        let mut restricted = SolutionState::new(&shard);
        let mut through = [0.0; 2];
        let mut direct = [0.0; 2];
        for &pick in &[2u32, 0, 3] {
            for (local, &global) in members.iter().enumerate() {
                restricted.gains_into(local as u32, &mut through);
                central.gains_into(global, &mut direct);
                assert_eq!(
                    through.map(f64::to_bits),
                    direct.map(f64::to_bits),
                    "member {global}"
                );
            }
            restricted.insert(pick);
            central.insert(members[pick as usize]);
            assert_eq!(restricted.group_sums(), central.group_sums());
        }
    }

    #[test]
    fn shard_singleton_gains_sum_to_centralized_total() {
        let o = wide();
        let shards = o
            .partition_shards(&[vec![0, 5], vec![1, 2, 7], vec![3, 4, 6]])
            .expect("valid partition");
        let mut central_state = SolutionState::new(&o);
        let mut central_total = [0.0; 2];
        let mut gains = [0.0; 2];
        for v in 0..8u32 {
            central_state.gains_into(v, &mut gains);
            central_total[0] += gains[0];
            central_total[1] += gains[1];
        }
        let mut shard_total = [0.0; 2];
        for shard in &shards {
            let mut state = SolutionState::new(shard);
            for v in 0..shard.num_items() as u32 {
                state.gains_into(v, &mut gains);
                shard_total[0] += gains[0];
                shard_total[1] += gains[1];
            }
        }
        assert!((central_total[0] - shard_total[0]).abs() < 1e-12);
        assert!((central_total[1] - shard_total[1]).abs() < 1e-12);
    }

    #[test]
    fn partition_shards_rejects_malformed_partitions() {
        let o = wide();
        assert!(o.partition_shards(&[]).is_err());
        assert!(o.partition_shards(&[(0..8).collect(), vec![]]).is_err());
        assert!(o
            .partition_shards(&[(0..5).collect(), (4..8).collect()])
            .is_err());
        assert!(o.partition_shards(&[(0..7).collect(), vec![9]]).is_err());
        assert!(o.partition_shards(&[(0..7).collect()]).is_err());
        assert!(o.restrict(&[]).is_err());
        assert!(o.restrict(&[4, 2]).is_err());
    }

    #[test]
    fn submodularity_of_max_benefit() {
        let o = small();
        let mut small_state = SolutionState::new(&o);
        let mut big_state = SolutionState::new(&o);
        big_state.insert(0);
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 0..2 {
            small_state.gains_into(v, &mut gs);
            big_state.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i]);
            }
        }
    }
}
