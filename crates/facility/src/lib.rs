//! # fair-submod-facility
//!
//! Facility-location (FL) substrate: point sets, benefit matrices (RBF
//! kernel and k-median shifted distance, the two constructions of
//! Section 5.3 of the paper), Gaussian-blob generators, and
//! [`FacilityOracle`] — the
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem)
//! implementation for FL instances.
//!
//! In the paper's FL formulation, user `u`'s utility of an item set `S`
//! is `max_{v∈S} b_uv` for a non-negative benefit matrix `B`, so `f` is
//! the average best benefit and `g` the minimum average group benefit.

pub mod benefit;
pub mod generators;
pub mod oracle;
pub mod points;

pub use benefit::BenefitMatrix;
pub use oracle::FacilityOracle;
pub use points::PointSet;
