//! # fair-submod-facility
//!
//! Facility-location (FL) substrate: point sets, benefit matrices (RBF
//! kernel and k-median shifted distance, the two constructions of
//! Section 5.3 of the paper), Gaussian-blob generators, and
//! [`FacilityOracle`] — the
//! [`UtilitySystem`](fair_submod_core::system::UtilitySystem)
//! implementation for FL instances.
//!
//! In the paper's FL formulation, user `u`'s utility of an item set `S`
//! is `max_{v∈S} b_uv` for a non-negative benefit matrix `B`, so `f` is
//! the average best benefit and `g` the minimum average group benefit.
//!
//! ## Example
//!
//! Fair facility location on a hand-built benefit matrix — the flow of
//! `examples/fair_facility.rs`, minus the Gaussian-blob generator.
//! Facility 0 serves group 0 (users 0–1), facility 2 serves group 1
//! (users 2–3); BSM-TSGreedy must cover both:
//!
//! ```
//! use fair_submod_core::prelude::*;
//! use fair_submod_facility::{BenefitMatrix, FacilityOracle};
//!
//! // 4 users (rows) × 3 candidate facilities (columns), two groups.
//! let benefits = vec![
//!     1.0, 0.2, 0.0, // user 0 (group 0)
//!     0.9, 0.1, 0.0, // user 1 (group 0)
//!     0.0, 0.3, 0.8, // user 2 (group 1)
//!     0.1, 0.4, 0.7, // user 3 (group 1)
//! ];
//! let oracle = FacilityOracle::new(BenefitMatrix::new(benefits, 4, 3), vec![0, 0, 1, 1]);
//!
//! let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(2, 0.5));
//! let eval = evaluate(&oracle, &out.items);
//!
//! assert_eq!(out.items.len(), 2);
//! // Both groups receive positive average benefit.
//! assert!(eval.f > 0.0 && eval.g > 0.0);
//! ```

pub mod benefit;
pub mod generators;
pub mod oracle;
pub mod points;

pub use benefit::BenefitMatrix;
pub use oracle::FacilityOracle;
pub use points::PointSet;
