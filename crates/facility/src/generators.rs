//! Point-cloud generators for facility-location experiments.
//!
//! The paper's random FL datasets place each group in an isotropic
//! Gaussian blob in `R^5`; the Adult stand-in uses a Gaussian mixture in
//! `R^6`; FourSquare stand-ins use 2-D "city" clouds. All generators are
//! seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::points::PointSet;

/// Specification of one isotropic Gaussian blob.
#[derive(Clone, Debug)]
pub struct BlobSpec {
    /// Blob center (defines the dimension).
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub std_dev: f64,
    /// Number of points to draw.
    pub count: usize,
}

/// Samples a union of Gaussian blobs; returns the points (blob by blob,
/// in spec order) and the blob index of each point.
pub fn gaussian_blobs(specs: &[BlobSpec], seed: u64) -> (PointSet, Vec<u32>) {
    assert!(!specs.is_empty());
    let dim = specs[0].center.len();
    assert!(specs.iter().all(|s| s.center.len() == dim), "mixed dims");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::new();
    let mut labels = Vec::new();
    for (b, spec) in specs.iter().enumerate() {
        assert!(spec.std_dev >= 0.0);
        let normal = Normal::new(0.0, spec.std_dev.max(f64::MIN_POSITIVE)).unwrap();
        for _ in 0..spec.count {
            for d in 0..dim {
                coords.push(spec.center[d] + normal.sample(&mut rng));
            }
            labels.push(b as u32);
        }
    }
    (PointSet::new(coords, dim), labels)
}

/// Evenly spreads blob centers on the unit hypersphere scaled by
/// `spread` — a convenient way to build `c` separated groups.
pub fn spread_centers(c: usize, dim: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..c)
        .map(|_| {
            let mut v: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            v.iter_mut().for_each(|x| *x *= spread / norm);
            v
        })
        .collect()
}

/// Uniform points in an axis-aligned box `[lo, hi]^dim` — city-like 2-D
/// clouds for the FourSquare stand-ins.
pub fn uniform_box(count: usize, dim: usize, lo: f64, hi: f64, seed: u64) -> PointSet {
    assert!(hi > lo);
    let mut rng = StdRng::seed_from_u64(seed);
    let coords = (0..count * dim)
        .map(|_| lo + (hi - lo) * rng.gen::<f64>())
        .collect();
    PointSet::new(coords, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_requested_counts_and_labels() {
        let specs = vec![
            BlobSpec {
                center: vec![0.0, 0.0],
                std_dev: 0.1,
                count: 10,
            },
            BlobSpec {
                center: vec![5.0, 5.0],
                std_dev: 0.1,
                count: 20,
            },
        ];
        let (points, labels) = gaussian_blobs(&specs, 1);
        assert_eq!(points.len(), 30);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 10);
        // Blob 1 points are near (5,5).
        let p = points.point(15);
        assert!((p[0] - 5.0).abs() < 1.0 && (p[1] - 5.0).abs() < 1.0);
    }

    #[test]
    fn centers_have_requested_spread() {
        let cs = spread_centers(4, 3, 2.0, 9);
        for c in &cs {
            let norm = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_box_stays_in_bounds() {
        let p = uniform_box(50, 2, -1.0, 3.0, 4);
        for i in 0..50 {
            for &x in p.point(i) {
                assert!((-1.0..=3.0).contains(&x));
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_box(10, 2, 0.0, 1.0, 5);
        let b = uniform_box(10, 2, 0.0, 1.0, 5);
        assert_eq!(a.point(3), b.point(3));
    }
}
