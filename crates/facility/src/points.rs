//! Fixed-dimension point sets in row-major storage.

use serde::{Deserialize, Serialize};

/// `len` points in `R^dim`, row-major.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PointSet {
    coords: Vec<f64>,
    dim: usize,
}

impl PointSet {
    /// Builds from row-major coordinates.
    ///
    /// # Panics
    /// Panics if `coords.len()` is not a multiple of `dim`.
    pub fn new(coords: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate count {} not a multiple of dim {}",
            coords.len(),
            dim
        );
        Self { coords, dim }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Euclidean distance between points `i` and `j` of possibly
    /// different sets (must share dimensionality).
    pub fn distance(&self, i: usize, other: &PointSet, j: usize) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        euclidean(self.point(i), other.point(j))
    }

    /// Selects a subset of points by index.
    pub fn subset(&self, indices: &[usize]) -> PointSet {
        let mut coords = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            coords.extend_from_slice(self.point(i));
        }
        PointSet::new(coords, self.dim)
    }
}

/// Euclidean distance between coordinate slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_access_and_distance() {
        let p = PointSet::new(vec![0.0, 0.0, 3.0, 4.0], 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.point(1), &[3.0, 4.0]);
        assert!((p.distance(0, &p, 1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn subset_extracts_rows() {
        let p = PointSet::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        let s = p.subset(&[2, 0]);
        assert_eq!(s.point(0), &[5.0, 6.0]);
        assert_eq!(s.point(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_coords_panic() {
        let _ = PointSet::new(vec![1.0, 2.0, 3.0], 2);
    }
}
