//! Socket-level tests for the event-driven server's concurrency
//! behavior — keep-alive reuse, pipelining, request-size and slowloris
//! limits, admission-control shedding, tenant quotas — plus the
//! blocking-vs-event response-equivalence suite: both servers drive
//! the same [`ServiceState::handle`], so an identical request script
//! must produce byte-identical bodies once volatile timing fields are
//! normalized.

use std::io::{BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use serde::json::{obj, parse_bytes, Value};

use fair_submod_service::http::{read_response, Request, Response};
use fair_submod_service::{
    serve_blocking, serve_with, EventConfig, EventServer, InstanceConfig, QuotaConfig, ServiceState,
};

fn quick_state() -> Arc<ServiceState> {
    Arc::new(ServiceState::new(4, InstanceConfig::default().quick()))
}

/// Event-driven daemon with explicit knobs, serving for the rest of
/// the process.
fn spawn_event(state: Arc<ServiceState>, config: EventConfig) -> SocketAddr {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        serve_with("127.0.0.1:0", state, config, move |addr| {
            tx.send(addr).expect("report bound address");
        })
        .expect("daemon serves");
    });
    rx.recv().expect("daemon binds")
}

/// Thread-per-connection reference daemon over the same state layer.
fn spawn_blocking(state: Arc<ServiceState>) -> SocketAddr {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        serve_blocking("127.0.0.1:0", state, move |addr| {
            tx.send(addr).expect("report bound address");
        })
        .expect("daemon serves");
    });
    rx.recv().expect("daemon binds")
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Value {
        parse_bytes(&self.body).unwrap_or_else(|e| {
            panic!(
                "non-JSON body ({e}): {:?}",
                String::from_utf8_lossy(&self.body)
            )
        })
    }
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
}

fn read_reply(stream: &TcpStream) -> Reply {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, headers, body) = read_response(&mut reader).unwrap();
    Reply {
        status,
        headers,
        body,
    }
}

fn request(stream: &mut TcpStream, method: &str, path: &str, body: Option<&str>) -> Reply {
    request_h(stream, method, path, body, &[])
}

fn request_h(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> Reply {
    send_request(stream, method, path, body.unwrap_or(""), extra_headers);
    read_reply(stream)
}

const SOLVE_BODY: &str = r#"{
    "dataset": {"kind": "rand_mc", "c": 2, "n": 60},
    "substrate": "coverage",
    "solver": "BSM-TSGreedy",
    "params": {"k": 3, "tau": 0.8}
}"#;

#[test]
fn keep_alive_connection_reuses_instance_cache() {
    let addr = spawn_event(quick_state(), EventConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();

    // Two solves over ONE connection: the socket stays open between
    // them (keep-alive), and the second hits the instance cache.
    let first = request(&mut conn, "POST", "/solve", Some(SOLVE_BODY));
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(first.header("x-instance-cache"), Some("miss"));
    assert_eq!(first.header("connection"), Some("keep-alive"));

    let second = request(&mut conn, "POST", "/solve", Some(SOLVE_BODY));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-instance-cache"), Some("hit"));

    // The daemon saw exactly one connection for both requests.
    let health = request(&mut conn, "GET", "/healthz", None);
    assert_eq!(
        health.json().get("requests").and_then(Value::as_usize),
        Some(3),
        "all three requests flowed over the same kept-alive socket"
    );
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let addr = spawn_event(quick_state(), EventConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();

    // Four requests in ONE write, no reads in between: a pipelined
    // burst. Responses must come back in request order even though the
    // solve takes far longer than the metadata reads behind it.
    let mut burst = Vec::new();
    for (method, path, body) in [
        ("GET", "/healthz", ""),
        ("POST", "/solve", SOLVE_BODY),
        ("GET", "/registry", ""),
        ("GET", "/instances", ""),
    ] {
        burst.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    conn.write_all(&burst).unwrap();
    conn.flush().unwrap();

    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut replies = Vec::new();
    for _ in 0..4 {
        let (status, headers, body) = read_response(&mut reader).unwrap();
        replies.push(Reply {
            status,
            headers,
            body,
        });
    }
    assert!(replies.iter().all(|r| r.status == 200));
    // Body shapes identify which endpoint answered at each position.
    assert_eq!(
        replies[0].json().get("status").and_then(Value::as_str),
        Some("ok"),
        "healthz first"
    );
    assert_eq!(
        replies[1].json().get("solver").and_then(Value::as_str),
        Some("BSM-TSGreedy"),
        "solve report second"
    );
    assert!(
        replies[2]
            .json()
            .get("solvers")
            .and_then(Value::as_arr)
            .is_some(),
        "registry third"
    );
    assert_eq!(
        replies[3].json().get("len").and_then(Value::as_usize),
        Some(1),
        "instances view fourth, already reflecting the pipelined solve"
    );
}

#[test]
fn oversized_request_body_draws_413_and_close() {
    let addr = spawn_event(quick_state(), EventConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();

    // The Content-Length alone convicts the request: no body bytes are
    // ever sent, and the server must not wait for them.
    conn.write_all(b"POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let reply = read_reply(&conn);
    assert_eq!(reply.status, 413);
    let error = reply.json();
    let message = error.get("error").and_then(Value::as_str).unwrap();
    assert!(message.contains("999999999"), "echoes the offending length");
    assert_eq!(reply.header("connection"), Some("close"));

    // The server closed the connection after answering.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

#[test]
fn idle_and_slow_header_connections_are_reaped() {
    let config = EventConfig {
        idle_timeout: Duration::from_millis(150),
        read_timeout: Duration::from_millis(250),
        ..EventConfig::default()
    };
    let addr = spawn_event(quick_state(), config);

    // A connection that never sends a byte is reaped at idle_timeout.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).expect("server closes, not us");
    assert!(buf.is_empty(), "reaped without a response");

    // A slowloris connection trickling header bytes is reaped at
    // read_timeout even though it is never strictly idle.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    slow.write_all(b"GET /healthz HT").unwrap();
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(60));
        // Keep feeding bytes so last_activity keeps advancing.
        let _ = slow.write_all(b"T");
    }
    let mut buf = Vec::new();
    slow.read_to_end(&mut buf).expect("server closes, not us");
    assert!(buf.is_empty(), "slowloris reaped mid-head, no response");

    // A well-behaved connection on the same server still works.
    let mut ok = TcpStream::connect(addr).unwrap();
    assert_eq!(request(&mut ok, "GET", "/healthz", None).status, 200);
}

#[test]
fn saturated_admission_queue_sheds_503_with_retry_after() {
    // One worker, one queue slot. The handler holds the worker on a
    // gate so saturation is deterministic: request 1 executes (gate
    // held), request 2 fills the queue, request 3 must be shed.
    let state = quick_state();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let handler = move |request: &Request| -> Response {
        if request.path == "/gate" {
            started_tx.send(()).ok();
            gate_rx.lock().unwrap().recv().ok();
            return Response::json(200, &obj([("gate", Value::Str("open".into()))]));
        }
        state.handle(request)
    };
    let config = EventConfig {
        worker_threads: 1,
        queue_capacity: 1,
        ..EventConfig::default()
    };
    let server = EventServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run(Arc::new(handler)).unwrap());

    let mut held = TcpStream::connect(addr).unwrap();
    send_request(&mut held, "GET", "/gate", "", &[]);
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("worker picked up the gated request");

    // The worker is now provably busy; this one parks in the queue.
    let mut queued = TcpStream::connect(addr).unwrap();
    send_request(&mut queued, "GET", "/gate", "", &[]);
    std::thread::sleep(Duration::from_millis(200));

    // Queue full: shed on the loop thread, no worker involved.
    let mut shed = TcpStream::connect(addr).unwrap();
    let reply = request(&mut shed, "GET", "/healthz", None);
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(reply
        .json()
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("overloaded"));

    // Releasing the gate drains the held and queued requests in order.
    gate_tx.send(()).unwrap();
    gate_tx.send(()).unwrap();
    assert_eq!(read_reply(&held).status, 200);
    assert_eq!(read_reply(&queued).status, 200);
}

#[test]
fn tenant_solve_rate_quota_draws_429_with_retry_after() {
    let quotas = QuotaConfig {
        solve_rate: 1e-9, // effectively never refills inside the test
        solve_burst: 2.0,
        ..QuotaConfig::unlimited()
    };
    let state =
        Arc::new(ServiceState::new(4, InstanceConfig::default().quick()).with_quotas(quotas));
    let addr = spawn_event(state, EventConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();
    let alice = [("X-Tenant", "alice")];

    // Burst of 2 admits two solves, then the bucket is dry.
    for _ in 0..2 {
        let ok = request_h(&mut conn, "POST", "/solve", Some(SOLVE_BODY), &alice);
        assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
    }
    let refused = request_h(&mut conn, "POST", "/solve", Some(SOLVE_BODY), &alice);
    assert_eq!(refused.status, 429);
    assert!(refused.header("retry-after").is_some());
    let body = refused.json();
    assert_eq!(body.get("tenant").and_then(Value::as_str), Some("alice"));
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("rate limit"));

    // Another tenant has an independent bucket, and GET endpoints are
    // never rate-limited.
    let bob = [("X-Tenant", "bob")];
    let other = request_h(&mut conn, "POST", "/solve", Some(SOLVE_BODY), &bob);
    assert_eq!(other.status, 200);
    assert_eq!(other.header("x-instance-cache"), Some("hit"));
    assert_eq!(request(&mut conn, "GET", "/healthz", None).status, 200);
}

#[test]
fn tenant_instance_occupancy_quota_draws_429() {
    let quotas = QuotaConfig {
        max_instances: 1,
        ..QuotaConfig::unlimited()
    };
    let state =
        Arc::new(ServiceState::new(4, InstanceConfig::default().quick()).with_quotas(quotas));
    let addr = spawn_event(state, EventConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();
    let alice = [("X-Tenant", "alice")];

    // First instance fills alice's quota.
    let first = request_h(&mut conn, "POST", "/solve", Some(SOLVE_BODY), &alice);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-instance-cache"), Some("miss"));

    // A second, distinct recipe would need a second store slot: 429.
    let other_recipe = SOLVE_BODY.replace("\"n\": 60", "\"n\": 80");
    let refused = request_h(&mut conn, "POST", "/solve", Some(&other_recipe), &alice);
    assert_eq!(refused.status, 429);
    let body = refused.json();
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("instance quota"));
    assert_eq!(body.get("limit").and_then(Value::as_usize), Some(1));

    // Cache hits on the held instance stay free; other tenants are
    // unaffected by alice's occupancy.
    let again = request_h(&mut conn, "POST", "/solve", Some(SOLVE_BODY), &alice);
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-instance-cache"), Some("hit"));
    let bob = request_h(
        &mut conn,
        "POST",
        "/solve",
        Some(&other_recipe),
        &[("X-Tenant", "bob")],
    );
    assert_eq!(bob.status, 200, "{}", String::from_utf8_lossy(&bob.body));
}

// ---------------------------------------------------------------------------
// Blocking-vs-event response equivalence
// ---------------------------------------------------------------------------

/// Zeroes wall-clock and process-level fields (`seconds` in reports,
/// `uptime_seconds` in healthz, `build_seconds` and the self-reported
/// `peak_rss_mib` in the instances view) anywhere in the document;
/// everything else in a response is deterministic given an identical
/// request history.
fn normalize(value: &mut Value) {
    match value {
        Value::Obj(pairs) => {
            for (key, val) in pairs.iter_mut() {
                if key == "seconds"
                    || key == "uptime_seconds"
                    || key == "build_seconds"
                    || key == "peak_rss_mib"
                {
                    *val = Value::Num(0.0);
                } else {
                    normalize(val);
                }
            }
        }
        Value::Arr(items) => items.iter_mut().for_each(normalize),
        _ => {}
    }
}

/// One observed response: status, the deterministic headers, and the
/// normalized re-serialized body bytes.
#[derive(PartialEq, Debug)]
struct Observation {
    label: String,
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

fn observe(label: &str, reply: Reply) -> Observation {
    const KEPT: [&str; 5] = [
        "content-type",
        "x-instance-cache",
        "x-instance-key",
        "x-instance-cache-hits",
        "retry-after",
    ];
    let headers = reply
        .headers
        .iter()
        .filter(|(n, _)| KEPT.contains(&n.as_str()))
        .cloned()
        .collect();
    let mut body = reply.json();
    normalize(&mut body);
    Observation {
        label: label.into(),
        status: reply.status,
        headers,
        body: body.to_body_bytes(),
    }
}

/// Replays the whole endpoint surface against `addr` — happy paths,
/// every error class, a full anytime-session lifecycle, and the
/// parser-level rejections — on a fresh connection per step so both
/// server architectures see the same connection pattern.
fn one_exchange(
    out: &mut Vec<Observation>,
    addr: SocketAddr,
    label: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let reply = request_h(&mut conn, method, path, body, &[("X-Tenant", "eq")]);
    out.push(observe(label, reply));
}

fn drive_surface(addr: SocketAddr) -> Vec<Observation> {
    let mut out = Vec::new();
    macro_rules! one {
        ($label:expr, $method:expr, $path:expr, $body:expr) => {
            one_exchange(&mut out, addr, $label, $method, $path, $body)
        };
    }

    one!("healthz", "GET", "/healthz", None);
    one!("registry", "GET", "/registry", None);
    one!("solve-miss", "POST", "/solve", Some(SOLVE_BODY));
    one!("solve-hit", "POST", "/solve", Some(SOLVE_BODY));
    one!(
        "solve-unknown-solver",
        "POST",
        "/solve",
        Some(&SOLVE_BODY.replace("BSM-TSGreedy", "NoSuchSolver"))
    );
    one!(
        "solve-capability-gap",
        "POST",
        "/solve",
        Some(
            &SOLVE_BODY
                .replace("\"c\": 2", "\"c\": 4")
                .replace("BSM-TSGreedy", "SMSC")
        )
    );
    one!("solve-bad-json", "POST", "/solve", Some("{\"nope\": 1}"));
    one!(
        "batch",
        "POST",
        "/batch",
        Some(
            r#"{
                "dataset": {"kind": "rand_mc", "c": 2, "n": 60},
                "substrate": "coverage",
                "solvers": ["Greedy", "Saturate"],
                "ks": [2, 3],
                "taus": [0.8]
            }"#
        )
    );
    one!("instances", "GET", "/instances", None);
    one!("not-found", "GET", "/nope", None);
    one!("method-not-allowed", "POST", "/healthz", None);

    // Anytime lifecycle: open (2-round chunks on a k=6 greedy solve
    // cannot finish in one), resume to completion, then a stale resume.
    // Handles are deterministic (`anyt-<key>-<serial>`), so they —
    // and therefore the resume requests themselves — must be identical
    // across the two servers; the byte-compare of the open response
    // proves it.
    let open_body = r#"{
        "dataset": {"kind": "rand_mc", "c": 2, "n": 60, "seed_offset": 7},
        "substrate": "coverage",
        "solver": "Greedy",
        "params": {"k": 6, "tau": 0.5},
        "max_rounds": 2
    }"#;
    let mut conn = TcpStream::connect(addr).unwrap();
    let opened = request_h(&mut conn, "POST", "/solve/anytime", Some(open_body), &[]);
    let handle = opened
        .json()
        .get("session")
        .and_then(Value::as_str)
        .expect("k=6 in 2-round chunks parks a session")
        .to_string();
    out.push(observe("anytime-open", opened));
    for round in 0..8 {
        let resume = format!(r#"{{"session": "{handle}", "max_rounds": 2}}"#);
        let reply = request_h(&mut conn, "POST", "/solve/anytime", Some(&resume), &[]);
        let done = reply.json().get("done").and_then(Value::as_bool) == Some(true);
        out.push(observe(&format!("anytime-resume-{round}"), reply));
        if done {
            break;
        }
    }
    let stale = format!(r#"{{"session": "{handle}"}}"#);
    one!("anytime-stale", "POST", "/solve/anytime", Some(&stale));

    // Parser-level rejections, produced by the I/O layer rather than
    // the handler — the servers must still agree byte-for-byte.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    out.push(observe("oversize-413", read_reply(&conn)));
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET\r\n\r\n").unwrap();
    out.push(observe("malformed-400", read_reply(&conn)));

    out
}

#[test]
fn blocking_and_event_servers_answer_byte_identically() {
    let blocking = drive_surface(spawn_blocking(quick_state()));
    let event = drive_surface(spawn_event(quick_state(), EventConfig::default()));

    assert_eq!(blocking.len(), event.len(), "same number of exchanges");
    for (b, e) in blocking.iter().zip(event.iter()) {
        assert_eq!(b.label, e.label);
        assert_eq!(b.status, e.status, "{}: status diverged", b.label);
        assert_eq!(b.headers, e.headers, "{}: headers diverged", b.label);
        assert_eq!(
            b.body,
            e.body,
            "{}: bodies diverged\nblocking: {}\nevent:    {}",
            b.label,
            String::from_utf8_lossy(&b.body),
            String::from_utf8_lossy(&e.body)
        );
    }
}
