//! End-to-end integration test: spawn the daemon on an ephemeral port,
//! round-trip the endpoints over a real TCP connection, and prove that
//! a repeated-recipe solve skips rematerialization (observable through
//! the `X-Instance-Cache` header and the `/instances` counters).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};

use serde::json::{parse_bytes, Value};

use fair_submod_service::http::read_response;
use fair_submod_service::{serve, InstanceConfig, ServiceState};

/// Starts the daemon on 127.0.0.1:0 in a background thread and returns
/// the bound address. The thread serves for the rest of the process.
fn spawn_daemon() -> SocketAddr {
    let state = Arc::new(ServiceState::new(4, InstanceConfig::default().quick()));
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        serve("127.0.0.1:0", state, move |addr| {
            tx.send(addr).expect("report bound address");
        })
        .expect("daemon serves");
    });
    rx.recv().expect("daemon binds")
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Value {
        parse_bytes(&self.body).unwrap_or_else(|e| {
            panic!(
                "non-JSON body ({e}): {:?}",
                String::from_utf8_lossy(&self.body)
            )
        })
    }
}

/// One request on a (kept-alive) connection; the response is parsed by
/// the crate's own [`read_response`] so the wire format lives in one
/// place.
fn request(stream: &mut TcpStream, method: &str, path: &str, body: Option<&str>) -> Reply {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, headers, body) = read_response(&mut reader).unwrap();
    Reply {
        status,
        headers,
        body,
    }
}

const SOLVE_BODY: &str = r#"{
    "dataset": {"kind": "rand_mc", "c": 2, "n": 60},
    "substrate": "coverage",
    "solver": "BSM-TSGreedy",
    "params": {"k": 3, "tau": 0.8}
}"#;

#[test]
fn daemon_round_trips_and_caches_instances() {
    let addr = spawn_daemon();
    let mut conn = TcpStream::connect(addr).unwrap();

    // /healthz
    let health = request(&mut conn, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let body = health.json();
    assert_eq!(body.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(body.get("solvers").and_then(Value::as_usize), Some(16));
    assert_eq!(body.get("instances").and_then(Value::as_usize), Some(0));

    // /registry lists every solver with capability flags, including
    // the session-layer `resumable` flag per solver.
    let registry = request(&mut conn, "GET", "/registry", None);
    assert_eq!(registry.status, 200);
    let solvers = registry.json();
    let solvers = solvers.get("solvers").and_then(Value::as_arr).unwrap();
    assert_eq!(solvers.len(), 16);
    let names: Vec<&str> = solvers
        .iter()
        .filter_map(|v| v.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"Greedy") && names.contains(&"BSM-Saturate"));
    let resumable_of = |name: &str| {
        solvers
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|v| v.get("capabilities"))
            .and_then(|c| c.get("resumable"))
            .and_then(Value::as_bool)
            .unwrap_or_else(|| panic!("{name} must expose a resumable flag"))
    };
    for native in ["Greedy", "Saturate", "BSM-Saturate", "BSM-TSGreedy"] {
        assert!(resumable_of(native), "{native} has a native session");
    }
    for one_shot in ["MWU", "Random", "SMSC", "BruteForce"] {
        assert!(!resumable_of(one_shot), "{one_shot} is one-shot");
    }
    // The pre-session flags are still present alongside it.
    assert!(solvers.iter().any(|v| {
        v.get("name").and_then(Value::as_str) == Some("SMSC")
            && v.get("capabilities")
                .and_then(|c| c.get("requires_two_groups"))
                .and_then(Value::as_bool)
                == Some(true)
    }));

    // First solve: instance cache miss, full report.
    let first = request(&mut conn, "POST", "/solve", Some(SOLVE_BODY));
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(first.header("x-instance-cache"), Some("miss"));
    let key = first.header("x-instance-key").unwrap().to_string();
    let report = first.json();
    assert_eq!(
        report.get("solver").and_then(Value::as_str),
        Some("BSM-TSGreedy")
    );
    let items = report.get("items").and_then(Value::as_arr).unwrap();
    assert!(!items.is_empty() && items.len() <= 3);
    let f = report.get("f").and_then(Value::as_f64).unwrap();
    assert!(f > 0.0 && f <= 1.0);

    // Second solve on the same recipe (different solver, different
    // params): must hit the instance cache — no rematerialization.
    let second_body = SOLVE_BODY
        .replace("BSM-TSGreedy", "Greedy")
        .replace("\"k\": 3", "\"k\": 5");
    let second = request(&mut conn, "POST", "/solve", Some(&second_body));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-instance-cache"), Some("hit"));
    assert_eq!(second.header("x-instance-key"), Some(key.as_str()));
    assert_eq!(
        second.header("x-instance-cache-hits"),
        Some("1"),
        "cumulative store hits exposed in headers"
    );

    // /instances shows one registered, built instance with one hit.
    let instances = request(&mut conn, "GET", "/instances", None);
    assert_eq!(instances.status, 200);
    let body = instances.json();
    assert_eq!(body.get("len").and_then(Value::as_usize), Some(1));
    assert_eq!(body.get("hits").and_then(Value::as_usize), Some(1));
    assert_eq!(body.get("misses").and_then(Value::as_usize), Some(1));
    let rows = body.get("instances").and_then(Value::as_arr).unwrap();
    assert_eq!(rows[0].get("key").and_then(Value::as_str), Some(&key[..]));
    assert_eq!(rows[0].get("built").and_then(Value::as_bool), Some(true));

    // /batch reuses the same cached instance for a whole grid.
    let batch_body = r#"{
        "dataset": {"kind": "rand_mc", "c": 2, "n": 60},
        "substrate": "coverage",
        "solvers": ["Greedy", "Saturate"],
        "ks": [2, 3],
        "taus": [0.8]
    }"#;
    let batch = request(&mut conn, "POST", "/batch", Some(batch_body));
    assert_eq!(
        batch.status,
        200,
        "{}",
        String::from_utf8_lossy(&batch.body)
    );
    assert_eq!(batch.header("x-instance-cache"), Some("hit"));
    let body = batch.json();
    assert_eq!(body.get("ok_cells").and_then(Value::as_usize), Some(4));

    // A fresh connection still sees the warm cache (state is shared
    // across connections, not per-connection).
    let mut conn2 = TcpStream::connect(addr).unwrap();
    let third = request(&mut conn2, "POST", "/solve", Some(SOLVE_BODY));
    assert_eq!(third.status, 200);
    assert_eq!(third.header("x-instance-cache"), Some("hit"));

    // Bad requests come back as JSON errors, and the daemon survives.
    let bad = request(&mut conn2, "POST", "/solve", Some("{\"nope\": 1}"));
    assert_eq!(bad.status, 400);
    assert!(bad.json().get("error").is_some());
    let after = request(&mut conn2, "GET", "/healthz", None);
    assert_eq!(after.status, 200);
}

#[test]
fn anytime_sessions_chunk_across_requests_and_match_one_shot() {
    let addr = spawn_daemon();
    let mut conn = TcpStream::connect(addr).unwrap();

    // The one-shot answer the chunked session must reproduce.
    let one_shot_body = r#"{
        "dataset": {"kind": "rand_mc", "c": 2, "n": 60, "seed_offset": 7},
        "substrate": "coverage",
        "solver": "Greedy",
        "params": {"k": 6, "tau": 0.5}
    }"#;
    let one_shot = request(&mut conn, "POST", "/solve", Some(one_shot_body));
    assert_eq!(one_shot.status, 200);
    let one_shot = one_shot.json();

    // Open an anytime session, 2 rounds per chunk: k = 6 greedy rounds
    // cannot finish in the first chunk.
    let open_body = r#"{
        "dataset": {"kind": "rand_mc", "c": 2, "n": 60, "seed_offset": 7},
        "substrate": "coverage",
        "solver": "Greedy",
        "params": {"k": 6, "tau": 0.5},
        "max_rounds": 2
    }"#;
    let first = request(&mut conn, "POST", "/solve/anytime", Some(open_body));
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(first.header("x-instance-cache"), Some("hit"));
    let first = first.json();
    assert_eq!(first.get("done").and_then(Value::as_bool), Some(false));
    let handle = first
        .get("session")
        .and_then(Value::as_str)
        .expect("unfinished chunk returns a session handle")
        .to_string();
    // The handle is instance-store-friendly: it embeds the cache key.
    let progress = first.get("progress").and_then(Value::as_arr).unwrap();
    assert_eq!(progress.len(), 2, "one row per round");
    assert_eq!(progress[0].get("round").and_then(Value::as_usize), Some(1));
    assert!(progress[0]
        .get("group_sums")
        .and_then(Value::as_arr)
        .is_some());
    assert!(progress[0]
        .get("objective")
        .and_then(Value::as_f64)
        .is_some());
    // Objectives are monotone for greedy rounds.
    let objectives: Vec<f64> = progress
        .iter()
        .filter_map(|p| p.get("objective").and_then(Value::as_f64))
        .collect();
    assert!(objectives[1] >= objectives[0]);

    // Resume (even from another connection) until done.
    let mut conn2 = TcpStream::connect(addr).unwrap();
    let mut report = None;
    for _ in 0..8 {
        let resume_body = format!(r#"{{"session": "{handle}", "max_rounds": 2}}"#);
        let next = request(&mut conn2, "POST", "/solve/anytime", Some(&resume_body));
        assert_eq!(next.status, 200);
        let next = next.json();
        if next.get("done").and_then(Value::as_bool) == Some(true) {
            report = next.get("report").cloned();
            break;
        }
    }
    let report = report.expect("session finishes within the chunk budget");
    // The chunked result is the one-shot result (items, objective,
    // oracle calls; seconds differ by construction).
    assert_eq!(report.get("items"), one_shot.get("items"));
    assert_eq!(report.get("objective"), one_shot.get("objective"));
    assert_eq!(report.get("oracle_calls"), one_shot.get("oracle_calls"));
    assert_eq!(report.get("f"), one_shot.get("f"));

    // The handle died with the final report.
    let stale = request(
        &mut conn2,
        "POST",
        "/solve/anytime",
        Some(&format!(r#"{{"session": "{handle}"}}"#)),
    );
    assert_eq!(stale.status, 404);

    // Non-resumable solvers complete in one chunk by construction.
    let one_chunk = request(
        &mut conn,
        "POST",
        "/solve/anytime",
        Some(&one_shot_body.replace("Greedy", "MWU")),
    );
    assert_eq!(one_chunk.status, 200);
    let one_chunk = one_chunk.json();
    assert_eq!(one_chunk.get("done").and_then(Value::as_bool), Some(true));
    assert!(one_chunk.get("report").is_some());
    assert!(one_chunk.get("session").is_none());
}

/// A report body with the wall-clock field removed — everything else
/// must be byte-identical between the sharded and centralized paths.
fn sans_seconds(body: &[u8]) -> String {
    let Value::Obj(pairs) = parse_bytes(body).unwrap_or_else(|e| panic!("non-JSON body: {e}"))
    else {
        panic!("report bodies are objects")
    };
    Value::Obj(pairs.into_iter().filter(|(k, _)| k != "seconds").collect()).to_compact_string()
}

/// A GreeDi recipe over the same dataset, centralized (`shards: None`)
/// or served through the sharded tier (`shards: Some(p)`). The
/// in-params shard count is fixed so the centralized notes match the
/// sharded run's.
fn greedi_body(shards: Option<usize>) -> String {
    let top = shards.map_or(String::new(), |p| format!("\"shards\": {p},"));
    format!(
        r#"{{
            "dataset": {{"kind": "rand_mc", "c": 2, "n": 48, "seed_offset": 11}},
            "substrate": "coverage",
            "solver": "GreeDi",
            {top}
            "params": {{"k": 4, "tau": 0.8, "shards": 3}}
        }}"#
    )
}

#[test]
fn sharded_solves_round_trip_over_http() {
    let addr = spawn_daemon();
    let mut conn = TcpStream::connect(addr).unwrap();

    // The centralized GreeDi reference answer.
    let central = request(&mut conn, "POST", "/solve", Some(&greedi_body(None)));
    assert_eq!(
        central.status,
        200,
        "{}",
        String::from_utf8_lossy(&central.body)
    );

    // Sharded solve of the same recipe: byte-identical modulo seconds.
    // The central entry is warm but the three shard entries are not, so
    // the combined cache status is a miss.
    let sharded = request(&mut conn, "POST", "/solve", Some(&greedi_body(Some(3))));
    assert_eq!(
        sharded.status,
        200,
        "{}",
        String::from_utf8_lossy(&sharded.body)
    );
    assert_eq!(sharded.header("x-instance-cache"), Some("miss"));
    assert_eq!(sans_seconds(&sharded.body), sans_seconds(&central.body));

    // Repeating the recipe reuses every per-shard cache entry — the
    // combined status only reports a hit when central AND all shards
    // skip rematerialization.
    let again = request(&mut conn, "POST", "/solve", Some(&greedi_body(Some(3))));
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-instance-cache"), Some("hit"));
    assert_eq!(sans_seconds(&again.body), sans_seconds(&central.body));

    // /instances shows the central entry plus the three shard entries.
    let instances = request(&mut conn, "GET", "/instances", None);
    assert_eq!(instances.status, 200);
    assert_eq!(
        instances.json().get("len").and_then(Value::as_usize),
        Some(4)
    );

    // Malformed shard counts are typed 4xx JSON, and the daemon
    // survives them.
    for bad_body in [
        greedi_body(Some(0)),
        greedi_body(Some(65)),
        greedi_body(Some(49)), // more shards than items
        greedi_body(Some(2)).replace("GreeDi", "Greedy"), // non-mergeable solver
    ] {
        let bad = request(&mut conn, "POST", "/solve", Some(&bad_body));
        assert_eq!(bad.status, 400, "{bad_body}");
        assert_eq!(
            bad.json().get("kind").and_then(Value::as_str),
            Some("invalid_params"),
            "{bad_body}"
        );
    }
    let alive = request(&mut conn, "GET", "/healthz", None);
    assert_eq!(alive.status, 200);

    // Sharded anytime: one shard per chunked round, resumable across
    // connections, and the final report equals the one-shot sharded
    // solve (which equals the centralized one, above).
    let open_body = greedi_body(Some(3)).replacen('{', "{\"max_rounds\": 2,", 1);
    let first = request(&mut conn, "POST", "/solve/anytime", Some(&open_body));
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    let first = first.json();
    assert_eq!(first.get("done").and_then(Value::as_bool), Some(false));
    let handle = first
        .get("session")
        .and_then(Value::as_str)
        .expect("unfinished sharded chunk returns a session handle")
        .to_string();

    let mut conn2 = TcpStream::connect(addr).unwrap();
    let mut report = None;
    for _ in 0..8 {
        let resume_body = format!(r#"{{"session": "{handle}", "max_rounds": 2}}"#);
        let next = request(&mut conn2, "POST", "/solve/anytime", Some(&resume_body));
        assert_eq!(next.status, 200);
        let next = next.json();
        if next.get("done").and_then(Value::as_bool) == Some(true) {
            report = next.get("report").cloned();
            break;
        }
    }
    let report = report.expect("sharded session finishes within the chunk budget");
    let one_shot = parse_bytes(&central.body).unwrap();
    assert_eq!(report.get("items"), one_shot.get("items"));
    assert_eq!(report.get("f"), one_shot.get("f"));
    assert_eq!(report.get("oracle_calls"), one_shot.get("oracle_calls"));
}
