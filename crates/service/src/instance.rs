//! A cached solve instance: one materialized dataset recipe with its
//! substrate oracle, canonically keyed so identical requests share one
//! build.
//!
//! Materializing a [`DatasetRecipe`] and constructing the oracle on top
//! (dominating-set incidence, RR-set sampling, benefit matrices) is by
//! far the most expensive part of answering a solve request — often
//! orders of magnitude more work than the greedy selection itself. The
//! service therefore builds each `(recipe, substrate, build knobs)`
//! combination once, identified by the FNV-1a hash of its canonical
//! JSON ([`canonical_key`]), and answers every later request against
//! the shared, immutable [`Instance`].

use std::sync::Arc;
use std::time::Instant;

use serde::json::{obj, Value};
use serde::ToJson;

use fair_submod_bench::args::ExpArgs;
use fair_submod_bench::scenario::{BuiltDataset, DatasetRecipe, SubstrateSpec};
use fair_submod_core::engine::{DynUtilitySystem, ErasedSystem, SolverError};
use fair_submod_core::items::ItemId;
use fair_submod_core::metrics::{evaluate, Evaluation};
use fair_submod_coverage::CoverageOracle;
use fair_submod_facility::FacilityOracle;
use fair_submod_influence::oracle::RisOracle;
use fair_submod_influence::{monte_carlo_evaluate, DiffusionModel};

/// Build-time knobs that shape a materialized instance (and therefore
/// participate in its cache key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceConfig {
    /// RR sets for influence oracles.
    pub rr_sets: usize,
    /// Monte-Carlo runs per influence evaluation.
    pub mc_runs: usize,
    /// Node count of the Pokec stand-in.
    pub pokec_nodes: usize,
}

impl Default for InstanceConfig {
    /// The experiment harness defaults (see [`ExpArgs`]).
    fn default() -> Self {
        let args = ExpArgs::default();
        Self {
            rr_sets: args.rr_sets,
            mc_runs: args.mc_runs,
            pokec_nodes: args.pokec_nodes,
        }
    }
}

impl InstanceConfig {
    /// Smoke-sized knobs, mirroring the harness `--quick` caps.
    pub fn quick(mut self) -> Self {
        self.pokec_nodes = self.pokec_nodes.min(20_000);
        self.mc_runs = self.mc_runs.min(1_000);
        self.rr_sets = self.rr_sets.min(5_000);
        self
    }

    fn exp_args(&self) -> ExpArgs {
        ExpArgs {
            pokec_nodes: self.pokec_nodes,
            mc_runs: self.mc_runs,
            rr_sets: self.rr_sets,
            ..ExpArgs::default()
        }
    }
}

/// The canonical identity of an instance: its compact canonical JSON
/// and the 64-bit FNV-1a hash of that JSON (hex), which is the cache
/// key. Two requests share an instance iff their canonical JSON —
/// recipe, substrate, and the build knobs — is byte-identical.
pub fn canonical_key(
    recipe: &DatasetRecipe,
    substrate: &SubstrateSpec,
    cfg: &InstanceConfig,
) -> (String, String) {
    let canonical = obj([
        ("dataset", recipe.to_json()),
        ("substrate", substrate.to_json()),
        ("rr_sets", Value::Num(cfg.rr_sets as f64)),
        ("mc_runs", Value::Num(cfg.mc_runs as f64)),
        ("pokec_nodes", Value::Num(cfg.pokec_nodes as f64)),
    ])
    .to_compact_string();
    (format!("{:016x}", fnv1a64(canonical.as_bytes())), canonical)
}

/// The canonical identity of one shard of a sharded solve: the central
/// instance's canonical JSON suffixed with the shard coordinates and
/// the partition seed, hashed the same way as [`canonical_key`]. Two
/// requests share a shard oracle iff they share the central instance
/// *and* ask for the same `(shard, num_shards, seed)` cut — a different
/// shard count or partition seed selects different member columns, so
/// it must (and does) key a different cache slot.
pub fn shard_canonical_key(
    central_canonical: &str,
    shard: usize,
    num_shards: usize,
    seed: u64,
) -> (String, String) {
    let canonical = format!("{central_canonical}#shard={shard}/{num_shards}@seed={seed}");
    (format!("{:016x}", fnv1a64(canonical.as_bytes())), canonical)
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Upper bound on client-requested `rand_mc` node counts. The SBM's
/// expected edge count grows as `p·n²` (`p_in = 0.1`), so an unbounded
/// `n` would let one request allocate the daemon to death — the
/// paper's own RAND sizes are 500/100, so 20k leaves two orders of
/// magnitude of headroom while keeping the worst-case build bounded.
pub const MAX_RAND_MC_NODES: usize = 20_000;

/// Rejects recipe/substrate combinations the builders would panic on
/// (or whose size would exhaust memory), so client input can never
/// take down the daemon.
pub fn validate_request(recipe: &DatasetRecipe, substrate: &SubstrateSpec) -> Result<(), String> {
    let needs_graph = !matches!(substrate, SubstrateSpec::Facility);
    if needs_graph != recipe.is_graph() {
        return Err(format!(
            "substrate {substrate:?} does not match dataset {recipe:?}"
        ));
    }
    match recipe {
        DatasetRecipe::RandMc { c, n, .. } => {
            if ![2, 4].contains(c) {
                return Err(format!("rand_mc is defined for c in {{2, 4}} (got {c})"));
            }
            if *n < 4 * c {
                return Err(format!("rand_mc needs n >= 4c (got n = {n}, c = {c})"));
            }
            if *n > MAX_RAND_MC_NODES {
                return Err(format!(
                    "rand_mc n is capped at {MAX_RAND_MC_NODES} for the service (got {n})"
                ));
            }
        }
        DatasetRecipe::FacebookLike { c } => {
            if ![2, 4].contains(c) {
                return Err(format!(
                    "facebook_like is partitioned into 2 or 4 groups (got {c})"
                ));
            }
        }
        DatasetRecipe::RandFl { c, .. } => {
            if ![2, 3].contains(c) {
                return Err(format!("rand_fl is defined for c in {{2, 3}} (got {c})"));
            }
        }
        _ => {}
    }
    if let SubstrateSpec::Influence { p } = substrate {
        if !(0.0..=1.0).contains(p) {
            return Err(format!("influence_p must be in [0, 1] (got {p})"));
        }
    }
    Ok(())
}

enum InstanceOracle {
    Coverage(CoverageOracle),
    Influence {
        oracle: RisOracle,
        model: DiffusionModel,
    },
    Facility(FacilityOracle),
    /// A shard-restricted view built by [`Instance::build_shard`]: the
    /// substrate's own owned restriction (same concrete oracle type,
    /// local ids), type-erased because the service only ever hands it
    /// to a [`fair_submod_core::engine::ShardedInstance`].
    Shard(Arc<dyn DynUtilitySystem>),
}

/// One materialized, immutable solve instance: the built dataset, its
/// substrate oracle, and everything needed to re-evaluate solutions
/// (Monte-Carlo forward simulation for influence, oracle-exact
/// otherwise). Shareable across threads — solvers only take `&self`.
pub struct Instance {
    /// The recipe this instance was built from.
    pub recipe: DatasetRecipe,
    /// The substrate the oracle serves.
    pub substrate: SubstrateSpec,
    /// Human-readable dataset name.
    pub dataset_name: String,
    /// Ground-set size `n`.
    pub num_items: usize,
    /// User count `m`.
    pub num_users: usize,
    /// Group count `c`.
    pub num_groups: usize,
    /// Wall-clock seconds spent materializing dataset + oracle.
    pub build_seconds: f64,
    dataset: Arc<BuiltDataset>,
    oracle: InstanceOracle,
    mc_runs: usize,
    seed: u64,
}

impl Instance {
    /// Materializes the dataset and oracle. Call
    /// [`validate_request`] first — this panics on combinations the
    /// builders reject.
    pub fn build(recipe: DatasetRecipe, substrate: SubstrateSpec, cfg: &InstanceConfig) -> Self {
        let start = Instant::now();
        let args = cfg.exp_args();
        let dataset = recipe.build(&args);
        let seed = recipe.seed();
        let oracle = match (&substrate, &dataset) {
            (SubstrateSpec::Coverage, BuiltDataset::Graph(d)) => {
                InstanceOracle::Coverage(d.coverage_oracle())
            }
            (SubstrateSpec::Influence { p }, BuiltDataset::Graph(d)) => {
                let model = DiffusionModel::ic(*p);
                InstanceOracle::Influence {
                    oracle: d.ris_oracle(model, cfg.rr_sets, seed ^ 0x11),
                    model,
                }
            }
            (SubstrateSpec::Facility, BuiltDataset::Points(d)) => {
                InstanceOracle::Facility(d.oracle())
            }
            _ => panic!("validate_request admits only matching substrate/dataset pairs"),
        };
        let system: &dyn DynUtilitySystem = match &oracle {
            InstanceOracle::Coverage(o) => o,
            InstanceOracle::Influence { oracle, .. } => oracle,
            InstanceOracle::Facility(o) => o,
            InstanceOracle::Shard(_) => unreachable!("build never produces shard oracles"),
        };
        let (num_items, num_users, num_groups) = (
            system.dyn_num_items(),
            system.dyn_num_users(),
            system.dyn_num_groups(),
        );
        Self {
            recipe,
            substrate,
            dataset_name: dataset.name().to_string(),
            num_items,
            num_users,
            num_groups,
            build_seconds: start.elapsed().as_secs_f64(),
            dataset: Arc::new(dataset),
            oracle,
            mc_runs: cfg.mc_runs,
            seed,
        }
    }

    /// The substrate's owned restriction to an ascending member list —
    /// the same concrete oracle type over local ids, bitwise equal to
    /// the central oracle on the members' rows (see DESIGN.md §8).
    /// Serves both the per-shard builds and the GreeDi merge phase.
    /// Malformed member lists (empty, unsorted, out of range) are typed
    /// [`SolverError::InvalidParams`] rejections from the substrate.
    pub fn restrict_system(
        &self,
        members: &[ItemId],
    ) -> Result<Arc<dyn DynUtilitySystem>, SolverError> {
        match &self.oracle {
            InstanceOracle::Coverage(o) => Ok(Arc::new(o.restrict(members)?)),
            InstanceOracle::Influence { oracle, .. } => Ok(Arc::new(oracle.restrict(members)?)),
            InstanceOracle::Facility(o) => Ok(Arc::new(o.restrict(members)?)),
            InstanceOracle::Shard(_) => Err(SolverError::InvalidParams {
                solver: "ShardedInstance".into(),
                message: "shard instances cannot be restricted further".into(),
            }),
        }
    }

    /// One shard of `central`: shard `shard` of `num_shards` holding
    /// exactly `members` (ascending global ids), sharing the central
    /// instance's dataset through its `Arc`. The restriction itself is
    /// the substrate-owned one, so shard gains are bitwise equal to the
    /// central oracle's on the shard's items.
    pub fn build_shard(
        central: &Instance,
        shard: usize,
        num_shards: usize,
        members: &[ItemId],
    ) -> Result<Self, SolverError> {
        let start = Instant::now();
        let system = central.restrict_system(members)?;
        let num_users = system.dyn_num_users();
        let num_groups = system.dyn_num_groups();
        Ok(Self {
            recipe: central.recipe.clone(),
            substrate: central.substrate.clone(),
            dataset_name: format!("{}[shard {shard}/{num_shards}]", central.dataset_name),
            num_items: members.len(),
            num_users,
            num_groups,
            build_seconds: start.elapsed().as_secs_f64(),
            dataset: Arc::clone(&central.dataset),
            oracle: InstanceOracle::Shard(system),
            mc_runs: central.mc_runs,
            seed: central.seed,
        })
    }

    /// The type-erased shard oracle, when this instance is a shard view
    /// built by [`Instance::build_shard`].
    pub fn shard_system(&self) -> Option<Arc<dyn DynUtilitySystem>> {
        match &self.oracle {
            InstanceOracle::Shard(system) => Some(Arc::clone(system)),
            _ => None,
        }
    }

    /// The type-erased oracle solvers run on.
    pub fn system(&self) -> &dyn DynUtilitySystem {
        match &self.oracle {
            InstanceOracle::Coverage(o) => o,
            InstanceOracle::Influence { oracle, .. } => oracle,
            InstanceOracle::Facility(o) => o,
            InstanceOracle::Shard(system) => system.as_ref(),
        }
    }

    /// Re-evaluates a solution the way the experiment harness does:
    /// oracle-exact for coverage/facility, Monte-Carlo forward
    /// simulation (with the instance's canonical seed) for influence.
    pub fn evaluate(&self, items: &[ItemId]) -> Evaluation {
        self.evaluate_capped(items, None)
    }

    /// [`Instance::evaluate`] with an optional cap on the Monte-Carlo
    /// run count, mirroring the scenario runner's `mc_runs_cap`
    /// grid-job field (no effect on oracle-exact substrates).
    pub fn evaluate_capped(&self, items: &[ItemId], mc_runs_cap: Option<usize>) -> Evaluation {
        match (&self.oracle, &*self.dataset) {
            (InstanceOracle::Coverage(o), _) => evaluate(o, items),
            (InstanceOracle::Facility(o), _) => evaluate(o, items),
            // Shard views evaluate oracle-exactly over local ids; the
            // service re-evaluates final solutions on the central
            // instance, so this only serves diagnostics.
            (InstanceOracle::Shard(system), _) => evaluate(&ErasedSystem(system.as_ref()), items),
            (InstanceOracle::Influence { model, .. }, BuiltDataset::Graph(d)) => {
                let mc_runs = mc_runs_cap.map_or(self.mc_runs, |cap| self.mc_runs.min(cap));
                monte_carlo_evaluate(
                    &d.graph,
                    *model,
                    &d.groups,
                    items,
                    mc_runs,
                    self.seed ^ 0x22,
                )
            }
            _ => unreachable!("influence oracles are only built over graphs"),
        }
    }

    /// Advisory resident footprint of the instance's oracle, in bytes —
    /// what the byte-budgeted store evicts against (DESIGN.md §11).
    /// Purely advisory: 0 means the substrate does not report one.
    pub fn approx_bytes(&self) -> usize {
        self.system().dyn_approx_bytes()
    }

    /// The `/instances` summary row for this instance.
    pub fn summary_json(&self) -> Value {
        obj([
            ("dataset", Value::Str(self.dataset_name.clone())),
            ("substrate", self.substrate.to_json()),
            ("num_items", Value::Num(self.num_items as f64)),
            ("num_users", Value::Num(self.num_users as f64)),
            ("num_groups", Value::Num(self.num_groups as f64)),
            ("build_seconds", Value::Num(self.build_seconds)),
            ("approx_bytes", Value::Num(self.approx_bytes() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_recipe() -> DatasetRecipe {
        DatasetRecipe::RandMc {
            c: 2,
            n: 60,
            seed_offset: 0,
        }
    }

    #[test]
    fn canonical_keys_are_deterministic_and_discriminating() {
        let cfg = InstanceConfig::default();
        let (k1, c1) = canonical_key(&tiny_recipe(), &SubstrateSpec::Coverage, &cfg);
        let (k2, c2) = canonical_key(&tiny_recipe(), &SubstrateSpec::Coverage, &cfg);
        assert_eq!(k1, k2);
        assert_eq!(c1, c2);
        let (k3, _) = canonical_key(&tiny_recipe(), &SubstrateSpec::Influence { p: 0.05 }, &cfg);
        assert_ne!(k1, k3, "substrate must discriminate");
        let (k4, _) = canonical_key(
            &DatasetRecipe::RandMc {
                c: 2,
                n: 61,
                seed_offset: 0,
            },
            &SubstrateSpec::Coverage,
            &cfg,
        );
        assert_ne!(k1, k4, "recipe parameters must discriminate");
    }

    #[test]
    fn validation_rejects_builder_panics() {
        let cfg = SubstrateSpec::Coverage;
        assert!(validate_request(&tiny_recipe(), &cfg).is_ok());
        assert!(validate_request(
            &DatasetRecipe::RandMc {
                c: 3,
                n: 60,
                seed_offset: 0
            },
            &cfg
        )
        .is_err());
        assert!(validate_request(
            &DatasetRecipe::RandFl {
                c: 5,
                seed_offset: 0
            },
            &SubstrateSpec::Facility
        )
        .is_err());
        // A build-size bomb is rejected up front, not attempted.
        assert!(validate_request(
            &DatasetRecipe::RandMc {
                c: 2,
                n: MAX_RAND_MC_NODES + 1,
                seed_offset: 0
            },
            &cfg
        )
        .is_err());
        // Substrate/dataset family mismatch.
        assert!(validate_request(&tiny_recipe(), &SubstrateSpec::Facility).is_err());
        assert!(validate_request(&tiny_recipe(), &SubstrateSpec::Influence { p: 1.5 }).is_err());
    }

    #[test]
    fn built_instance_solves_and_evaluates() {
        let instance = Instance::build(
            tiny_recipe(),
            SubstrateSpec::Coverage,
            &InstanceConfig::default().quick(),
        );
        assert_eq!(instance.num_items, 60);
        assert_eq!(instance.num_groups, 2);
        let eval = instance.evaluate(&[0, 1, 2]);
        assert!(eval.f > 0.0 && eval.f <= 1.0);
        assert_eq!(eval.group_means.len(), 2);
        assert!(instance.summary_json().get("dataset").is_some());
    }
}
