//! The event-driven server: a single readiness loop owning every
//! connection, with handler execution pushed onto a bounded worker
//! pool.
//!
//! ## Shape
//!
//! One thread runs [`EventServer::run`]: it polls a [`polling::Poller`]
//! over the listener, a completion-wake pipe, a shutdown pipe, and all
//! live connections (nonblocking, slab-indexed). Each connection is a
//! small state machine — bytes in `read_buf`, the incremental
//! [`crate::http::parse_request`] carving requests off its front,
//! encoded responses accumulating in `write_buf` — so ten thousand
//! idle keep-alive connections cost ten thousand slab entries, not ten
//! thousand parked threads (the blocking [`crate::http::Server`]'s
//! failure mode).
//!
//! Parsed requests are dispatched to a [`WorkerPool`] with a **bounded
//! queue**: when the queue is at its high-water mark the request is
//! answered `503` + `Retry-After` immediately from the loop thread —
//! overload sheds cheap early rejections instead of stacking latency
//! onto everything behind it. Responses complete out of order across
//! connections but are emitted **in request order within** each
//! connection (HTTP/1.1 pipelining), via per-request sequence numbers
//! and a small reorder buffer.
//!
//! Robustness machinery: per-connection idle and read-header deadlines
//! driven by a hashed timer wheel (a slowloris trickle keeps resetting
//! activity but never finishes a head, so the head deadline still
//! fires), a request-body cap answered with `413`, a connection cap at
//! accept, and graceful shutdown (stop accepting, drain in-flight,
//! then join the pool) triggered by a [`ShutdownHandle`] — which can be
//! wired to SIGINT/SIGTERM through `polling::signals`.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use polling::{Interest, Poller};
use serde::json::Value;

use crate::http::{
    encode_response, parse_request, payload_too_large, ParseError, Request, Response,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use crate::workers::WorkerPool;

/// Tuning knobs of the event-driven server.
#[derive(Clone, Debug)]
pub struct EventConfig {
    /// Handler threads; `0` picks a small default from the detected
    /// parallelism (at least 2, so one long solve cannot starve
    /// health checks).
    pub worker_threads: usize,
    /// Bounded handler-queue depth — the admission-control high-water
    /// mark. Submissions past it are answered `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Maximum simultaneously open connections; accepts beyond it are
    /// immediately closed.
    pub max_connections: usize,
    /// A connection with no request in progress is closed after this
    /// long without traffic.
    pub idle_timeout: Duration,
    /// A connection must deliver a complete request head within this
    /// long of its first byte — the slowloris guard (trickling bytes
    /// resets idleness but never this deadline).
    pub read_timeout: Duration,
    /// Maximum pipelined requests in flight per connection; reading
    /// pauses (TCP backpressure) until responses drain.
    pub max_pipeline: usize,
    /// On shutdown, how long to wait for in-flight requests to finish
    /// and flush before forcing connections closed.
    pub drain_timeout: Duration,
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            worker_threads: 0,
            queue_capacity: 256,
            max_connections: 4096,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(30),
            max_pipeline: 32,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl EventConfig {
    fn resolved_threads(&self) -> usize {
        if self.worker_threads > 0 {
            self.worker_threads
        } else {
            rayon::current_num_threads().max(2)
        }
    }
}

/// Counters the loop maintains; all monotonic, readable from any
/// thread (exposed for tests, the CLI, and load-shedding diagnosis).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections refused because `max_connections` was reached.
    pub rejected_at_capacity: AtomicU64,
    /// Requests handed to the worker pool.
    pub dispatched: AtomicU64,
    /// Requests answered `503` because the handler queue was full.
    pub shed_503: AtomicU64,
    /// Requests answered `413` for an oversized body.
    pub oversize_413: AtomicU64,
    /// Connections answered `400` for a malformed request.
    pub malformed_400: AtomicU64,
    /// Connections reaped by the idle/read deadline.
    pub reaped: AtomicU64,
}

impl ServerMetrics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Requests a graceful stop of a running [`EventServer`] (also the
/// hook point for signal handlers, via [`Self::notify_fd`]).
pub struct ShutdownHandle {
    pipe: UnixStream,
}

impl ShutdownHandle {
    /// Asks the loop to stop accepting, drain in-flight work, and
    /// return. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        let _ = (&self.pipe).write(&[b'q']);
    }

    /// The raw descriptor a byte must be written to in order to wake
    /// the loop into shutdown — pass to
    /// [`polling::signals::notify_on_terminate`] to make SIGINT and
    /// SIGTERM drain gracefully.
    pub fn notify_fd(&self) -> std::os::fd::RawFd {
        self.pipe.as_raw_fd()
    }

    /// A second handle to the same loop.
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            pipe: self.pipe.try_clone()?,
        })
    }
}

// Poller tokens: three fixed ones, then one per connection slot.
const TOKEN_LISTENER: usize = 0;
const TOKEN_COMPLETIONS: usize = 1;
const TOKEN_SHUTDOWN: usize = 2;
const FIRST_CONN_TOKEN: usize = 3;

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Out-of-order completions waiting for their turn: `(seq, bytes,
    /// close_after)`.
    reorder: Vec<(u64, Vec<u8>, bool)>,
    /// Sequence number the next parsed request gets.
    next_assign: u64,
    /// Sequence number of the next response to emit.
    next_emit: u64,
    /// Requests dispatched whose responses are not yet emitted.
    in_flight: usize,
    /// Set once no further requests should be parsed (client asked to
    /// close, or an error response is ending the connection).
    stop_reading: bool,
    /// Close the socket once `write_buf` fully flushes.
    close_when_flushed: bool,
    /// Peer closed its write half (serve out responses, then close).
    read_closed: bool,
    last_activity: Instant,
    /// When the currently-incomplete request head started arriving.
    head_started: Option<Instant>,
    interest: Interest,
}

impl Conn {
    fn has_unwritten(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// The instant this connection should be reaped, if it is sitting
    /// in a reapable state (nothing in flight, nothing to write).
    fn deadline(&self, config: &EventConfig) -> Option<Instant> {
        if self.in_flight > 0 || self.has_unwritten() {
            return None;
        }
        match self.head_started {
            Some(started) => Some(started + config.read_timeout),
            None => Some(self.last_activity + config.idle_timeout),
        }
    }
}

/// Slab of connections: stable indices, freed slots recycled, a
/// generation counter catching completions for connections that died
/// while their request was still executing.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            live: 0,
        }
    }

    fn insert(&mut self, stream: TcpStream, now: Instant) -> usize {
        self.next_gen += 1;
        let conn = Conn {
            stream,
            gen: self.next_gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            reorder: Vec::new(),
            next_assign: 0,
            next_emit: 0,
            in_flight: 0,
            stop_reading: false,
            close_when_flushed: false,
            read_closed: false,
            last_activity: now,
            head_started: None,
            interest: Interest::READABLE,
        };
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(conn);
                self.live += 1;
                slot
            }
            None => {
                self.slots.push(Some(conn));
                self.live += 1;
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot)?.take();
        if conn.is_some() {
            self.free.push(slot);
            self.live -= 1;
        }
        conn
    }
}

/// Hashed timer wheel over `(slot, gen)` entries with lazy
/// cancellation: entries are never removed early, just re-validated
/// against the connection's actual deadline when their bucket fires.
struct TimerWheel {
    buckets: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    cursor: usize,
    cursor_start: Instant,
}

impl TimerWheel {
    const BUCKETS: usize = 64;

    fn new(tick: Duration, now: Instant) -> Self {
        Self {
            buckets: (0..Self::BUCKETS).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            cursor_start: now,
        }
    }

    fn schedule(&mut self, deadline: Instant, slot: usize, gen: u64, now: Instant) {
        let until = deadline.saturating_duration_since(now);
        // Far-future deadlines clamp to the wheel horizon and lazily
        // re-schedule when their bucket fires.
        let offset = (until.as_nanos() / self.tick.as_nanos().max(1)) as usize + 1;
        let offset = offset.min(Self::BUCKETS - 1).max(1);
        let bucket = (self.cursor + offset) % Self::BUCKETS;
        self.buckets[bucket].push((slot, gen));
    }

    /// Time until the next bucket boundary (the poll timeout while any
    /// entries exist).
    fn next_wake(&self, now: Instant) -> Option<Duration> {
        if self.buckets.iter().all(Vec::is_empty) {
            return None;
        }
        let next = self.cursor_start + self.tick;
        Some(
            next.saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        )
    }

    /// Drains every bucket whose tick has elapsed into `fired`.
    fn advance(&mut self, now: Instant, fired: &mut Vec<(usize, u64)>) {
        if self.buckets.iter().all(Vec::is_empty) {
            // Nothing scheduled: snap forward instead of replaying a
            // long idle stretch tick by tick.
            self.cursor_start = now;
            return;
        }
        while now.saturating_duration_since(self.cursor_start) >= self.tick {
            self.cursor = (self.cursor + 1) % Self::BUCKETS;
            self.cursor_start += self.tick;
            fired.append(&mut self.buckets[self.cursor]);
        }
    }
}

/// A finished response on its way back to the loop thread.
struct Completion {
    slot: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// The event-driven replacement for [`crate::http::Server`]: same
/// handler contract, readiness-loop execution model.
pub struct EventServer {
    listener: TcpListener,
    config: EventConfig,
    metrics: Arc<ServerMetrics>,
    shutdown_rx: UnixStream,
    shutdown_tx: UnixStream,
}

impl EventServer {
    /// Binds the listener (port 0 for ephemeral) with the given knobs.
    pub fn bind(addr: impl ToSocketAddrs, config: EventConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (shutdown_tx, shutdown_rx) = UnixStream::pair()?;
        shutdown_rx.set_nonblocking(true)?;
        shutdown_tx.set_nonblocking(true)?;
        Ok(Self {
            listener,
            config,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown_rx,
            shutdown_tx,
        })
    }

    /// The bound address (reports the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The loop's counters (live; updated while running).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that gracefully stops [`Self::run`]. Obtain before
    /// calling `run`, which consumes the server.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            pipe: self.shutdown_tx.try_clone()?,
        })
    }

    /// Runs the readiness loop until a [`ShutdownHandle`] fires, then
    /// drains and returns. Never returns under normal traffic.
    pub fn run<H>(self, handler: Arc<H>) -> std::io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Loop::new(self, handler)?.run()
    }
}

/// Everything the running loop owns.
struct Loop<H> {
    listener: TcpListener,
    config: EventConfig,
    metrics: Arc<ServerMetrics>,
    handler: Arc<H>,
    poller: Poller,
    slab: Slab,
    wheel: TimerWheel,
    pool: WorkerPool,
    completions: Arc<Mutex<Vec<Completion>>>,
    completion_rx: UnixStream,
    completion_tx: Arc<UnixStream>,
    shutdown_rx: UnixStream,
    /// Kept alive so the read half never sees EOF while no
    /// [`ShutdownHandle`] exists (EOF would read as a shutdown).
    _shutdown_tx: UnixStream,
    draining: Option<Instant>,
}

impl<H> Loop<H>
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn new(server: EventServer, handler: Arc<H>) -> std::io::Result<Self> {
        let EventServer {
            listener,
            config,
            metrics,
            shutdown_rx,
            shutdown_tx,
        } = server;
        listener.set_nonblocking(true)?;
        let (completion_tx, completion_rx) = UnixStream::pair()?;
        completion_rx.set_nonblocking(true)?;
        completion_tx.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(
            completion_rx.as_raw_fd(),
            TOKEN_COMPLETIONS,
            Interest::READABLE,
        )?;
        poller.register(shutdown_rx.as_raw_fd(), TOKEN_SHUTDOWN, Interest::READABLE)?;
        let tick = (config.idle_timeout.min(config.read_timeout) / 16)
            .clamp(Duration::from_millis(5), Duration::from_millis(250));
        let now = Instant::now();
        let pool = WorkerPool::new(config.resolved_threads(), config.queue_capacity);
        Ok(Self {
            listener,
            config,
            metrics,
            handler,
            poller,
            slab: Slab::new(),
            wheel: TimerWheel::new(tick, now),
            pool,
            completions: Arc::new(Mutex::new(Vec::new())),
            completion_rx,
            completion_tx: Arc::new(completion_tx),
            shutdown_rx,
            _shutdown_tx: shutdown_tx,
            draining: None,
        })
    }

    fn run(mut self) -> std::io::Result<()> {
        let mut events = Vec::new();
        let mut fired = Vec::new();
        loop {
            let now = Instant::now();
            let mut timeout = self.wheel.next_wake(now);
            if let Some(deadline) = self.draining {
                let left = deadline.saturating_duration_since(now);
                timeout = Some(timeout.map_or(left, |t| t.min(left)));
            }
            self.poller.wait(&mut events, timeout)?;

            // Split borrows: copy the tokens out so handlers can take
            // &mut self.
            let batch: Vec<polling::Event> = events.drain(..).collect();
            for event in batch {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_COMPLETIONS => self.drain_completions(),
                    TOKEN_SHUTDOWN => self.begin_drain(),
                    token => {
                        let slot = token - FIRST_CONN_TOKEN;
                        if event.readable {
                            self.conn_readable(slot);
                        }
                        if event.writable {
                            self.conn_writable(slot);
                        }
                    }
                }
            }

            let now = Instant::now();
            self.wheel.advance(now, &mut fired);
            for (slot, gen) in fired.drain(..) {
                self.timer_fired(slot, gen, now);
            }

            if let Some(deadline) = self.draining {
                if self.slab.live == 0 {
                    break;
                }
                if now >= deadline {
                    let slots: Vec<usize> = (0..self.slab.slots.len())
                        .filter(|&s| self.slab.slots[s].is_some())
                        .collect();
                    for slot in slots {
                        self.close_conn(slot);
                    }
                    break;
                }
            }
        }
        // In-flight handler jobs were already awaited connection by
        // connection (or abandoned at the drain deadline); give the
        // pool the remaining budget, then join its threads.
        self.pool.drain(self.config.drain_timeout);
        self.pool.shutdown();
        Ok(())
    }

    // ── Accept path ──────────────────────────────────────────────────

    fn accept_ready(&mut self) {
        if self.draining.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.slab.live >= self.config.max_connections {
                        ServerMetrics::bump(&self.metrics.rejected_at_capacity);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let now = Instant::now();
                    let fd = stream.as_raw_fd();
                    let slot = self.slab.insert(stream, now);
                    let gen = self.slab.get_mut(slot).expect("just inserted").gen;
                    if self
                        .poller
                        .register(fd, FIRST_CONN_TOKEN + slot, Interest::READABLE)
                        .is_err()
                    {
                        self.slab.remove(slot);
                        continue;
                    }
                    ServerMetrics::bump(&self.metrics.accepted);
                    self.wheel
                        .schedule(now + self.config.idle_timeout, slot, gen, now);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("[service] accept error (continuing): {e}");
                    break;
                }
            }
        }
    }

    // ── Connection I/O ───────────────────────────────────────────────

    fn conn_readable(&mut self, slot: usize) {
        enum Step {
            Parse,
            Retry,
            Stop,
            Close,
        }
        let mut chunk = [0u8; 16 * 1024];
        let mut peer_closed = false;
        loop {
            let step = {
                let Some(conn) = self.slab.get_mut(slot) else {
                    return;
                };
                if conn.stop_reading
                    || conn.read_closed
                    || conn.in_flight >= self.config.max_pipeline
                {
                    Step::Stop // backpressure / close pending: stop reading
                } else {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            peer_closed = true;
                            Step::Stop
                        }
                        Ok(n) => {
                            conn.read_buf.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                            Step::Parse
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => Step::Stop,
                        Err(e) if e.kind() == ErrorKind::Interrupted => Step::Retry,
                        Err(_) => Step::Close,
                    }
                }
            };
            match step {
                Step::Parse => self.parse_available(slot),
                Step::Retry => continue,
                Step::Stop => break,
                Step::Close => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        if peer_closed {
            let drop_now = {
                let Some(conn) = self.slab.get_mut(slot) else {
                    return;
                };
                conn.read_closed = true;
                conn.in_flight == 0 && !conn.has_unwritten()
            };
            if drop_now {
                self.close_conn(slot);
                return;
            }
        }
        self.after_progress(slot);
    }

    fn conn_writable(&mut self, slot: usize) {
        self.flush_conn(slot);
        self.after_progress(slot);
    }

    /// Parses as many complete requests as pipelining allows off the
    /// connection's buffer and dispatches them.
    fn parse_available(&mut self, slot: usize) {
        enum Action {
            Dispatch {
                gen: u64,
                seq: u64,
                request: Box<Request>,
                keep_alive: bool,
            },
            NeedMore,
            Malformed(String),
            TooLarge(usize),
        }
        loop {
            let action = {
                let Some(conn) = self.slab.get_mut(slot) else {
                    return;
                };
                if conn.stop_reading || conn.in_flight >= self.config.max_pipeline {
                    return;
                }
                match parse_request(&conn.read_buf, MAX_HEAD_BYTES, MAX_BODY_BYTES) {
                    Ok(Some((request, consumed))) => {
                        conn.read_buf.drain(..consumed);
                        conn.head_started = None;
                        let seq = conn.next_assign;
                        conn.next_assign += 1;
                        conn.in_flight += 1;
                        let keep_alive = !request.wants_close();
                        if !keep_alive {
                            conn.stop_reading = true;
                        }
                        Action::Dispatch {
                            gen: conn.gen,
                            seq,
                            request: Box::new(request),
                            keep_alive,
                        }
                    }
                    Ok(None) => {
                        if conn.read_buf.is_empty() {
                            conn.head_started = None;
                        } else if conn.head_started.is_none() {
                            conn.head_started = Some(Instant::now());
                        }
                        Action::NeedMore
                    }
                    Err(ParseError::Malformed(message)) => Action::Malformed(message),
                    Err(ParseError::BodyTooLarge { length }) => Action::TooLarge(length),
                }
            };
            match action {
                Action::Dispatch {
                    gen,
                    seq,
                    request,
                    keep_alive,
                } => self.dispatch(slot, gen, seq, *request, keep_alive),
                Action::NeedMore => return,
                Action::Malformed(message) => {
                    ServerMetrics::bump(&self.metrics.malformed_400);
                    let body = serde::json::obj([("error", Value::Str(message))]);
                    self.reject_inline(slot, Response::json(400, &body), true);
                    return;
                }
                Action::TooLarge(length) => {
                    ServerMetrics::bump(&self.metrics.oversize_413);
                    self.reject_inline(slot, payload_too_large(length), true);
                    return;
                }
            }
        }
    }

    /// Synthesizes a response on the loop thread (no handler), in
    /// sequence with any in-flight pipeline.
    fn reject_inline(&mut self, slot: usize, response: Response, close: bool) {
        let Some(conn) = self.slab.get_mut(slot) else {
            return;
        };
        let seq = conn.next_assign;
        conn.next_assign += 1;
        conn.in_flight += 1;
        if close {
            conn.stop_reading = true;
            conn.read_buf.clear();
        }
        let bytes = encode_response(&response, !close);
        self.settle(slot, seq, bytes, close);
    }

    /// Hands a request to the worker pool; a full queue becomes the
    /// `503` + `Retry-After` admission rejection.
    fn dispatch(&mut self, slot: usize, gen: u64, seq: u64, request: Request, keep_alive: bool) {
        let handler = Arc::clone(&self.handler);
        let completions = Arc::clone(&self.completions);
        let waker = Arc::clone(&self.completion_tx);
        let job = Box::new(move || {
            let response = handler(&request);
            let bytes = encode_response(&response, keep_alive);
            completions.lock().unwrap().push(Completion {
                slot,
                gen,
                seq,
                bytes,
                close: !keep_alive,
            });
            let _ = (&*waker).write(&[b'c']);
        });
        match self.pool.try_submit(job) {
            Ok(()) => ServerMetrics::bump(&self.metrics.dispatched),
            Err(_rejected) => {
                ServerMetrics::bump(&self.metrics.shed_503);
                let body = serde::json::obj([(
                    "error",
                    Value::Str("server overloaded; retry shortly".into()),
                )]);
                let response = Response::json(503, &body).with_header("Retry-After", "1");
                let bytes = encode_response(&response, keep_alive);
                self.settle(slot, seq, bytes, !keep_alive);
            }
        }
    }

    // ── Completion path ──────────────────────────────────────────────

    fn drain_completions(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.completion_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
        let batch: Vec<Completion> = std::mem::take(&mut *self.completions.lock().unwrap());
        let mut touched: Vec<usize> = Vec::with_capacity(batch.len());
        for completion in batch {
            let Some(conn) = self.slab.get_mut(completion.slot) else {
                continue; // connection died while the request ran
            };
            if conn.gen != completion.gen {
                continue; // slot recycled under a stale completion
            }
            self.settle(
                completion.slot,
                completion.seq,
                completion.bytes,
                completion.close,
            );
            if !touched.contains(&completion.slot) {
                touched.push(completion.slot);
            }
        }
        for slot in touched {
            // Responses drained pipeline slots; buffered pipelined
            // bytes may now be parseable again.
            self.parse_available(slot);
            self.after_progress(slot);
        }
    }

    /// Queues one finished response and promotes everything now in
    /// order into the write buffer.
    fn settle(&mut self, slot: usize, seq: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.slab.get_mut(slot) else {
            return;
        };
        conn.reorder.push((seq, bytes, close));
        loop {
            let Some(at) = conn
                .reorder
                .iter()
                .position(|(s, _, _)| *s == conn.next_emit)
            else {
                break;
            };
            let (_, bytes, close) = conn.reorder.swap_remove(at);
            conn.write_buf.extend_from_slice(&bytes);
            conn.next_emit += 1;
            conn.in_flight -= 1;
            if close {
                conn.close_when_flushed = true;
            }
        }
        self.flush_conn(slot);
    }

    // ── Write path / lifecycle ───────────────────────────────────────

    fn flush_conn(&mut self, slot: usize) {
        let draining = self.draining.is_some();
        let should_close = {
            let Some(conn) = self.slab.get_mut(slot) else {
                return;
            };
            let mut fatal = false;
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        fatal = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            if fatal {
                true
            } else if conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.close_when_flushed
                    || (conn.read_closed && conn.in_flight == 0)
                    || (draining && conn.in_flight == 0)
            } else {
                false
            }
        };
        if should_close {
            self.close_conn(slot);
        }
    }

    /// After any I/O or completion progress: refresh poller interest
    /// and the connection's timer.
    fn after_progress(&mut self, slot: usize) {
        let config_max_pipeline = self.config.max_pipeline;
        let Some(conn) = self.slab.get_mut(slot) else {
            return;
        };
        let want = Interest {
            readable: !conn.stop_reading
                && !conn.read_closed
                && conn.in_flight < config_max_pipeline,
            writable: conn.has_unwritten(),
        };
        if (want.readable, want.writable) != (conn.interest.readable, conn.interest.writable) {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.modify(fd, FIRST_CONN_TOKEN + slot, want);
        }
        let gen = conn.gen;
        if let Some(deadline) = conn.deadline(&self.config) {
            let now = Instant::now();
            self.wheel.schedule(deadline, slot, gen, now);
        }
    }

    fn timer_fired(&mut self, slot: usize, gen: u64, now: Instant) {
        let config = self.config.clone();
        let Some(conn) = self.slab.get_mut(slot) else {
            return;
        };
        if conn.gen != gen {
            return; // stale entry for a recycled slot
        }
        match conn.deadline(&config) {
            Some(deadline) if deadline <= now => {
                ServerMetrics::bump(&self.metrics.reaped);
                self.close_conn(slot);
            }
            Some(deadline) => self.wheel.schedule(deadline, slot, gen, now),
            // Busy (request executing / response flushing): check back
            // in a while rather than dropping timer coverage.
            None => self
                .wheel
                .schedule(now + config.idle_timeout, slot, gen, now),
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.slab.remove(slot) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            // Dropping the stream closes the socket.
        }
    }

    // ── Shutdown ─────────────────────────────────────────────────────

    fn begin_drain(&mut self) {
        let mut sink = [0u8; 64];
        while let Ok(n) = (&self.shutdown_rx).read(&mut sink) {
            if n == 0 {
                break;
            }
        }
        if self.draining.is_some() {
            return;
        }
        self.draining = Some(Instant::now() + self.config.drain_timeout);
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        // Close every connection with nothing in flight and nothing to
        // flush; the rest drain out through flush_conn.
        let slots: Vec<usize> = (0..self.slab.slots.len())
            .filter(|&s| self.slab.slots[s].is_some())
            .collect();
        for slot in slots {
            let Some(conn) = self.slab.get_mut(slot) else {
                continue;
            };
            if conn.in_flight == 0 && !conn.has_unwritten() {
                self.close_conn(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::BufReader;
    use std::sync::mpsc;

    type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

    fn echo_handler() -> Handler {
        Box::new(|req: &Request| {
            let body = serde::json::obj([
                ("path", Value::Str(req.path.clone())),
                ("body_len", Value::Num(req.body.len() as f64)),
            ]);
            Response::json(200, &body)
        })
    }

    struct Running {
        addr: SocketAddr,
        handle: ShutdownHandle,
        thread: std::thread::JoinHandle<std::io::Result<()>>,
        metrics: Arc<ServerMetrics>,
    }

    fn start(config: EventConfig, handler: Handler) -> Running {
        let server = EventServer::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let metrics = server.metrics();
        let thread = std::thread::spawn(move || server.run(Arc::new(handler)));
        Running {
            addr,
            handle,
            thread,
            metrics,
        }
    }

    impl Running {
        fn stop(self) {
            self.handle.shutdown();
            self.thread.join().unwrap().unwrap();
        }
    }

    fn get(path: &str) -> String {
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = start(EventConfig::default(), echo_handler());
        let stream = TcpStream::connect(server.addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for path in ["/a", "/b", "/c"] {
            writer.write_all(get(path).as_bytes()).unwrap();
            let (status, _, body) = read_response(&mut reader).unwrap();
            assert_eq!(status, 200);
            assert!(String::from_utf8(body).unwrap().contains(path));
        }
        drop((writer, reader));
        server.stop();
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        // Handler sleeps longer for earlier requests, so out-of-order
        // completion is likely; responses must still arrive in request
        // order.
        let handler: Handler = Box::new(|req: &Request| {
            let delay = match req.path.as_str() {
                "/p0" => 60,
                "/p1" => 30,
                _ => 0,
            };
            std::thread::sleep(Duration::from_millis(delay));
            Response::json(
                200,
                &serde::json::obj([("path", Value::Str(req.path.clone()))]),
            )
        });
        let config = EventConfig {
            worker_threads: 3,
            ..EventConfig::default()
        };
        let server = start(config, handler);
        let stream = TcpStream::connect(server.addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let burst: String = ["/p0", "/p1", "/p2"].iter().map(|p| get(p)).collect();
        writer.write_all(burst.as_bytes()).unwrap();
        for expected in ["/p0", "/p1", "/p2"] {
            let (status, _, body) = read_response(&mut reader).unwrap();
            assert_eq!(status, 200);
            assert!(
                String::from_utf8(body).unwrap().contains(expected),
                "responses out of order"
            );
        }
        drop((writer, reader));
        server.stop();
    }

    #[test]
    fn oversized_body_draws_413_and_close() {
        let server = start(EventConfig::default(), echo_handler());
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 413);
        // Server closes: next read sees EOF.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(server.metrics.oversize_413.load(Ordering::Relaxed), 1);
        server.stop();
    }

    #[test]
    fn malformed_request_draws_400_and_close() {
        let server = start(EventConfig::default(), echo_handler());
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 400);
        server.stop();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let config = EventConfig {
            idle_timeout: Duration::from_millis(120),
            read_timeout: Duration::from_millis(120),
            ..EventConfig::default()
        };
        let server = start(config, echo_handler());
        let mut stream = TcpStream::connect(server.addr).unwrap();
        // Half a request head, then silence: the slowloris profile.
        stream.write_all(b"GET /healthz HTT").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = Instant::now();
        let mut sink = Vec::new();
        stream.read_to_end(&mut sink).unwrap(); // EOF once reaped
        assert!(started.elapsed() < Duration::from_secs(8));
        assert_eq!(server.metrics.reaped.load(Ordering::Relaxed), 1);
        server.stop();
    }

    #[test]
    fn saturated_queue_sheds_503_with_retry_after() {
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let handler: Handler = Box::new(move |req: &Request| {
            if req.path == "/slow" {
                started_tx.send(()).unwrap();
                gate_rx.lock().unwrap().recv().unwrap();
            }
            Response::json(200, &serde::json::obj([("ok", Value::Bool(true))]))
        });
        let config = EventConfig {
            worker_threads: 1,
            queue_capacity: 1,
            ..EventConfig::default()
        };
        let server = start(config, handler);

        // Conn 1: a request the single worker parks on. Wait until the
        // worker has actually *started* it, so the queue slot is free.
        let mut slow1 = TcpStream::connect(server.addr).unwrap();
        slow1.write_all(get("/slow").as_bytes()).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Conn 2: fills the one queue slot (worker is busy).
        let mut slow2 = TcpStream::connect(server.addr).unwrap();
        slow2.write_all(get("/slow").as_bytes()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics.dispatched.load(Ordering::Relaxed) < 2 {
            assert!(Instant::now() < deadline, "dispatches never registered");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Conn 3: over the high-water mark → immediate 503.
        let mut shed = TcpStream::connect(server.addr).unwrap();
        shed.write_all(get("/fast").as_bytes()).unwrap();
        let mut reader = BufReader::new(shed.try_clone().unwrap());
        let (status, headers, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 503);
        assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "1"));
        assert!(server.metrics.shed_503.load(Ordering::Relaxed) >= 1);

        // Release the gate; the parked requests complete normally.
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        for stream in [&mut slow1, &mut slow2] {
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let (status, _, _) = read_response(&mut r).unwrap();
            assert_eq!(status, 200);
        }
        server.stop();
    }

    #[test]
    fn graceful_shutdown_finishes_in_flight_requests() {
        let handler: Handler = Box::new(|_req: &Request| {
            std::thread::sleep(Duration::from_millis(80));
            Response::json(200, &serde::json::obj([("done", Value::Bool(true))]))
        });
        let server = start(EventConfig::default(), handler);
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.write_all(get("/solve").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(20)); // let it dispatch
        server.handle.shutdown();
        // The in-flight request still completes...
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("done"));
        // ...and the loop exits.
        server.thread.join().unwrap().unwrap();
        // New connections are refused (listener closed with the loop).
        assert!(
            TcpStream::connect(server.addr).is_err() || {
                let mut s = TcpStream::connect(server.addr).unwrap();
                s.write_all(get("/healthz").as_bytes()).unwrap();
                let mut sink = Vec::new();
                s.read_to_end(&mut sink).unwrap();
                sink.is_empty()
            }
        );
    }
}
