//! The anytime-session store: parked [`SolveSession`]s that
//! `POST /solve/anytime` steps in bounded chunks across requests.
//!
//! A session owns no borrow of the registry, but its incremental state
//! is only meaningful against the oracle it was opened on — so each
//! parked session carries the `Arc` of its instance-store entry, which
//! both keeps the built [`crate::instance::Instance`] alive across LRU
//! eviction and guarantees every later chunk steps against the same
//! oracle. Handles embed the instance key
//! (`anyt-<instance-key>-<serial>`), so clients can correlate a session
//! with the `/instances` admin view.
//!
//! Stepping must be exclusive: a resume request *takes* the session out
//! of the store, steps it without holding the store lock, and puts it
//! back unless it finished. A concurrent resume of the same handle
//! finds nothing and gets a 404 — by design, the store never blocks one
//! request on another's solve. Capacity is bounded; inserting past it
//! evicts the least-recently-touched parked session (its work so far is
//! lost, which is safe: re-opening just re-solves).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use fair_submod_core::engine::SolveSession;

use crate::store::StoreEntry;

/// One parked anytime solve.
pub struct ParkedSession {
    /// Opaque handle the client resumes with.
    pub id: String,
    /// Tenant billed for the session's occupancy (`""` = anonymous);
    /// fixed at open time, so a resume under a different `X-Tenant`
    /// does not shift the charge.
    pub tenant: String,
    /// Registry name of the solver.
    pub solver: String,
    /// The session's budget `k` (its own scenario cell).
    pub k: usize,
    /// Instance-store entry the session was opened on (kept alive for
    /// the session's whole life).
    pub entry: Arc<StoreEntry>,
    /// The resumable state machine itself.
    pub session: Box<dyn SolveSession>,
    /// Steps performed across all chunks so far.
    pub steps: u64,
}

struct Slot {
    parked: ParkedSession,
    last_used: Instant,
}

/// Bounded store of parked sessions; all methods take `&self`.
pub struct SessionStore {
    capacity: usize,
    inner: Mutex<SessionInner>,
}

struct SessionInner {
    serial: u64,
    evictions: u64,
    slots: Vec<Slot>,
}

impl SessionStore {
    /// An empty store parking at most `capacity` sessions.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(SessionInner {
                serial: 0,
                evictions: 0,
                slots: Vec::new(),
            }),
        }
    }

    /// Mints a handle for a session opened on the instance entry `key`.
    pub fn mint_id(&self, instance_key: &str) -> String {
        let mut inner = self.inner.lock().expect("session store poisoned");
        inner.serial += 1;
        format!("anyt-{instance_key}-{:x}", inner.serial)
    }

    /// Parks a session, evicting the least-recently-touched one when
    /// full.
    pub fn park(&self, parked: ParkedSession) {
        self.park_for(parked, usize::MAX)
            .unwrap_or_else(|_| panic!("unlimited occupancy cannot be exceeded"));
    }

    /// [`Self::park`] with a per-tenant occupancy cap: refuses
    /// (returning the session so the caller decides its fate) when the
    /// session's tenant already holds `max_per_tenant` parked
    /// sessions. Store-wide capacity still evicts the
    /// least-recently-touched session.
    pub fn park_for(
        &self,
        parked: ParkedSession,
        max_per_tenant: usize,
    ) -> Result<(), ParkedSession> {
        let mut inner = self.inner.lock().expect("session store poisoned");
        if max_per_tenant != usize::MAX
            && inner
                .slots
                .iter()
                .filter(|s| s.parked.tenant == parked.tenant)
                .count()
                >= max_per_tenant
        {
            return Err(parked);
        }
        if inner.slots.len() >= self.capacity {
            let oldest = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            inner.slots.remove(oldest);
            inner.evictions += 1;
        }
        inner.slots.push(Slot {
            parked,
            last_used: Instant::now(),
        });
        Ok(())
    }

    /// Takes a parked session out for exclusive stepping. Returns
    /// `None` for unknown handles *and* for sessions another request is
    /// currently stepping (it is out of the store while stepped).
    pub fn take(&self, id: &str) -> Option<ParkedSession> {
        let mut inner = self.inner.lock().expect("session store poisoned");
        let at = inner.slots.iter().position(|s| s.parked.id == id)?;
        Some(inner.slots.remove(at).parked)
    }

    /// Number of currently parked sessions.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("session store poisoned")
            .slots
            .len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("session store poisoned").evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_submod_bench::scenario::{DatasetRecipe, SubstrateSpec};
    use fair_submod_core::engine::{ScenarioParams, SolverRegistry};

    use crate::instance::{canonical_key, Instance, InstanceConfig};
    use crate::store::InstanceStore;

    fn parked(store: &InstanceStore, sessions: &SessionStore, n: usize) -> ParkedSession {
        let cfg = InstanceConfig::default().quick();
        let recipe = DatasetRecipe::RandMc {
            c: 2,
            n: 40 + n,
            seed_offset: 0,
        };
        let (key, canonical) = canonical_key(&recipe, &SubstrateSpec::Coverage, &cfg);
        let (entry, _) = store.get_or_insert(&key, &canonical);
        entry.get_or_build(|| Instance::build(recipe, SubstrateSpec::Coverage, &cfg));
        let registry = SolverRegistry::default();
        let session = registry
            .open_session(
                "Greedy",
                entry.built().unwrap().system(),
                &ScenarioParams::new(3, 0.5),
            )
            .unwrap();
        ParkedSession {
            id: sessions.mint_id(&entry.key),
            tenant: String::new(),
            solver: "Greedy".into(),
            k: 3,
            entry,
            session,
            steps: 0,
        }
    }

    #[test]
    fn park_take_and_evict() {
        let instances = InstanceStore::new(4);
        let sessions = SessionStore::new(2);
        let a = parked(&instances, &sessions, 0);
        let a_id = a.id.clone();
        sessions.park(a);
        let b = parked(&instances, &sessions, 2);
        let b_id = b.id.clone();
        sessions.park(b);
        assert_eq!(sessions.len(), 2);
        assert_ne!(a_id, b_id, "serials discriminate handles");
        // Taking removes; a second take of the same handle misses.
        let taken = sessions.take(&a_id).expect("parked");
        assert!(sessions.take(&a_id).is_none());
        sessions.park(taken);
        // Past capacity the least-recently-touched session is evicted.
        let c = parked(&instances, &sessions, 4);
        let c_id = c.id.clone();
        sessions.park(c);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions.evictions(), 1);
        assert!(sessions.take(&b_id).is_none(), "b was oldest, evicted");
        assert!(sessions.take(&c_id).is_some());
    }

    #[test]
    fn parked_sessions_survive_instance_store_eviction() {
        // The session's Arc keeps the built instance alive even after
        // the instance store forgets the key.
        let instances = InstanceStore::new(1);
        let sessions = SessionStore::new(4);
        let mut a = parked(&instances, &sessions, 0);
        let _b = parked(&instances, &sessions, 2); // evicts a's entry
        let system = a.entry.built().unwrap().system();
        while !a.session.done() {
            a.session.step(system);
        }
        let report = a.session.finish(system).unwrap();
        assert_eq!(report.items.len(), 3);
    }
}
