//! The solve daemon binary. See the crate docs for the endpoint
//! surface; `--help` prints the flags.

use std::sync::Arc;
use std::time::Duration;

use fair_submod_service::{
    serve_blocking, EventConfig, EventServer, InstanceConfig, QuotaConfig, ServiceState,
};

const USAGE: &str = "\
fair-submod-service: long-running BSM solve daemon (HTTP/1.1 + JSON)

USAGE:
    fair-submod-service [--addr HOST:PORT] [--capacity N] [--quick]
                        [--max-instance-bytes N]
                        [--rr-sets N] [--mc-runs N] [--pokec-nodes N]
                        [--blocking] [--workers N] [--queue-capacity N]
                        [--max-connections N] [--idle-timeout-secs N]
                        [--read-timeout-secs N] [--max-pipeline N]
                        [--tenant-rate R] [--tenant-burst B]
                        [--tenant-max-instances N] [--tenant-max-sessions N]

INSTANCE FLAGS:
    --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
    --capacity N       max cached instances before LRU eviction (default 8)
    --max-instance-bytes N
                       byte budget over the cached instances' advisory
                       footprints; LRU entries are evicted past it
                       (default: unlimited)
    --quick            smoke-sized instance knobs (harness --quick caps)
    --rr-sets N        RR sets for influence oracles
    --mc-runs N        Monte-Carlo runs per influence evaluation
    --pokec-nodes N    node count of the Pokec stand-in

SERVER FLAGS (event-driven loop; the default server):
    --blocking              thread-per-connection reference server instead
    --workers N             handler threads (default: auto, at least 2)
    --queue-capacity N      admission high-water mark; past it solve
                            requests draw 503 + Retry-After (default 256)
    --max-connections N     open-connection cap (default 4096)
    --idle-timeout-secs N   reap idle keep-alive connections (default 30)
    --read-timeout-secs N   slowloris guard: a request head must finish
                            within N seconds (default 30; also arms the
                            blocking server's socket read timeout)
    --max-pipeline N        pipelined requests in flight per connection
                            before reads pause (default 32)

TENANT QUOTAS (keyed by the X-Tenant request header; default off):
    --tenant-rate R           solve admissions/second per tenant (429 past it)
    --tenant-burst B          token-bucket burst size (default: same as rate)
    --tenant-max-instances N  instance-store slots one tenant may hold
    --tenant-max-sessions N   parked anytime sessions one tenant may hold

SIGNALS: SIGINT/SIGTERM drain in-flight requests, then exit.
";

fn main() {
    let mut addr = String::from("127.0.0.1:7878");
    let mut capacity = 8usize;
    let mut max_instance_bytes = usize::MAX;
    let mut quick = false;
    let mut blocking = false;
    let mut cfg = InstanceConfig::default();
    let mut event = EventConfig::default();
    let mut quotas = QuotaConfig::unlimited();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        fn int(flag: &str, raw: String) -> usize {
            raw.parse()
                .unwrap_or_else(|_| panic!("{flag} takes an integer"))
        }
        fn num(flag: &str, raw: String) -> f64 {
            raw.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        }
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--capacity" => capacity = int("--capacity", value("--capacity")),
            "--max-instance-bytes" => {
                max_instance_bytes = int("--max-instance-bytes", value("--max-instance-bytes"))
            }
            "--quick" => quick = true,
            "--blocking" => blocking = true,
            "--rr-sets" => cfg.rr_sets = int("--rr-sets", value("--rr-sets")),
            "--mc-runs" => cfg.mc_runs = int("--mc-runs", value("--mc-runs")),
            "--pokec-nodes" => cfg.pokec_nodes = int("--pokec-nodes", value("--pokec-nodes")),
            "--workers" => event.worker_threads = int("--workers", value("--workers")),
            "--queue-capacity" => {
                event.queue_capacity = int("--queue-capacity", value("--queue-capacity"))
            }
            "--max-connections" => {
                event.max_connections = int("--max-connections", value("--max-connections"))
            }
            "--idle-timeout-secs" => {
                event.idle_timeout = Duration::from_secs(int(
                    "--idle-timeout-secs",
                    value("--idle-timeout-secs"),
                ) as u64)
            }
            "--read-timeout-secs" => {
                event.read_timeout = Duration::from_secs(int(
                    "--read-timeout-secs",
                    value("--read-timeout-secs"),
                ) as u64)
            }
            "--max-pipeline" => event.max_pipeline = int("--max-pipeline", value("--max-pipeline")),
            "--tenant-rate" => {
                quotas.solve_rate = num("--tenant-rate", value("--tenant-rate"));
                if quotas.solve_burst.is_infinite() {
                    quotas.solve_burst = quotas.solve_rate.max(1.0);
                }
            }
            "--tenant-burst" => quotas.solve_burst = num("--tenant-burst", value("--tenant-burst")),
            "--tenant-max-instances" => {
                quotas.max_instances =
                    int("--tenant-max-instances", value("--tenant-max-instances"))
            }
            "--tenant-max-sessions" => {
                quotas.max_sessions = int("--tenant-max-sessions", value("--tenant-max-sessions"))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if quick {
        cfg = cfg.quick();
    }

    let state = Arc::new(
        ServiceState::new(capacity, cfg)
            .with_instance_byte_budget(max_instance_bytes)
            .with_quotas(quotas.clone()),
    );
    eprintln!(
        "[service] {} solvers registered, instance capacity {capacity}, tenant quotas {}",
        state.registry.len(),
        if quotas.is_limiting() { "on" } else { "off" },
    );

    let on_bound = |bound: std::net::SocketAddr| {
        // The loadgen --spawn handshake parses this exact stdout line.
        use std::io::Write;
        println!("fair-submod-service listening on {bound}");
        let _ = std::io::stdout().flush();
    };

    let result = if blocking {
        eprintln!("[service] blocking (thread-per-connection) server");
        serve_blocking(&addr, state, on_bound)
    } else {
        match EventServer::bind(&addr, event) {
            Ok(server) => {
                // SIGINT/SIGTERM write a byte to the shutdown pipe; the
                // loop drains in-flight work and returns.
                match server.shutdown_handle() {
                    Ok(handle) => {
                        polling::signals::notify_on_terminate(handle.notify_fd());
                        // Leak the handle: the signal handler's target fd
                        // must stay open for the process lifetime.
                        std::mem::forget(handle);
                    }
                    Err(e) => eprintln!("[service] no signal handling: {e}"),
                }
                server
                    .local_addr()
                    .map(on_bound)
                    .and_then(|()| server.run(Arc::new(move |req: &_| state.handle(req))))
                    .inspect(|()| eprintln!("[service] drained, exiting"))
            }
            Err(e) => Err(e),
        }
    };
    if let Err(e) = result {
        eprintln!("[service] fatal: {e}");
        std::process::exit(1);
    }
}
