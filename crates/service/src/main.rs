//! The solve daemon binary. See the crate docs for the endpoint
//! surface; `--help` prints the flags.

use std::sync::Arc;

use fair_submod_service::{serve, InstanceConfig, ServiceState};

const USAGE: &str = "\
fair-submod-service: long-running BSM solve daemon (HTTP/1.1 + JSON)

USAGE:
    fair-submod-service [--addr HOST:PORT] [--capacity N] [--quick]
                        [--rr-sets N] [--mc-runs N] [--pokec-nodes N]

FLAGS:
    --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
    --capacity N       max cached instances before LRU eviction (default 8)
    --quick            smoke-sized instance knobs (harness --quick caps)
    --rr-sets N        RR sets for influence oracles
    --mc-runs N        Monte-Carlo runs per influence evaluation
    --pokec-nodes N    node count of the Pokec stand-in
";

fn main() {
    let mut addr = String::from("127.0.0.1:7878");
    let mut capacity = 8usize;
    let mut quick = false;
    let mut cfg = InstanceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--capacity" => {
                capacity = value("--capacity")
                    .parse()
                    .expect("--capacity takes an integer")
            }
            "--quick" => quick = true,
            "--rr-sets" => {
                cfg.rr_sets = value("--rr-sets")
                    .parse()
                    .expect("--rr-sets takes an integer")
            }
            "--mc-runs" => {
                cfg.mc_runs = value("--mc-runs")
                    .parse()
                    .expect("--mc-runs takes an integer")
            }
            "--pokec-nodes" => {
                cfg.pokec_nodes = value("--pokec-nodes")
                    .parse()
                    .expect("--pokec-nodes takes an integer")
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if quick {
        cfg = cfg.quick();
    }

    let state = Arc::new(ServiceState::new(capacity, cfg));
    eprintln!(
        "[service] {} solvers registered, instance capacity {capacity}",
        state.registry.len()
    );
    let result = serve(&addr, state, |bound| {
        // The loadgen --spawn handshake parses this exact stdout line.
        use std::io::Write;
        println!("fair-submod-service listening on {bound}");
        let _ = std::io::stdout().flush();
    });
    if let Err(e) = result {
        eprintln!("[service] fatal: {e}");
        std::process::exit(1);
    }
}
