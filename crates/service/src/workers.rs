//! The fixed-size worker pool behind the event loop: a bounded
//! MPMC queue (mutex + condvars) feeding N long-lived threads.
//!
//! The bound is the admission-control lever. The event loop submits
//! handler jobs with [`WorkerPool::try_submit`], which **fails
//! immediately** when the queue is at its high-water mark instead of
//! blocking or growing — the loop turns that failure into a `503` with
//! `Retry-After`, so overload sheds cheap early responses rather than
//! piling latency onto every queued request. The rayon shim spawns
//! scoped threads per call and keeps no persistent pool, so solve work
//! dispatched from here still fans out through it; this pool only
//! bounds how many *requests* execute concurrently.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: a boxed closure run on one worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<QueueState>,
    /// Signaled when a job is pushed (workers wait on this).
    available: Condvar,
    /// Signaled when the queue drains empty (shutdown waits on this).
    drained: Condvar,
    capacity: usize,
    depth: AtomicUsize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    in_flight: usize,
}

/// Fixed-size thread pool with a bounded submission queue.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers behind a queue of at most `capacity`
    /// pending jobs. `threads` and `capacity` are clamped to ≥ 1.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
                in_flight: 0,
            }),
            available: Condvar::new(),
            drained: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (excludes jobs already executing).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth.load(Ordering::Relaxed)
    }

    /// Submits a job, or returns it untouched when the queue is full
    /// (the admission-control rejection) or the pool is shutting down.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.queue.jobs.lock().unwrap();
        if state.shutting_down || state.jobs.len() >= self.queue.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.queue.depth.store(state.jobs.len(), Ordering::Relaxed);
        drop(state);
        self.queue.available.notify_one();
        Ok(())
    }

    /// Waits until every queued and executing job has finished, up to
    /// `timeout`. Returns whether the pool fully drained.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.queue.jobs.lock().unwrap();
        loop {
            if state.jobs.is_empty() && state.in_flight == 0 {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            let (next, result) = self.queue.drained.wait_timeout(state, left).unwrap();
            state = next;
            if result.timed_out() && !(state.jobs.is_empty() && state.in_flight == 0) {
                return false;
            }
        }
    }

    /// Stops accepting jobs, wakes the workers, and joins them.
    /// Already-queued jobs still run to completion.
    pub fn shutdown(mut self) {
        {
            let mut state = self.queue.jobs.lock().unwrap();
            state.shutting_down = true;
        }
        self.queue.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    queue.depth.store(state.jobs.len(), Ordering::Relaxed);
                    state.in_flight += 1;
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = queue.available.wait(state).unwrap();
            }
        };
        job();
        let mut state = queue.jobs.lock().unwrap();
        state.in_flight -= 1;
        if state.jobs.is_empty() && state.in_flight == 0 {
            queue.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_reports_depth() {
        let pool = WorkerPool::new(2, 16);
        assert_eq!(pool.threads(), 2);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }))
            .unwrap_or_else(|_| panic!("queue unexpectedly full"));
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert!(pool.drain(Duration::from_secs(5)));
        pool.shutdown();
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        // One worker parked on a gate + capacity-1 queue: the second
        // pending job must bounce straight back.
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        }))
        .unwrap_or_else(|_| panic!("first job rejected"));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Worker busy; this occupies the single queue slot.
        pool.try_submit(Box::new(|| {}))
            .unwrap_or_else(|_| panic!("second job rejected"));
        // Queue full: shed.
        assert!(pool.try_submit(Box::new(|| {})).is_err());
        assert_eq!(pool.queue_depth(), 1);
        gate_tx.send(()).unwrap();
        assert!(pool.drain(Duration::from_secs(5)));
        pool.shutdown();
    }

    #[test]
    fn drain_times_out_on_stuck_work() {
        let pool = WorkerPool::new(1, 4);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            gate_rx.recv().unwrap();
        }))
        .unwrap_or_else(|_| panic!("job rejected"));
        assert!(!pool.drain(Duration::from_millis(50)));
        gate_tx.send(()).unwrap();
        assert!(pool.drain(Duration::from_secs(5)));
        pool.shutdown();
    }
}
