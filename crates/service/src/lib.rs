//! # fair-submod-service
//!
//! Solve-as-a-service: a long-running BSM daemon speaking HTTP/1.1 +
//! JSON over [`std::net`] — no external dependencies beyond the
//! workspace's offline shims.
//!
//! After PR 3 every solve still paid full dataset materialization and
//! oracle construction per process invocation. This crate amortizes
//! that cost across requests: an [`store::InstanceStore`] materializes
//! each [`fair_submod_bench::scenario::DatasetRecipe`] once, builds the
//! substrate oracle, and caches the immutable
//! [`instance::Instance`] behind an `Arc` keyed by the FNV-1a hash of
//! its canonical JSON, with LRU eviction. Requests then pick solver
//! and parameters per call (τ/ε are query-time knobs over a fixed
//! ground set, exactly the query-primitive framing of the paper), and
//! the shared [`fair_submod_core::engine::SolverRegistry`] answers
//! them from any connection thread.
//!
//! Start the daemon with `cargo run -p fair-submod-service` (instance
//! flags: `--addr host:port`, `--capacity N` instances, `--rr-sets`,
//! `--mc-runs`, `--pokec-nodes`, `--quick`). It prints one line,
//! `fair-submod-service listening on <addr>`, once the socket is
//! bound.
//!
//! ## Concurrency model
//!
//! The default server is an event-driven readiness loop
//! ([`event_loop::EventServer`], running on the workspace `polling`
//! shim — epoll on Linux, poll(2) fallback): one thread owns every
//! nonblocking connection, parses requests incrementally, and
//! dispatches them to a fixed [`workers::WorkerPool`] through a
//! bounded queue. Keep-alive connections may pipeline; responses are
//! re-sequenced into request order. When the queue is full the loop
//! sheds `503 + Retry-After` inline; a timer wheel reaps idle
//! connections and slowloris half-requests (`--idle-timeout-secs`,
//! `--read-timeout-secs`); bodies over [`http::MAX_BODY_BYTES`] draw
//! `413`; SIGINT/SIGTERM drain in-flight work before exit. Knobs:
//! `--workers`, `--queue-capacity`, `--max-connections`,
//! `--max-pipeline`. `--blocking` selects [`serve_blocking`], the
//! thread-per-connection reference twin — same
//! [`server::ServiceState::handle`], byte-identical responses (proven
//! by `tests/service_concurrency.rs`), kept as an escape hatch.
//!
//! Per-tenant quotas ([`tenants::TenantQuotas`], keyed by the
//! `X-Tenant` header, default off) enforce a token bucket on solve
//! admissions (`--tenant-rate`/`--tenant-burst`, `429 + Retry-After`
//! past it) and occupancy caps on instance-store slots and parked
//! anytime sessions (`--tenant-max-instances`,
//! `--tenant-max-sessions`). Enforcement lives in the handler layer,
//! so both servers apply identical policy. See DESIGN.md §10.
//!
//! ## Endpoints
//!
//! | Method + path | Purpose |
//! |---|---|
//! | `GET /healthz` | liveness + uptime, cache and request counters |
//! | `GET /registry` | solver capability listing from the registry |
//! | `GET /instances` | admin view of the instance store (keys, hit counts, LRU state) |
//! | `POST /solve` | one solver on one cell; returns the `SolveReport` JSON |
//! | `POST /solve/anytime` | a resumable solve in bounded step chunks with per-round progress |
//! | `POST /batch` | a solver grid on one instance, run concurrently on the shared pool |
//!
//! `POST /solve` takes a dataset recipe, a substrate, a registry
//! solver name, and scenario parameters:
//!
//! ```json
//! {
//!   "dataset": {"kind": "rand_mc", "c": 2, "n": 500},
//!   "substrate": "coverage",
//!   "solver": "BSM-TSGreedy",
//!   "params": {"k": 5, "tau": 0.8}
//! }
//! ```
//!
//! and answers with the solver's `SolveReport` (items, `f`, `g`,
//! per-group utilities, oracle calls, seconds). The
//! `X-Instance-Cache: hit|miss` response header reports whether the
//! instance came from the store; `X-Instance-Cache-Hits` carries the
//! store's cumulative hit counter. Typed solver rejections map to
//! statuses (unknown solver → 404, capability gap → 422, bad
//! parameters → 400) with the error's JSON in the body.
//!
//! `POST /batch` takes the same grid-job shape scenario specs use
//! (`solvers` × `ks` × `taus` × `epsilons` × `repetitions`) and runs
//! the expanded cells concurrently through
//! [`fair_submod_bench::harness::run_suite`] on the one shared
//! instance:
//!
//! ```json
//! {
//!   "dataset": {"kind": "rand_mc", "c": 2, "n": 500},
//!   "substrate": "coverage",
//!   "solvers": ["Greedy", "BSM-TSGreedy", "BSM-Saturate"],
//!   "ks": [5, 10],
//!   "taus": [0.2, 0.8]
//! }
//! ```
//!
//! `POST /solve/anytime` is the incremental variant of `/solve`: it
//! opens a resumable [`fair_submod_core::engine::SolveSession`] on the
//! cached instance, steps it for at most `max_rounds` rounds (default
//! 16), and reports per-round progress (`round`, `objective`,
//! `group_sums`, `solution_size`, `oracle_calls`). If the solve did
//! not finish, the response carries a `session` handle — embedding the
//! instance-store key — that a follow-up request resumes with
//! `{"session": "<handle>", "max_rounds": N}`; when it finishes, the
//! final `SolveReport` (bit-identical to `/solve` up to timing) is
//! included and the handle expires. Solvers whose registry capability
//! `resumable` is `false` complete in a single chunk.
//!
//! Load generation lives in the bench crate:
//! `cargo run -p fair-submod-bench --release --bin loadgen -- --quick
//! --spawn` spawns a daemon and drives a mixed read/solve workload
//! through an event-driven client (`--connections N`, `--pipeline D`,
//! `--mode closed|open`, `--no-keepalive`), writing p50/p95/p99/max
//! latencies, throughput, and error/shed counts to
//! `BENCH_service.json`; `--compare` sweeps 16/256/1024 connections
//! against both this server and the `--blocking` twin.

pub mod event_loop;
pub mod http;
pub mod instance;
pub mod server;
pub mod sessions;
pub mod store;
pub mod tenants;
pub mod workers;

pub use event_loop::{EventConfig, EventServer, ServerMetrics, ShutdownHandle};
pub use instance::{canonical_key, Instance, InstanceConfig};
pub use server::{serve, serve_blocking, serve_with, ServiceState};
pub use sessions::{ParkedSession, SessionStore};
pub use store::{CacheStatus, InstanceStore};
pub use tenants::{QuotaConfig, TenantQuotas};
