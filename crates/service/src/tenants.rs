//! Per-tenant quotas: token-bucket admission for CPU-heavy solve
//! endpoints plus occupancy caps on the shared caches.
//!
//! Tenancy is declared by the `X-Tenant` request header (absent means
//! the anonymous tenant `""`). Enforcement lives in the *handler*
//! layer ([`crate::server::ServiceState`]), deliberately not in either
//! server's I/O loop, so the blocking and event-driven servers apply
//! byte-identical policy — the response-equivalence suite leans on
//! that.
//!
//! Two mechanisms:
//!
//! - **Rate**: each tenant has a token bucket ([`QuotaConfig::solve_rate`]
//!   tokens/second, burst [`QuotaConfig::solve_burst`]). Every
//!   `/solve`, `/solve/anytime`, and `/batch` admission costs one
//!   token; an empty bucket draws `429` with a `Retry-After` estimate
//!   of when the next token lands.
//! - **Occupancy**: a tenant may hold at most
//!   [`QuotaConfig::max_instances`] slots of the instance store and
//!   [`QuotaConfig::max_sessions`] parked anytime sessions, so one
//!   tenant's working set cannot evict everyone else's. These are
//!   checked by the stores themselves under their own locks, keyed by
//!   the tenant tag stamped on each entry.
//!
//! Quotas default to **off** (every check admits) and are switched on
//! with explicit limits — the daemon exposes them as `--tenant-*`
//! flags.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Limits applied to every tenant individually.
#[derive(Clone, Debug)]
pub struct QuotaConfig {
    /// Steady-state solve admissions per second per tenant.
    pub solve_rate: f64,
    /// Bucket capacity: how many solves may burst back-to-back.
    pub solve_burst: f64,
    /// Maximum instance-store slots one tenant may occupy.
    pub max_instances: usize,
    /// Maximum parked anytime sessions one tenant may hold.
    pub max_sessions: usize,
}

impl QuotaConfig {
    /// The "off" configuration: unlimited everything.
    pub fn unlimited() -> Self {
        Self {
            solve_rate: f64::INFINITY,
            solve_burst: f64::INFINITY,
            max_instances: usize::MAX,
            max_sessions: usize::MAX,
        }
    }

    /// Whether any limit is actually finite.
    pub fn is_limiting(&self) -> bool {
        self.solve_rate.is_finite()
            || self.solve_burst.is_finite()
            || self.max_instances != usize::MAX
            || self.max_sessions != usize::MAX
    }
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self::unlimited()
    }
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The quota ledger: one token bucket per tenant seen so far.
pub struct TenantQuotas {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

/// Why an admission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateExceeded {
    /// Whole seconds (≥ 1) until a token is expected — the
    /// `Retry-After` value.
    pub retry_after_secs: u64,
}

impl TenantQuotas {
    /// A ledger enforcing `config`.
    pub fn new(config: QuotaConfig) -> Self {
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The limits in force.
    pub fn config(&self) -> &QuotaConfig {
        &self.config
    }

    /// Takes one solve token for `tenant`, or reports how long until
    /// one is available. Infinite-rate configs admit without touching
    /// the ledger.
    pub fn admit_solve(&self, tenant: &str) -> Result<(), RateExceeded> {
        if self.config.solve_rate.is_infinite() && self.config.solve_burst.is_infinite() {
            return Ok(());
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let burst = if self.config.solve_burst.is_finite() {
            self.config.solve_burst.max(1.0)
        } else {
            f64::MAX
        };
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.refilled = now;
        if self.config.solve_rate.is_finite() {
            bucket.tokens = (bucket.tokens + elapsed * self.config.solve_rate).min(burst);
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let wait = if self.config.solve_rate > 0.0 && self.config.solve_rate.is_finite() {
            (deficit / self.config.solve_rate).ceil().max(1.0)
        } else {
            1.0
        };
        Err(RateExceeded {
            retry_after_secs: wait as u64,
        })
    }

    /// Tenants currently tracked in the ledger (diagnostics).
    pub fn tracked_tenants(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_config_admits_everything() {
        let quotas = TenantQuotas::new(QuotaConfig::unlimited());
        assert!(!quotas.config().is_limiting());
        for _ in 0..10_000 {
            quotas.admit_solve("t").unwrap();
        }
        // The no-op fast path never materializes buckets.
        assert_eq!(quotas.tracked_tenants(), 0);
    }

    #[test]
    fn burst_empties_then_429s_with_retry_after() {
        let quotas = TenantQuotas::new(QuotaConfig {
            solve_rate: 0.5,
            solve_burst: 3.0,
            ..QuotaConfig::unlimited()
        });
        for _ in 0..3 {
            quotas.admit_solve("alice").unwrap();
        }
        let refusal = quotas.admit_solve("alice").unwrap_err();
        // One token at 0.5/s is ~2s away.
        assert!(refusal.retry_after_secs >= 1 && refusal.retry_after_secs <= 3);
        // Another tenant's bucket is untouched.
        quotas.admit_solve("bob").unwrap();
    }

    #[test]
    fn bucket_refills_over_time() {
        let quotas = TenantQuotas::new(QuotaConfig {
            solve_rate: 50.0,
            solve_burst: 1.0,
            ..QuotaConfig::unlimited()
        });
        quotas.admit_solve("t").unwrap();
        assert!(quotas.admit_solve("t").is_err());
        std::thread::sleep(std::time::Duration::from_millis(60));
        quotas.admit_solve("t").unwrap();
    }
}
