//! The request layer: shared service state and the endpoint router.
//!
//! One [`ServiceState`] lives for the whole daemon: the solver
//! registry (built once), the instance store, and request counters.
//! Every connection thread routes through [`ServiceState::handle`],
//! which is a pure `&self` function — all mutability is behind the
//! store's internal lock and atomic counters, so requests on different
//! instances never serialize on each other.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::json::{obj, parse_bytes, Value};
use serde::{FromJson, ToJson};

use rayon::prelude::*;

use fair_submod_bench::harness::{run_suite, GridConfig};
use fair_submod_bench::scenario::{cell_to_json, DatasetRecipe, GridJob, SubstrateSpec};
use fair_submod_core::engine::{
    MergeBuilder, ScenarioParams, ShardOracle, ShardedGreediSession, ShardedInstance,
    ShardedSieveSession, SolveSession, SolverError, SolverRegistry,
};
use fair_submod_core::prelude::shard_partition;

use crate::event_loop::{EventConfig, EventServer};
use crate::http::{Request, Response, Server};
use crate::instance::{
    canonical_key, shard_canonical_key, validate_request, Instance, InstanceConfig,
};
use crate::sessions::{ParkedSession, SessionStore};
use crate::store::{CacheStatus, InstanceStore, OccupancyExceeded, StoreEntry};
use crate::tenants::{QuotaConfig, TenantQuotas};

/// Maximum parked anytime sessions (oldest evicted past this; see
/// [`SessionStore`]).
pub const ANYTIME_SESSION_CAPACITY: usize = 64;

/// Default (and maximum) session steps per `POST /solve/anytime` chunk.
const DEFAULT_ANYTIME_CHUNK: usize = 16;
const MAX_ANYTIME_CHUNK: usize = 100_000;

/// Maximum shard count a `POST /solve` request may ask for. Each shard
/// registers its own instance-store slot, so an unbounded `shards`
/// would let one request flood the LRU cache.
pub const MAX_SOLVE_SHARDS: usize = 64;

/// Long-lived daemon state shared by all connection threads.
pub struct ServiceState {
    /// The full solver suite, built once at startup.
    pub registry: SolverRegistry,
    /// The cached instance store.
    pub store: InstanceStore,
    /// Parked anytime solve sessions (`POST /solve/anytime`).
    pub sessions: SessionStore,
    /// Build knobs for new instances (part of the cache key).
    pub instance_cfg: InstanceConfig,
    /// Per-tenant admission and occupancy limits (unlimited unless
    /// configured via [`Self::with_quotas`]).
    pub quotas: TenantQuotas,
    started: Instant,
    requests: AtomicU64,
    solves: AtomicU64,
}

impl ServiceState {
    /// Fresh state with the default registry and an empty store
    /// holding at most `capacity` instances.
    pub fn new(capacity: usize, instance_cfg: InstanceConfig) -> Self {
        Self {
            registry: SolverRegistry::default(),
            store: InstanceStore::new(capacity),
            sessions: SessionStore::new(ANYTIME_SESSION_CAPACITY),
            instance_cfg,
            quotas: TenantQuotas::new(QuotaConfig::unlimited()),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            solves: AtomicU64::new(0),
        }
    }

    /// Replaces the tenant quota limits (builder-style, before the
    /// state is shared).
    pub fn with_quotas(mut self, config: QuotaConfig) -> Self {
        self.quotas = TenantQuotas::new(config);
        self
    }

    /// Caps the instance store's total advisory footprint at `budget`
    /// bytes (builder-style; `usize::MAX` = unlimited). Past the budget
    /// the store evicts least-recently-used built entries after each
    /// build (DESIGN.md §11).
    pub fn with_instance_byte_budget(mut self, budget: usize) -> Self {
        let store = std::mem::replace(&mut self.store, InstanceStore::new(1));
        self.store = store.with_byte_budget(budget);
        self
    }

    /// Routes one request. Panics in handlers (there should be none —
    /// solver rejections are typed errors) are caught and mapped to a
    /// 500 so a bad request can never take the daemon down.
    pub fn handle(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| self.route(request)));
        result.unwrap_or_else(|_| {
            Response::json(
                500,
                &obj([("error", Value::Str("internal handler panic".into()))]),
            )
        })
    }

    fn route(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/registry") => self.registry_listing(),
            ("GET", "/instances") => self.instances(),
            // The CPU-heavy endpoints pay a tenant rate token first.
            ("POST", "/solve") => match self.admit_tenant(request) {
                Ok(tenant) => self.solve(tenant, &request.body),
                Err(refused) => *refused,
            },
            ("POST", "/solve/anytime") => match self.admit_tenant(request) {
                Ok(tenant) => self.solve_anytime(tenant, &request.body),
                Err(refused) => *refused,
            },
            ("POST", "/batch") => match self.admit_tenant(request) {
                Ok(tenant) => self.batch(tenant, &request.body),
                Err(refused) => *refused,
            },
            ("GET", "/solve" | "/solve/anytime" | "/batch")
            | ("POST", "/healthz" | "/registry" | "/instances") => {
                error_response(405, "method not allowed for this endpoint")
            }
            _ => error_response(404, "no such endpoint"),
        }
    }

    /// Charges one solve token to the request's tenant; a drained
    /// bucket becomes the `429` + `Retry-After` refusal.
    fn admit_tenant<'r>(&self, request: &'r Request) -> Result<&'r str, Box<Response>> {
        let tenant = request.tenant();
        match self.quotas.admit_solve(tenant) {
            Ok(()) => Ok(tenant),
            Err(refusal) => Err(Box::new(
                Response::json(
                    429,
                    &obj([
                        (
                            "error",
                            Value::Str("tenant solve rate limit exceeded".into()),
                        ),
                        ("tenant", Value::Str(tenant.to_string())),
                        (
                            "retry_after_seconds",
                            Value::Num(refusal.retry_after_secs as f64),
                        ),
                    ]),
                )
                .with_header("Retry-After", refusal.retry_after_secs.to_string()),
            )),
        }
    }

    /// The `/instances` admin view: the store snapshot (per-entry
    /// advisory bytes, store-wide totals, byte budget) plus the
    /// daemon's own peak RSS — self-reported so clients that spawned
    /// the daemon through a wrapper (`cargo run`) can still read it.
    fn instances(&self) -> Response {
        let mut snapshot = self.store.snapshot_json();
        if let Value::Obj(pairs) = &mut snapshot {
            pairs.push((
                "peak_rss_mib".to_string(),
                peak_rss_mib().map_or(Value::Null, Value::Num),
            ));
        }
        Response::json(200, &snapshot)
    }

    fn healthz(&self) -> Response {
        let stats = self.store.stats();
        Response::json(
            200,
            &obj([
                ("status", Value::Str("ok".into())),
                (
                    "uptime_seconds",
                    Value::Num(self.started.elapsed().as_secs_f64()),
                ),
                ("solvers", Value::Num(self.registry.len() as f64)),
                ("instances", Value::Num(stats.len as f64)),
                ("cache_hits", Value::Num(stats.hits as f64)),
                ("cache_misses", Value::Num(stats.misses as f64)),
                (
                    "requests",
                    Value::Num(self.requests.load(Ordering::Relaxed) as f64),
                ),
                (
                    "solves",
                    Value::Num(self.solves.load(Ordering::Relaxed) as f64),
                ),
                ("anytime_sessions", Value::Num(self.sessions.len() as f64)),
                ("threads", Value::Num(rayon::current_num_threads() as f64)),
            ]),
        )
    }

    fn registry_listing(&self) -> Response {
        let solvers: Vec<Value> = self
            .registry
            .names()
            .into_iter()
            .map(|name| {
                let caps = self
                    .registry
                    .get(name)
                    .expect("listed names resolve")
                    .capabilities();
                obj([
                    ("name", Value::Str(name.into())),
                    ("capabilities", caps.to_json()),
                ])
            })
            .collect();
        Response::json(
            200,
            &obj([
                ("count", Value::Num(solvers.len() as f64)),
                ("solvers", Value::Arr(solvers)),
            ]),
        )
    }

    /// Registers + builds (or reuses) the instance for a validated
    /// request, returning the entry and whether the store already knew
    /// the key. A miss that would push the tenant past its
    /// instance-occupancy cap is refused with `429`.
    fn instance_entry(
        &self,
        recipe: DatasetRecipe,
        substrate: SubstrateSpec,
        tenant: &str,
    ) -> Result<(Arc<StoreEntry>, CacheStatus), Box<Response>> {
        let (key, canonical) = canonical_key(&recipe, &substrate, &self.instance_cfg);
        let max = self.quotas.config().max_instances;
        let (entry, status) = self
            .store
            .get_or_insert_for(&key, &canonical, tenant, max)
            .map_err(occupancy_response)?;
        entry.get_or_build(|| Instance::build(recipe, substrate, &self.instance_cfg));
        // The build just changed the store's resident footprint; evict
        // colder entries past the byte budget (never this one).
        self.store.enforce_byte_budget(&key);
        Ok((entry, status))
    }

    /// Builds (or reuses) the `num_shards` shard oracles of `entry`'s
    /// central instance and assembles them into a [`ShardedInstance`]
    /// whose merge phase restricts the central oracle to the round-2
    /// pool. Every shard is its own instance-store entry under
    /// [`shard_canonical_key`], built in parallel on the worker pool —
    /// so a repeat request with the same recipe, shard count, and seed
    /// reuses all of them. The returned status is `hit` only when every
    /// shard entry (the central one is the caller's) was already
    /// registered.
    fn sharded_instance(
        &self,
        tenant: &str,
        entry: &Arc<StoreEntry>,
        solver: &str,
        params: &ScenarioParams,
        num_shards: usize,
    ) -> Result<(Arc<ShardedInstance>, CacheStatus), Box<Response>> {
        let central = entry.built().expect("instance_entry builds");
        let invalid = |message: String| {
            let error = SolverError::InvalidParams {
                solver: solver.to_string(),
                message,
            };
            Box::new(Response::json(400, &error.to_json()))
        };
        if num_shards > central.num_items {
            return Err(invalid(format!(
                "shards must not exceed the instance's {} items (got {num_shards})",
                central.num_items
            )));
        }
        // Mirror the centralized SieveStreaming adapter's domain check
        // before doing any shard work.
        if solver == "SieveStreaming" && !(params.epsilon > 0.0 && params.epsilon < 1.0) {
            return Err(invalid(format!(
                "epsilon must lie in (0, 1), got {}",
                params.epsilon
            )));
        }
        let mut partition = shard_partition(central.num_items, num_shards, params.seed);
        for members in &mut partition {
            members.sort_unstable();
        }
        let max = self.quotas.config().max_instances;
        let seed = params.seed;
        let indexed: Vec<(usize, Vec<u32>)> = partition.into_iter().enumerate().collect();
        let built = indexed
            .into_par_iter()
            .map(|(s, members)| {
                let (key, canonical) = shard_canonical_key(&entry.canonical, s, num_shards, seed);
                let (shard_entry, status) = self
                    .store
                    .get_or_insert_for(&key, &canonical, tenant, max)
                    .map_err(occupancy_response)?;
                shard_entry.get_or_build(|| {
                    Instance::build_shard(central, s, num_shards, &members)
                        .expect("shard_partition members are a valid restriction")
                });
                self.store.enforce_byte_budget(&key);
                Ok((shard_entry, status, members))
            })
            .collect::<Vec<Result<_, Box<Response>>>>()
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let all_hit = built.iter().all(|(_, s, _)| *s == CacheStatus::Hit);
        let shards: Vec<ShardOracle> = built
            .into_iter()
            .map(|(shard_entry, _, members)| {
                let system = shard_entry
                    .built()
                    .expect("get_or_build built the shard entry")
                    .shard_system()
                    .expect("shard keys only ever hold shard instances");
                ShardOracle { members, system }
            })
            .collect();
        // The merge oracle restricts the *central* instance to the
        // round-2 pool; holding the entry's Arc keeps it alive across
        // LRU eviction for the sharded instance's whole life.
        let central_entry = Arc::clone(entry);
        let merge: MergeBuilder = Box::new(move |pool| {
            central_entry
                .built()
                .expect("merge runs on a built central entry")
                .restrict_system(pool)
                .expect("merge pool ids come from shard members")
        });
        let instance = ShardedInstance::new(shards, merge)
            .map_err(|e| Box::new(Response::json(solver_error_status(&e), &e.to_json())))?;
        Ok((
            Arc::new(instance),
            if all_hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            },
        ))
    }

    /// Opens the sharded session for one of the two shard-capable
    /// solvers (the only names [`parse_shards`] admits).
    fn open_sharded_session(
        instance: &Arc<ShardedInstance>,
        solver: &str,
        params: &ScenarioParams,
    ) -> Box<dyn SolveSession> {
        match solver {
            "GreeDi" => Box::new(ShardedGreediSession::open(Arc::clone(instance), params)),
            _ => Box::new(ShardedSieveSession::open(instance, params)),
        }
    }

    /// `POST /solve` with a `shards` field: drives the sharded session
    /// to completion server-side and finishes it against the central
    /// system, so the report is identical to the centralized solver's
    /// for the same recipe and params (up to wall-clock `seconds`).
    fn solve_sharded(
        &self,
        tenant: &str,
        entry: &Arc<StoreEntry>,
        central_status: CacheStatus,
        solver: &str,
        params: &ScenarioParams,
        num_shards: usize,
    ) -> Response {
        let started = Instant::now();
        let (sharded, shard_status) =
            match self.sharded_instance(tenant, entry, solver, params, num_shards) {
                Ok(ok) => ok,
                Err(refused) => return *refused,
            };
        let status = combine_status(central_status, shard_status);
        let mut session = Self::open_sharded_session(&sharded, solver, params);
        let central = entry.built().expect("instance_entry builds");
        let system = central.system();
        while !session.done() {
            session.step(system);
        }
        self.solves.fetch_add(1, Ordering::Relaxed);
        match session.finish(system) {
            Ok(mut report) => {
                let eval = central.evaluate(&report.items);
                report.f = eval.f;
                report.g = eval.g;
                report.group_utilities = eval.group_means;
                report.seconds = started.elapsed().as_secs_f64();
                Response::json(200, &report.to_json())
                    .with_header("X-Instance-Cache", status.as_str())
                    .with_header("X-Instance-Key", entry.key.clone())
                    .with_header("X-Instance-Cache-Hits", self.store.stats().hits.to_string())
            }
            Err(error) => Response::json(solver_error_status(&error), &error.to_json())
                .with_header("X-Instance-Cache", status.as_str()),
        }
    }

    fn solve(&self, tenant: &str, body: &[u8]) -> Response {
        let (recipe, substrate, value) = match parse_instance_request(body) {
            Ok(parts) => parts,
            Err(response) => return *response,
        };
        let solver = match value.get("solver").and_then(Value::as_str) {
            Some(s) => s.to_string(),
            None => return error_response(400, "request needs a 'solver' name"),
        };
        let mut params = match value.get("params") {
            Some(p) => match ScenarioParams::from_json(p) {
                Ok(params) => params,
                Err(e) => return error_response(400, &format!("bad params: {e}")),
            },
            None => return error_response(400, "request needs a 'params' object with k and tau"),
        };
        let shards = match parse_shards(&value, &solver) {
            Ok(shards) => shards,
            Err(refused) => return *refused,
        };

        let (entry, status) = match self.instance_entry(recipe, substrate, tenant) {
            Ok(found) => found,
            Err(refused) => return *refused,
        };
        if let Some(num_shards) = shards {
            // Keep the report's "shards" note consistent with the
            // partition actually used (and with a centralized GreeDi
            // run of the same params, which reads `params.shards`).
            params.shards = num_shards;
            return self.solve_sharded(tenant, &entry, status, &solver, &params, num_shards);
        }
        let instance = entry.built().expect("instance_entry builds");
        self.solves.fetch_add(1, Ordering::Relaxed);
        match self.registry.solve(&solver, instance.system(), &params) {
            Ok(mut report) => {
                // Re-evaluate the solution the way the harness does
                // (Monte-Carlo for influence, oracle-exact otherwise).
                let eval = instance.evaluate(&report.items);
                report.f = eval.f;
                report.g = eval.g;
                report.group_utilities = eval.group_means;
                Response::json(200, &report.to_json())
                    .with_header("X-Instance-Cache", status.as_str())
                    .with_header("X-Instance-Key", entry.key.clone())
                    .with_header("X-Instance-Cache-Hits", self.store.stats().hits.to_string())
            }
            Err(error) => Response::json(solver_error_status(&error), &error.to_json())
                .with_header("X-Instance-Cache", status.as_str()),
        }
    }

    /// `POST /solve/anytime`: runs a resumable solve in bounded step
    /// chunks with per-round progress.
    ///
    /// Opening request: the `/solve` body plus optional `max_rounds`
    /// (steps this chunk, default 16). If the session finishes within
    /// the chunk the final `report` is returned; otherwise the response
    /// carries a `session` handle (embedding the instance-store key) to
    /// resume with `{"session": "<handle>", "max_rounds": N}`. Solvers
    /// without a native incremental core (capability `resumable =
    /// false`) complete in one chunk by construction. A handle is
    /// single-flight: while one request steps it, concurrent resumes
    /// see 404.
    fn solve_anytime(&self, tenant: &str, body: &[u8]) -> Response {
        let Ok(value) = parse_bytes(body) else {
            return error_response(400, "bad JSON body");
        };
        let max_rounds = value
            .get("max_rounds")
            .and_then(Value::as_usize)
            .unwrap_or(DEFAULT_ANYTIME_CHUNK)
            .clamp(1, MAX_ANYTIME_CHUNK);

        // Resume path: handle only, no dataset re-validation needed —
        // the parked session pins its instance through the entry Arc.
        if let Some(handle) = value.get("session").and_then(Value::as_str) {
            let Some(parked) = self.sessions.take(handle) else {
                return error_response(
                    404,
                    "unknown session handle (finished, evicted, or being stepped)",
                );
            };
            return self.step_session_chunk(parked, max_rounds);
        }

        // Open path: same shape as /solve (the body was parsed once
        // above for max_rounds/session).
        let (recipe, substrate) = match parse_instance_value(&value) {
            Ok(parts) => parts,
            Err(response) => return *response,
        };
        let solver = match value.get("solver").and_then(Value::as_str) {
            Some(s) => s.to_string(),
            None => return error_response(400, "request needs a 'solver' name"),
        };
        let mut params = match value.get("params") {
            Some(p) => match ScenarioParams::from_json(p) {
                Ok(params) => params,
                Err(e) => return error_response(400, &format!("bad params: {e}")),
            },
            None => return error_response(400, "request needs a 'params' object with k and tau"),
        };
        let shards = match parse_shards(&value, &solver) {
            Ok(shards) => shards,
            Err(refused) => return *refused,
        };

        let (entry, mut status) = match self.instance_entry(recipe, substrate, tenant) {
            Ok(found) => found,
            Err(refused) => return *refused,
        };
        let instance = entry.built().expect("instance_entry builds");
        let session = if let Some(num_shards) = shards {
            params.shards = num_shards;
            let (sharded, shard_status) =
                match self.sharded_instance(tenant, &entry, &solver, &params, num_shards) {
                    Ok(ok) => ok,
                    Err(refused) => return *refused,
                };
            status = combine_status(status, shard_status);
            // Sharded sessions own their shard oracles and ignore the
            // system passed to `step`; parking them on the *central*
            // entry makes `finish` evaluate against the central oracle,
            // so the final report matches the centralized solver's.
            Self::open_sharded_session(&sharded, &solver, &params)
        } else {
            match self
                .registry
                .open_session(&solver, instance.system(), &params)
            {
                Ok(session) => session,
                Err(error) => {
                    return Response::json(solver_error_status(&error), &error.to_json())
                        .with_header("X-Instance-Cache", status.as_str())
                }
            }
        };
        self.solves.fetch_add(1, Ordering::Relaxed);
        let parked = ParkedSession {
            id: self.sessions.mint_id(&entry.key),
            tenant: tenant.to_string(),
            solver,
            k: params.k,
            entry: Arc::clone(&entry),
            session,
            steps: 0,
        };
        self.step_session_chunk(parked, max_rounds)
            .with_header("X-Instance-Cache", status.as_str())
    }

    /// Steps a (fresh or resumed) session for up to `max_rounds`
    /// rounds, collecting one progress row per round, and either
    /// returns the final report or parks the session for the next
    /// chunk.
    fn step_session_chunk(&self, mut parked: ParkedSession, max_rounds: usize) -> Response {
        let start = Instant::now();
        let mut progress: Vec<Value> = Vec::new();
        {
            let instance = parked
                .entry
                .built()
                .expect("parked sessions hold built entries");
            let system = instance.system();
            let mut chunk_steps = 0usize;
            while chunk_steps < max_rounds && !parked.session.done() {
                parked.session.step(system);
                parked.steps += 1;
                chunk_steps += 1;
                let snap = parked.session.snapshot();
                progress.push(obj([
                    ("round", Value::Num(snap.round as f64)),
                    ("objective", Value::Num(snap.objective)),
                    (
                        "group_sums",
                        Value::Arr(snap.group_sums.iter().map(|&s| Value::Num(s)).collect()),
                    ),
                    ("solution_size", Value::Num(snap.items.len() as f64)),
                    ("oracle_calls", Value::Num(snap.oracle_calls as f64)),
                ]));
            }
        }
        let done = parked.session.done();
        let mut pairs: Vec<(&'static str, Value)> = vec![
            ("solver", Value::Str(parked.solver.clone())),
            ("k", Value::Num(parked.k as f64)),
            ("done", Value::Bool(done)),
            ("steps_total", Value::Num(parked.steps as f64)),
            ("instance_key", Value::Str(parked.entry.key.clone())),
            ("seconds", Value::Num(start.elapsed().as_secs_f64())),
            ("progress", Value::Arr(progress)),
        ];
        if done {
            let instance = parked
                .entry
                .built()
                .expect("parked sessions hold built entries");
            let mut report = match parked.session.finish(instance.system()) {
                Ok(report) => report,
                Err(error) => return Response::json(solver_error_status(&error), &error.to_json()),
            };
            // Re-evaluate the way /solve does (Monte-Carlo for
            // influence, oracle-exact otherwise).
            let eval = instance.evaluate(&report.items);
            report.f = eval.f;
            report.g = eval.g;
            report.group_utilities = eval.group_means;
            pairs.push(("report", report.to_json()));
            // Finished sessions are not re-parked; the handle dies.
        } else {
            let handle = parked.id.clone();
            let max = self.quotas.config().max_sessions;
            if self.sessions.park_for(parked, max).is_err() {
                // The chunk's work is discarded — honest accounting:
                // a tenant at its session cap cannot bank more state.
                return Response::json(
                    429,
                    &obj([
                        (
                            "error",
                            Value::Str("tenant session quota exceeded; progress discarded".into()),
                        ),
                        ("limit", Value::Num(max as f64)),
                    ]),
                )
                .with_header("Retry-After", "1");
            }
            pairs.push(("session", Value::Str(handle)));
        }
        Response::json(200, &obj(pairs))
    }

    fn batch(&self, tenant: &str, body: &[u8]) -> Response {
        let job = match parse_bytes(body)
            .map_err(|e| e.to_string())
            .and_then(|v| GridJob::from_json(&v).map_err(|e| e.to_string()))
        {
            Ok(job) => job,
            Err(message) => return error_response(400, &format!("bad batch job: {message}")),
        };
        if let Err(message) = job.validate() {
            return error_response(400, &message);
        }
        if let Err(message) = validate_request(&job.dataset, &job.substrate) {
            return error_response(400, &message);
        }
        let mut base = ScenarioParams::new(job.ks[0], job.taus[0]);
        if let Some(limit) = job.exact_node_limit {
            base.exact_node_limit = limit;
        }
        let grid = GridConfig {
            solvers: job.solvers.clone(),
            ks: job.ks.clone(),
            taus: job.taus.clone(),
            epsilons: job.epsilons.clone(),
            shards: job.shards.clone(),
            repetitions: job.repetitions.max(1),
            warm_sweeps: true,
            base,
        };
        let num_cells = match grid.num_cells() {
            Ok(n) => n,
            Err(e) => return error_response(400, &format!("bad batch grid: {e}")),
        };

        let (entry, status) =
            match self.instance_entry(job.dataset.clone(), job.substrate.clone(), tenant) {
                Ok(found) => found,
                Err(refused) => return *refused,
            };
        let instance = entry.built().expect("instance_entry builds");
        self.solves.fetch_add(num_cells as u64, Ordering::Relaxed);
        let results = match run_suite(
            instance.system(),
            &|items| instance.evaluate_capped(items, job.mc_runs_cap),
            &self.registry,
            &grid,
        ) {
            Ok(results) => results,
            Err(e) => return error_response(400, &format!("bad batch grid: {e}")),
        };
        let label = format!("{}{}", instance.dataset_name, job.label_suffix);
        let mut ok_cells = 0usize;
        let mut capability_gaps = 0usize;
        let mut error_cells = 0usize;
        let cells: Vec<Value> = results
            .iter()
            .map(|cell| {
                match &cell.outcome {
                    Ok(_) => ok_cells += 1,
                    Err(
                        SolverError::UnsupportedGroupCount { .. }
                        | SolverError::GridTooLarge { .. },
                    ) => capability_gaps += 1,
                    Err(_) => error_cells += 1,
                }
                cell_to_json(&label, cell)
            })
            .collect();
        Response::json(
            200,
            &obj([
                ("dataset", Value::Str(label)),
                ("ok_cells", Value::Num(ok_cells as f64)),
                ("capability_gaps", Value::Num(capability_gaps as f64)),
                ("error_cells", Value::Num(error_cells as f64)),
                ("cells", Value::Arr(cells)),
            ]),
        )
        .with_header("X-Instance-Cache", status.as_str())
        .with_header("X-Instance-Key", entry.key.clone())
    }
}

/// Parses and validates the `dataset` + `substrate` of a request body,
/// returning the remaining JSON for endpoint-specific fields.
fn parse_instance_request(
    body: &[u8],
) -> Result<(DatasetRecipe, SubstrateSpec, Value), Box<Response>> {
    let value = parse_bytes(body)
        .map_err(|e| Box::new(error_response(400, &format!("bad JSON body: {e}"))))?;
    let (recipe, substrate) = parse_instance_value(&value)?;
    Ok((recipe, substrate, value))
}

/// [`parse_instance_request`] over an already-parsed body, for handlers
/// that read other fields first.
fn parse_instance_value(value: &Value) -> Result<(DatasetRecipe, SubstrateSpec), Box<Response>> {
    let recipe = value
        .get("dataset")
        .ok_or_else(|| Box::new(error_response(400, "request needs a 'dataset' recipe")))
        .and_then(|v| {
            DatasetRecipe::from_json(v)
                .map_err(|e| Box::new(error_response(400, &format!("bad dataset: {e}"))))
        })?;
    let substrate = value
        .get("substrate")
        .ok_or_else(|| Box::new(error_response(400, "request needs a 'substrate'")))
        .and_then(|v| {
            SubstrateSpec::from_json(v)
                .map_err(|e| Box::new(error_response(400, &format!("bad substrate: {e}"))))
        })?;
    validate_request(&recipe, &substrate).map_err(|m| Box::new(error_response(400, &m)))?;
    Ok((recipe, substrate))
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux. Self-reported through
/// `/instances` so benchmark clients that spawned the daemon behind a
/// wrapper process can read the daemon's own high-water mark.
#[cfg(target_os = "linux")]
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_mib() -> Option<f64> {
    None
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, &obj([("error", Value::Str(message.into()))]))
}

/// The `429` a tenant gets when a registration would push it past its
/// instance-occupancy cap (shared by the central and shard entries).
fn occupancy_response(occupancy: OccupancyExceeded) -> Box<Response> {
    Box::new(
        Response::json(
            429,
            &obj([
                ("error", Value::Str("tenant instance quota exceeded".into())),
                ("tenant", Value::Str(occupancy.tenant)),
                ("held", Value::Num(occupancy.held as f64)),
                ("limit", Value::Num(occupancy.limit as f64)),
            ]),
        )
        .with_header("Retry-After", "1"),
    )
}

/// `hit` only when both the central entry and every shard entry were
/// already registered — a partial reuse still rebuilt something.
fn combine_status(a: CacheStatus, b: CacheStatus) -> CacheStatus {
    if a == CacheStatus::Hit && b == CacheStatus::Hit {
        CacheStatus::Hit
    } else {
        CacheStatus::Miss
    }
}

/// Parses the optional top-level `shards` field of a solve body:
/// `None` means a centralized solve, `Some(p)` a validated sharded one.
/// Rejections are the engine's typed `invalid_params` JSON, not bare
/// strings, so clients can dispatch on `kind`.
fn parse_shards(value: &Value, solver: &str) -> Result<Option<usize>, Box<Response>> {
    let Some(raw) = value.get("shards") else {
        return Ok(None);
    };
    let invalid = |message: String| {
        let error = SolverError::InvalidParams {
            solver: solver.to_string(),
            message,
        };
        Box::new(Response::json(400, &error.to_json()))
    };
    let shards = raw
        .as_usize()
        .filter(|p| (1..=MAX_SOLVE_SHARDS).contains(p))
        .ok_or_else(|| {
            invalid(format!(
                "'shards' must be an integer in 1..={MAX_SOLVE_SHARDS} (got {raw:?})"
            ))
        })?;
    if !matches!(solver, "GreeDi" | "SieveStreaming") {
        return Err(invalid(format!(
            "sharded solves support GreeDi and SieveStreaming (got {solver})"
        )));
    }
    Ok(Some(shards))
}

fn solver_error_status(error: &SolverError) -> u16 {
    match error {
        SolverError::UnknownSolver { .. } => 404,
        SolverError::UnsupportedGroupCount { .. } | SolverError::GridTooLarge { .. } => 422,
        SolverError::InvalidParams { .. } => 400,
    }
}

/// Binds `addr` and serves `state` on the **event-driven** server with
/// default [`EventConfig`] (the readiness loop blocks the calling
/// thread; it returns only after a graceful shutdown). Reports the
/// bound address through `on_bound` before entering the loop, so
/// callers can log the ephemeral port.
pub fn serve(
    addr: &str,
    state: Arc<ServiceState>,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    serve_with(addr, state, EventConfig::default(), on_bound)
}

/// [`serve`] with explicit event-loop knobs.
pub fn serve_with(
    addr: &str,
    state: Arc<ServiceState>,
    config: EventConfig,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let server = EventServer::bind(addr, config)?;
    on_bound(server.local_addr()?);
    server.run(Arc::new(move |request: &Request| state.handle(request)))
}

/// The pre-event-loop path, kept as the `--blocking` escape hatch and
/// as the reference twin for response-equivalence testing: one thread
/// per connection over the exact same [`ServiceState::handle`].
pub fn serve_blocking(
    addr: &str,
    state: Arc<ServiceState>,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let server = Server::bind(addr)?;
    on_bound(server.local_addr()?);
    server.run(Arc::new(move |request: &Request| state.handle(request)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn state() -> ServiceState {
        ServiceState::new(4, InstanceConfig::default().quick())
    }

    const TINY_SOLVE: &str = r#"{
        "dataset": {"kind": "rand_mc", "c": 2, "n": 40},
        "substrate": "coverage",
        "solver": "Greedy",
        "params": {"k": 3, "tau": 0.8}
    }"#;

    #[test]
    fn healthz_and_registry_respond() {
        let s = state();
        let health = s.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let body = parse_bytes(&health.body).unwrap();
        assert_eq!(body.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(body.get("solvers").and_then(Value::as_usize), Some(16));

        let registry = s.handle(&get("/registry"));
        assert_eq!(registry.status, 200);
        let body = parse_bytes(&registry.body).unwrap();
        let solvers = body.get("solvers").and_then(Value::as_arr).unwrap();
        assert_eq!(solvers.len(), 16);
        assert!(solvers.iter().any(|v| {
            v.get("name").and_then(Value::as_str) == Some("SMSC")
                && v.get("capabilities")
                    .and_then(|c| c.get("requires_two_groups"))
                    .and_then(Value::as_bool)
                    == Some(true)
        }));
    }

    #[test]
    fn instances_view_reports_bytes_and_rss() {
        let s = state();
        assert_eq!(s.handle(&post("/solve", TINY_SOLVE)).status, 200);
        let view = s.handle(&get("/instances"));
        assert_eq!(view.status, 200);
        let body = parse_bytes(&view.body).unwrap();
        let total = body.get("total_bytes").and_then(Value::as_f64).unwrap();
        assert!(total > 0.0, "built entry must report a footprint");
        assert!(matches!(body.get("byte_budget"), Some(Value::Null)));
        let rows = body.get("instances").and_then(Value::as_arr).unwrap();
        let per_entry = rows[0]
            .get("instance")
            .and_then(|i| i.get("approx_bytes"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(per_entry, total);
        #[cfg(target_os = "linux")]
        assert!(
            body.get("peak_rss_mib").and_then(Value::as_f64).unwrap() > 0.0,
            "daemon self-reports its VmHWM on Linux"
        );
    }

    #[test]
    fn byte_budget_bounds_the_store_across_solves() {
        // Budget small enough that the two distinct instances below can
        // never be resident together; every solve still succeeds.
        let s =
            ServiceState::new(4, InstanceConfig::default().quick()).with_instance_byte_budget(1);
        const OTHER_SOLVE: &str = r#"{
            "dataset": {"kind": "rand_mc", "c": 2, "n": 44},
            "substrate": "coverage",
            "solver": "Greedy",
            "params": {"k": 3, "tau": 0.8}
        }"#;
        assert_eq!(s.handle(&post("/solve", TINY_SOLVE)).status, 200);
        assert_eq!(s.handle(&post("/solve", OTHER_SOLVE)).status, 200);
        assert_eq!(s.handle(&post("/solve", TINY_SOLVE)).status, 200);
        let stats = s.store.stats();
        assert_eq!(stats.len, 1, "over-budget entries are evicted");
        assert!(stats.byte_evictions >= 2);
        let body = parse_bytes(&s.handle(&get("/instances")).body).unwrap();
        assert_eq!(body.get("byte_budget").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn solve_reports_cache_status_and_report() {
        let s = state();
        let first = s.handle(&post("/solve", TINY_SOLVE));
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        let cache = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "X-Instance-Cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(cache(&first).as_deref(), Some("miss"));
        let report = parse_bytes(&first.body).unwrap();
        assert_eq!(report.get("solver").and_then(Value::as_str), Some("Greedy"));
        assert_eq!(
            report
                .get("items")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(3)
        );

        let second = s.handle(&post("/solve", TINY_SOLVE));
        assert_eq!(second.status, 200);
        assert_eq!(cache(&second).as_deref(), Some("hit"));
        let stats = s.store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn solve_maps_typed_errors_to_statuses() {
        let s = state();
        let unknown = TINY_SOLVE.replace("Greedy", "NotASolver");
        assert_eq!(s.handle(&post("/solve", &unknown)).status, 404);
        // SMSC on a c=4 instance: a capability gap, 422.
        let gap = r#"{
            "dataset": {"kind": "rand_mc", "c": 4, "n": 40},
            "substrate": "coverage",
            "solver": "SMSC",
            "params": {"k": 3, "tau": 0.8}
        }"#;
        let resp = s.handle(&post("/solve", gap));
        assert_eq!(resp.status, 422);
        let body = parse_bytes(&resp.body).unwrap();
        assert_eq!(
            body.get("kind").and_then(Value::as_str),
            Some("unsupported_group_count")
        );
    }

    #[test]
    fn bad_requests_are_400s_not_panics() {
        let s = state();
        assert_eq!(s.handle(&post("/solve", "not json")).status, 400);
        assert_eq!(s.handle(&post("/solve", "{}")).status, 400);
        // rand_mc c=3 would panic in the builder; validation rejects it.
        let bad_c = TINY_SOLVE.replace("\"c\": 2", "\"c\": 3");
        assert_eq!(s.handle(&post("/solve", &bad_c)).status, 400);
        // Mismatched substrate/dataset family.
        let mismatch = TINY_SOLVE.replace("\"coverage\"", "\"facility\"");
        assert_eq!(s.handle(&post("/solve", &mismatch)).status, 400);
        // Unknown endpoints and wrong methods.
        assert_eq!(s.handle(&get("/nope")).status, 404);
        assert_eq!(s.handle(&get("/solve")).status, 405);
        assert_eq!(s.handle(&post("/healthz", "")).status, 405);
    }

    /// The report body with wall-clock `seconds` stripped — the only
    /// field the sharded and centralized paths may legitimately differ
    /// in.
    fn sans_seconds(body: &[u8]) -> String {
        let Value::Obj(pairs) = parse_bytes(body).unwrap() else {
            panic!("report bodies are objects")
        };
        Value::Obj(pairs.into_iter().filter(|(k, _)| k != "seconds").collect()).to_compact_string()
    }

    fn solve_body(solver: &str, shards: Option<usize>) -> String {
        let top = shards.map_or(String::new(), |p| format!("\"shards\": {p},"));
        format!(
            r#"{{
                "dataset": {{"kind": "rand_mc", "c": 2, "n": 48}},
                "substrate": "coverage",
                "solver": "{solver}",
                {top}
                "params": {{"k": 4, "tau": 0.8, "shards": 3, "epsilon": 0.1}}
            }}"#
        )
    }

    #[test]
    fn sharded_solve_reports_are_byte_identical_to_centralized() {
        for solver in ["GreeDi", "SieveStreaming"] {
            let s = state();
            let sharded = s.handle(&post("/solve", &solve_body(solver, Some(3))));
            let central = s.handle(&post("/solve", &solve_body(solver, None)));
            assert_eq!(
                sharded.status,
                200,
                "{}",
                String::from_utf8_lossy(&sharded.body)
            );
            assert_eq!(central.status, 200);
            assert_eq!(
                sans_seconds(&sharded.body),
                sans_seconds(&central.body),
                "{solver} sharded report must match the centralized one"
            );
        }
    }

    #[test]
    fn repeated_sharded_solves_reuse_every_shard_entry() {
        let s = state();
        let cache = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "X-Instance-Cache")
                .map(|(_, v)| v.clone())
        };
        let first = s.handle(&post("/solve", &solve_body("GreeDi", Some(2))));
        assert_eq!(first.status, 200);
        assert_eq!(cache(&first).as_deref(), Some("miss"));
        // Central + 2 shard entries registered.
        assert_eq!(s.store.stats().len, 3);
        let second = s.handle(&post("/solve", &solve_body("GreeDi", Some(2))));
        assert_eq!(second.status, 200);
        assert_eq!(
            cache(&second).as_deref(),
            Some("hit"),
            "central and both shard entries were cached"
        );
        assert_eq!(s.store.stats().len, 3, "no new entries on the repeat");
        // A different shard count cuts different columns: partial miss.
        let recut = s.handle(&post("/solve", &solve_body("GreeDi", Some(3))));
        assert_eq!(cache(&recut).as_deref(), Some("miss"));
    }

    #[test]
    fn bad_shards_are_typed_400s() {
        let s = state();
        for bad in [
            solve_body("GreeDi", Some(0)),
            solve_body("GreeDi", Some(MAX_SOLVE_SHARDS + 1)),
            solve_body("GreeDi", Some(49)), // > num_items = 48
            solve_body("Greedy", Some(2)),  // not a shard-capable solver
            solve_body("GreeDi", None).replace("\"solver\"", "\"shards\": 1.5, \"solver\""),
        ] {
            let resp = s.handle(&post("/solve", &bad));
            assert_eq!(resp.status, 400, "{bad}");
            let body = parse_bytes(&resp.body).unwrap();
            assert_eq!(
                body.get("kind").and_then(Value::as_str),
                Some("invalid_params"),
                "{bad}"
            );
        }
    }

    #[test]
    fn sharded_anytime_steps_one_shard_per_round_and_matches_solve() {
        let s = state();
        // 3 shard rounds + 1 merge round for GreeDi over 3 shards.
        let open = format!(
            r#"{{"max_rounds": 2, {}"#,
            solve_body("GreeDi", Some(3))
                .trim_start()
                .trim_start_matches('{')
        );
        let first = s.handle(&post("/solve/anytime", &open));
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let body = parse_bytes(&first.body).unwrap();
        assert_eq!(body.get("done").and_then(Value::as_bool), Some(false));
        let handle = body
            .get("session")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let resume = s.handle(&post(
            "/solve/anytime",
            &format!(r#"{{"session": "{handle}", "max_rounds": 10}}"#),
        ));
        assert_eq!(resume.status, 200);
        let body = parse_bytes(&resume.body).unwrap();
        assert_eq!(body.get("done").and_then(Value::as_bool), Some(true));
        assert_eq!(body.get("steps_total").and_then(Value::as_usize), Some(4));
        let report = body.get("report").unwrap();
        // The finished anytime report matches the one-shot sharded (and
        // therefore centralized) report.
        let oneshot = s.handle(&post("/solve", &solve_body("GreeDi", Some(3))));
        let oneshot = parse_bytes(&oneshot.body).unwrap();
        assert_eq!(
            report.get("items").unwrap().to_compact_string(),
            oneshot.get("items").unwrap().to_compact_string()
        );
        assert_eq!(
            report.get("f").and_then(Value::as_f64).unwrap().to_bits(),
            oneshot.get("f").and_then(Value::as_f64).unwrap().to_bits()
        );
    }

    #[test]
    fn batch_runs_a_grid_on_one_shared_instance() {
        let s = state();
        let job = r#"{
            "dataset": {"kind": "rand_mc", "c": 2, "n": 40},
            "substrate": "coverage",
            "solvers": ["Greedy", "BSM-TSGreedy", "SMSC"],
            "ks": [2, 3],
            "taus": [0.5]
        }"#;
        let resp = s.handle(&post("/batch", job));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let body = parse_bytes(&resp.body).unwrap();
        assert_eq!(body.get("ok_cells").and_then(Value::as_usize), Some(6));
        assert_eq!(
            body.get("cells")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(6)
        );
        // A follow-up solve on the same recipe reuses the instance.
        let resp = s.handle(&post("/solve", TINY_SOLVE));
        assert_eq!(
            resp.headers
                .iter()
                .find(|(n, _)| n == "X-Instance-Cache")
                .map(|(_, v)| v.as_str()),
            Some("hit")
        );
    }

    #[test]
    fn batch_honors_mc_runs_cap_like_the_scenario_runner() {
        let s = state();
        let job = |cap: &str| {
            format!(
                r#"{{
                    "dataset": {{"kind": "rand_mc", "c": 2, "n": 40, "seed_offset": 2}},
                    "substrate": {{"influence_p": 0.1}},
                    "solvers": ["Greedy"],
                    "ks": [2],
                    "taus": [0.5]{cap}
                }}"#
            )
        };
        let capped = s.handle(&post("/batch", &job(r#", "mc_runs_cap": 10"#)));
        let uncapped = s.handle(&post("/batch", &job("")));
        assert_eq!(capped.status, 200);
        assert_eq!(uncapped.status, 200);
        let f_of = |resp: &Response| {
            parse_bytes(&resp.body)
                .unwrap()
                .get("cells")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .get("report")
                .unwrap()
                .get("f")
                .and_then(Value::as_f64)
                .unwrap()
        };
        // 10 MC runs vs the quick default (1000) must give different
        // evaluation estimates for the same selection — proof the cap
        // reaches the evaluator, matching scenario.rs semantics.
        assert_ne!(f_of(&capped).to_bits(), f_of(&uncapped).to_bits());
    }
}
