//! The instance store: a bounded, LRU-evicting cache of built
//! [`Instance`]s keyed by their canonical recipe hash.
//!
//! The store separates *registration* from *construction*. A request
//! first registers its key under the store mutex — a cheap operation
//! that either finds the existing entry (a **hit**) or inserts an
//! empty slot, evicting the least-recently-used entry if the store is
//! full (a **miss**). Construction then happens *outside* the store
//! lock through the slot's [`std::sync::OnceLock`]: the first request
//! for a key builds the instance while concurrent requests for the
//! same key block only on that slot, and requests for other keys
//! proceed untouched. Evicting a key whose instance is still being
//! used (or built) is safe: holders keep the entry alive through its
//! `Arc`, the store merely forgets it.
//!
//! Besides the slot-count cap, the store can carry a **byte budget**
//! ([`InstanceStore::with_byte_budget`], DESIGN.md §11): after a build
//! finishes, [`InstanceStore::enforce_byte_budget`] evicts
//! least-recently-used *built* entries until the sum of advisory
//! [`Instance::approx_bytes`] footprints fits the budget again. The
//! entry being protected (the one the current request just used) is
//! never the victim, so a single oversized instance still serves its
//! own request.

use std::sync::{Arc, Mutex, OnceLock};

use serde::json::{obj, Value};

use crate::instance::Instance;

/// Whether a lookup found an already-registered instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// The key was already registered; no rebuild needed.
    Hit,
    /// The key was newly registered; the caller builds the instance.
    Miss,
}

impl CacheStatus {
    /// Header-friendly rendering (`hit` / `miss`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// A tenant asked to register a new instance while already holding its
/// occupancy cap (see [`crate::tenants::QuotaConfig::max_instances`]).
#[derive(Clone, Debug)]
pub struct OccupancyExceeded {
    /// The refused tenant (`""` = anonymous).
    pub tenant: String,
    /// Slots the tenant currently holds.
    pub held: usize,
    /// The per-tenant cap in force.
    pub limit: usize,
}

/// One cache slot: the canonical identity plus the lazily-built
/// instance.
pub struct StoreEntry {
    /// Cache key: hex FNV-1a of the canonical JSON.
    pub key: String,
    /// The canonical JSON the key hashes.
    pub canonical: String,
    cell: OnceLock<Instance>,
}

impl StoreEntry {
    /// The instance, building it on first call. Concurrent callers for
    /// the same entry block until the single build finishes.
    pub fn get_or_build(&self, build: impl FnOnce() -> Instance) -> &Instance {
        self.cell.get_or_init(build)
    }

    /// The instance, if it has finished building.
    pub fn built(&self) -> Option<&Instance> {
        self.cell.get()
    }
}

struct Slot {
    entry: Arc<StoreEntry>,
    /// Tenant that first registered the entry (`""` = anonymous);
    /// counted against that tenant's occupancy quota.
    tenant: String,
    last_used: u64,
    hits: u64,
}

struct Inner {
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    byte_evictions: u64,
    slots: Vec<Slot>,
}

impl Inner {
    /// Sum of advisory footprints over the *built* entries (an unbuilt
    /// slot's size is unknown until its build finishes).
    fn total_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.entry.built())
            .map(|i| i.approx_bytes())
            .sum()
    }
}

/// Aggregate store counters, as reported by `/instances`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a registered instance.
    pub hits: u64,
    /// Lookups that registered a new instance.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Currently registered instances.
    pub len: usize,
    /// Maximum registered instances.
    pub capacity: usize,
    /// Entries dropped by the byte budget (also counted in
    /// `evictions`).
    pub byte_evictions: u64,
    /// Sum of advisory footprints over the built entries.
    pub total_bytes: usize,
}

/// Bounded LRU cache of [`StoreEntry`]s; all methods take `&self` and
/// are safe to call from many request threads.
pub struct InstanceStore {
    capacity: usize,
    /// Advisory byte budget over built entries; `usize::MAX` =
    /// unlimited.
    byte_budget: usize,
    inner: Mutex<Inner>,
}

impl InstanceStore {
    /// An empty store holding at most `capacity` instances (no byte
    /// budget).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            byte_budget: usize::MAX,
            inner: Mutex::new(Inner {
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                byte_evictions: 0,
                slots: Vec::new(),
            }),
        }
    }

    /// Caps the sum of built entries' advisory footprints at `budget`
    /// bytes (builder-style; `usize::MAX` = unlimited). Enforced by
    /// [`Self::enforce_byte_budget`], which request handlers call after
    /// each build.
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = budget.max(1);
        self
    }

    /// The configured byte budget, if one is set.
    pub fn byte_budget(&self) -> Option<usize> {
        (self.byte_budget != usize::MAX).then_some(self.byte_budget)
    }

    /// Evicts least-recently-used **built** entries until the total
    /// advisory footprint fits the byte budget, never evicting the
    /// `protect` key (the entry the current request just built or hit —
    /// evicting it would let one oversized instance churn itself out
    /// from under its own request). Unbuilt slots are skipped: their
    /// size is unknown and a builder is about to publish into them.
    /// Returns the number of entries evicted.
    pub fn enforce_byte_budget(&self, protect: &str) -> usize {
        if self.byte_budget == usize::MAX {
            return 0;
        }
        let mut inner = self.inner.lock().expect("instance store poisoned");
        let mut evicted = 0usize;
        while inner.total_bytes() > self.byte_budget {
            let victim = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.entry.key != protect && s.entry.built().is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    inner.slots.remove(i);
                    inner.evictions += 1;
                    inner.byte_evictions += 1;
                    evicted += 1;
                }
                // Only the protected entry (and unbuilt slots) remain:
                // over budget but nothing evictable.
                None => break,
            }
        }
        evicted
    }

    /// Looks up `key`, registering an empty entry (and evicting the
    /// least-recently-used one if full) when absent. Never builds —
    /// call [`StoreEntry::get_or_build`] on the returned entry outside
    /// the store lock.
    pub fn get_or_insert(&self, key: &str, canonical: &str) -> (Arc<StoreEntry>, CacheStatus) {
        self.get_or_insert_for(key, canonical, "", usize::MAX)
            .expect("unlimited occupancy cannot be exceeded")
    }

    /// [`Self::get_or_insert`] with tenant attribution: a **miss** that
    /// would push `tenant` past `max_per_tenant` registered slots is
    /// refused (hits never are — they add no occupancy). The check is
    /// taken before LRU eviction, so a tenant at its cap cannot churn
    /// the cache even when the victim would have been its own entry.
    pub fn get_or_insert_for(
        &self,
        key: &str,
        canonical: &str,
        tenant: &str,
        max_per_tenant: usize,
    ) -> Result<(Arc<StoreEntry>, CacheStatus), OccupancyExceeded> {
        let mut inner = self.inner.lock().expect("instance store poisoned");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(slot) = inner.slots.iter_mut().find(|s| s.entry.key == key) {
            slot.last_used = now;
            slot.hits += 1;
            let entry = Arc::clone(&slot.entry);
            inner.hits += 1;
            return Ok((entry, CacheStatus::Hit));
        }
        if max_per_tenant != usize::MAX {
            let held = inner.slots.iter().filter(|s| s.tenant == tenant).count();
            if held >= max_per_tenant {
                return Err(OccupancyExceeded {
                    tenant: tenant.to_string(),
                    held,
                    limit: max_per_tenant,
                });
            }
        }
        if inner.slots.len() >= self.capacity {
            let lru = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            inner.slots.remove(lru);
            inner.evictions += 1;
        }
        let entry = Arc::new(StoreEntry {
            key: key.to_string(),
            canonical: canonical.to_string(),
            cell: OnceLock::new(),
        });
        inner.slots.push(Slot {
            entry: Arc::clone(&entry),
            tenant: tenant.to_string(),
            last_used: now,
            hits: 0,
        });
        inner.misses += 1;
        Ok((entry, CacheStatus::Miss))
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("instance store poisoned");
        StoreStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.slots.len(),
            capacity: self.capacity,
            byte_evictions: inner.byte_evictions,
            total_bytes: inner.total_bytes(),
        }
    }

    /// The `/instances` admin view: aggregate counters plus one row per
    /// registered instance (most recently used first).
    pub fn snapshot_json(&self) -> Value {
        let inner = self.inner.lock().expect("instance store poisoned");
        let mut rows: Vec<&Slot> = inner.slots.iter().collect();
        rows.sort_by_key(|s| std::cmp::Reverse(s.last_used));
        let instances: Vec<Value> = rows
            .into_iter()
            .map(|slot| {
                let mut pairs = vec![
                    ("key", Value::Str(slot.entry.key.clone())),
                    ("canonical", Value::Str(slot.entry.canonical.clone())),
                    ("tenant", Value::Str(slot.tenant.clone())),
                    ("hits", Value::Num(slot.hits as f64)),
                ];
                match slot.entry.built() {
                    Some(instance) => {
                        pairs.push(("built", Value::Bool(true)));
                        pairs.push(("instance", instance.summary_json()));
                    }
                    None => pairs.push(("built", Value::Bool(false))),
                }
                obj(pairs)
            })
            .collect();
        obj([
            ("capacity", Value::Num(self.capacity as f64)),
            ("len", Value::Num(inner.slots.len() as f64)),
            ("hits", Value::Num(inner.hits as f64)),
            ("misses", Value::Num(inner.misses as f64)),
            ("evictions", Value::Num(inner.evictions as f64)),
            ("byte_evictions", Value::Num(inner.byte_evictions as f64)),
            ("total_bytes", Value::Num(inner.total_bytes() as f64)),
            (
                "byte_budget",
                match self.byte_budget() {
                    Some(budget) => Value::Num(budget as f64),
                    None => Value::Null,
                },
            ),
            ("instances", Value::Arr(instances)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{canonical_key, InstanceConfig};
    use fair_submod_bench::scenario::{DatasetRecipe, SubstrateSpec};

    fn tiny_instance() -> Instance {
        Instance::build(
            DatasetRecipe::RandMc {
                c: 2,
                n: 40,
                seed_offset: 0,
            },
            SubstrateSpec::Coverage,
            &InstanceConfig::default().quick(),
        )
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let store = InstanceStore::new(2);
        let (_, s1) = store.get_or_insert("a", "{}");
        let (_, s2) = store.get_or_insert("b", "{}");
        let (_, s3) = store.get_or_insert("a", "{}");
        assert_eq!(
            (s1, s2, s3),
            (CacheStatus::Miss, CacheStatus::Miss, CacheStatus::Hit)
        );
        // "b" is now least recently used; inserting "c" evicts it.
        let (_, s4) = store.get_or_insert("c", "{}");
        assert_eq!(s4, CacheStatus::Miss);
        let (_, s5) = store.get_or_insert("b", "{}");
        assert_eq!(s5, CacheStatus::Miss, "evicted key re-registers as miss");
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cfg = InstanceConfig::default().quick();
        let recipe = DatasetRecipe::RandMc {
            c: 2,
            n: 40,
            seed_offset: 0,
        };
        let (key, canonical) = canonical_key(&recipe, &SubstrateSpec::Coverage, &cfg);
        let store = std::sync::Arc::new(InstanceStore::new(4));
        let builds = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                let builds = std::sync::Arc::clone(&builds);
                let (key, canonical) = (key.clone(), canonical.clone());
                std::thread::spawn(move || {
                    let (entry, _) = store.get_or_insert(&key, &canonical);
                    let instance = entry.get_or_build(|| {
                        builds.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        tiny_instance()
                    });
                    instance.num_items
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 40);
        }
        assert_eq!(builds.load(std::sync::atomic::Ordering::SeqCst), 1);
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn byte_budget_evicts_lru_built_entries_but_never_the_protected_one() {
        let one = tiny_instance();
        let bytes = one.approx_bytes();
        assert!(bytes > 0, "coverage oracles report a footprint");
        // Budget fits two instances but not three.
        let store = InstanceStore::new(8).with_byte_budget(2 * bytes + bytes / 2);
        for key in ["a", "b", "c"] {
            let (entry, _) = store.get_or_insert(key, "{}");
            entry.get_or_build(tiny_instance);
            store.enforce_byte_budget(key);
        }
        let stats = store.stats();
        assert_eq!(stats.len, 2, "third build must evict the LRU entry");
        assert_eq!(stats.byte_evictions, 1);
        assert!(stats.total_bytes <= 2 * bytes + bytes / 2);
        // "a" (LRU) was the victim; "b" and "c" survive.
        let (_, sb) = store.get_or_insert("b", "{}");
        let (_, sc) = store.get_or_insert("c", "{}");
        let (_, sa) = store.get_or_insert("a", "{}");
        assert_eq!(
            (sb, sc, sa),
            (CacheStatus::Hit, CacheStatus::Hit, CacheStatus::Miss)
        );

        // A budget below a single instance still serves that instance:
        // the protected key is never its own victim.
        let store = InstanceStore::new(8).with_byte_budget(bytes / 2);
        let (entry, _) = store.get_or_insert("only", "{}");
        entry.get_or_build(tiny_instance);
        store.enforce_byte_budget("only");
        assert_eq!(store.stats().len, 1);
        // The next build evicts the previous one immediately.
        let (entry, _) = store.get_or_insert("next", "{}");
        entry.get_or_build(tiny_instance);
        store.enforce_byte_budget("next");
        let stats = store.stats();
        assert_eq!(stats.len, 1);
        assert_eq!(stats.byte_evictions, 1);
    }

    #[test]
    fn snapshot_reports_byte_accounting() {
        let store = InstanceStore::new(2).with_byte_budget(1 << 30);
        let (entry, _) = store.get_or_insert("k", "{}");
        entry.get_or_build(tiny_instance);
        let snap = store.snapshot_json();
        let total = snap.get("total_bytes").and_then(Value::as_f64).unwrap();
        assert!(total > 0.0);
        assert_eq!(
            snap.get("byte_budget").and_then(Value::as_f64),
            Some((1u64 << 30) as f64)
        );
        assert_eq!(
            snap.get("byte_evictions").and_then(Value::as_f64),
            Some(0.0)
        );
        let rows = snap.get("instances").and_then(Value::as_arr).unwrap();
        let inst = rows[0].get("instance").unwrap();
        assert_eq!(
            inst.get("approx_bytes").and_then(Value::as_f64),
            Some(total),
            "the single entry's bytes are the store total"
        );
        // An unbudgeted store reports null.
        let free = InstanceStore::new(2);
        assert!(matches!(
            free.snapshot_json().get("byte_budget"),
            Some(Value::Null)
        ));
    }

    #[test]
    fn snapshot_reports_built_state() {
        let store = InstanceStore::new(2);
        let (entry, _) = store.get_or_insert("k", "{\"x\":1}");
        let before = store.snapshot_json();
        let rows = before.get("instances").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("built").and_then(Value::as_bool), Some(false));
        entry.get_or_build(tiny_instance);
        let after = store.snapshot_json();
        let rows = after.get("instances").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("built").and_then(Value::as_bool), Some(true));
        assert!(rows[0].get("instance").is_some());
    }
}
