//! The HTTP/1.1 wire layer shared by both servers: an incremental
//! buffer-based request parser, response encoding, and the blocking
//! thread-per-connection reference server.
//!
//! This is deliberately not a general web server — it covers exactly
//! what the solve daemon needs: `GET`/`POST`, `Content-Length` bodies
//! (no chunked transfer encoding), persistent connections (HTTP/1.1
//! keep-alive, honoring `Connection: close`), request pipelining, and
//! JSON response helpers.
//!
//! The parser is **pull-based over a byte buffer** ([`parse_request`]):
//! callers append whatever bytes arrived and ask for the next complete
//! request, which is what a readiness loop needs (the event-driven
//! server in [`crate::event_loop`]) and what a blocking reader can
//! trivially wrap ([`RequestReader`]). Both servers therefore accept
//! and reject byte-for-byte the same inputs — the property the
//! blocking-vs-event equivalence test pins.
//!
//! Limits: request head (request line + headers) ≤ 16 KiB (`400` past
//! it), body ≤ 8 MiB (`413` past it, distinguished from malformed so
//! clients can tell "shrink the payload" from "fix the syntax"). The
//! blocking path additionally arms a socket read timeout so a stalled
//! client can never pin its thread forever (see [`Server`]).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use serde::json::Value;

/// Maximum accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Maximum accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default read deadline of the blocking server: a connection that
/// leaves a request unfinished this long is dropped (slowloris guard).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/solve`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The tenant this request bills to: the `X-Tenant` header, or the
    /// anonymous tenant `""`.
    pub fn tenant(&self) -> &str {
        self.header("x-tenant").unwrap_or("")
    }
}

/// One HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Extra header `(name, value)` pairs (`Content-Length` and
    /// `Connection` are written automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with `Content-Type: application/json`.
    pub fn json(status: u16, value: &Value) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: value.to_body_bytes(),
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

// ── Incremental request parsing ──────────────────────────────────────

/// Why a buffer could not be parsed into a request.
#[derive(Debug)]
pub enum ParseError {
    /// Syntactically invalid (or the head outgrew [`MAX_HEAD_BYTES`]);
    /// the message is safe to echo in a `400` body.
    Malformed(String),
    /// Well-formed head announcing a body over the cap — answered with
    /// `413` rather than `400`.
    BodyTooLarge {
        /// The announced `Content-Length`.
        length: usize,
    },
}

/// Attempts to parse one complete request off the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full head + body is
/// present (the caller drains `consumed` bytes and may call again —
/// pipelining is exactly this loop), `Ok(None)` when more bytes are
/// needed, and `Err` when the connection should be answered with an
/// error and closed. Incomplete heads are bounded: once the buffer
/// exceeds `max_head` without a blank line, the request is rejected
/// rather than buffered indefinitely.
pub fn parse_request(
    buf: &[u8],
    max_head: usize,
    max_body: usize,
) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > max_head {
            return Err(ParseError::Malformed("request head too large".into()));
        }
        return Ok(None);
    };
    if head_end > max_head {
        return Err(ParseError::Malformed("request head too large".into()));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("request head is not valid UTF-8".into()))?;

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => {
            return Err(ParseError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(ParseError::BodyTooLarge {
            length: content_length,
        });
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    )))
}

/// Index one past the head-terminating blank line (`\r\n\r\n` or, for
/// lenient clients, `\n\n`), if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut at = 0;
    while let Some(rel) = buf[at..].iter().position(|&b| b == b'\n') {
        let nl = at + rel;
        // A line that is empty after stripping the optional '\r'
        // terminates the head.
        let rest = &buf[nl + 1..];
        if rest.first() == Some(&b'\r') && rest.get(1) == Some(&b'\n') {
            return Some(nl + 3);
        }
        if rest.first() == Some(&b'\n') {
            return Some(nl + 2);
        }
        at = nl + 1;
    }
    None
}

// ── Response encoding ────────────────────────────────────────────────

/// Serializes a response to its wire bytes, head and body in one
/// buffer: with `TCP_NODELAY` that is one segment, avoiding the Nagle +
/// delayed-ACK ~40ms stall that two writes would risk.
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        status_text(response.status)
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut message = head.into_bytes();
    message.extend_from_slice(&response.body);
    message
}

/// Writes `response`, announcing whether the connection stays open.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_response(response, keep_alive))?;
    stream.flush()
}

// ── Blocking request reading ─────────────────────────────────────────

/// Why reading a request from a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// No complete request arrived within the read timeout — the
    /// slowloris case. The connection is dropped without a response.
    TimedOut,
    /// The request was malformed or exceeded the head limit; the
    /// message is safe to echo back in a 400 body.
    Malformed(String),
    /// The head was well-formed but announced a body over
    /// [`MAX_BODY_BYTES`]; answered with `413`.
    BodyTooLarge(usize),
}

/// Blocking request source over one connection: feeds socket bytes
/// into [`parse_request`], carrying leftover bytes across calls so
/// pipelined requests are never lost between reads.
pub struct RequestReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RequestReader {
    /// Wraps a connection (does not touch its socket options).
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads until one complete request is available and returns it.
    pub fn next_request(&mut self) -> Result<Request, ReadError> {
        loop {
            match parse_request(&self.buf, MAX_HEAD_BYTES, MAX_BODY_BYTES) {
                Ok(Some((request, consumed))) => {
                    self.buf.drain(..consumed);
                    return Ok(request);
                }
                Ok(None) => {}
                Err(ParseError::Malformed(m)) => return Err(ReadError::Malformed(m)),
                Err(ParseError::BodyTooLarge { length }) => {
                    return Err(ReadError::BodyTooLarge(length))
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        ReadError::Closed
                    } else {
                        ReadError::Malformed("connection closed mid-request".into())
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(ReadError::TimedOut)
                }
                Err(e) => return Err(ReadError::Malformed(format!("read: {e}"))),
            }
        }
    }
}

/// Reads one HTTP response from the client side of a connection:
/// `(status, headers, body)`, header names lower-cased. The counterpart
/// of [`write_response`] — test clients parse the wire format through
/// this one function instead of re-implementing it.
pub fn read_response(
    reader: &mut impl std::io::BufRead,
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    use std::io::{Error, ErrorKind};
    let bad = |message: String| Error::new(ErrorKind::InvalidData, message);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_string());
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| bad(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

// ── The blocking reference server ────────────────────────────────────

/// The thread-per-connection server: the pre-event-loop design, kept
/// as the `--blocking` escape hatch and as the reference twin the
/// equivalence suite compares the event-driven server against.
///
/// Every accepted connection gets its own thread; a socket read
/// timeout (default [`DEFAULT_READ_TIMEOUT`]) bounds how long a
/// stalled client can hold that thread mid-request. Nothing bounds the
/// number of threads — that unboundedness is exactly why
/// [`crate::event_loop::EventServer`] replaced this as the default.
pub struct Server {
    listener: TcpListener,
    read_timeout: Duration,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            read_timeout: DEFAULT_READ_TIMEOUT,
        })
    }

    /// Replaces the per-connection read deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The bound address (reports the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: accepts connections and hands each to its own
    /// thread running `handler` per request. Per-connection accept
    /// errors (client reset before accept, transient fd exhaustion
    /// under a spike) are logged and survived — a long-running daemon
    /// must not die because one accept failed — with a short backoff
    /// so an error storm cannot spin the loop hot.
    pub fn run<H>(self, handler: Arc<H>) -> std::io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let timeout = self.read_timeout;
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let handler = Arc::clone(&handler);
                    std::thread::spawn(move || serve_connection(stream, handler.as_ref(), timeout));
                }
                Err(e) => {
                    eprintln!("[service] accept error (continuing): {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }
}

/// Serves requests on one connection until it closes, times out, or
/// errors.
fn serve_connection<H>(stream: TcpStream, handler: &H, read_timeout: Duration)
where
    H: Fn(&Request) -> Response,
{
    let _ = stream.set_nodelay(true);
    // The slowloris guard: without this, a client that sends half a
    // request and stalls parks this thread forever.
    let _ = stream.set_read_timeout(Some(read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = RequestReader::new(read_half);
    let mut stream = stream;
    loop {
        match reader.next_request() {
            Ok(request) => {
                let keep_alive = !request.wants_close();
                let response = handler(&request);
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Closed | ReadError::TimedOut) => return,
            Err(ReadError::Malformed(message)) => {
                let body = serde::json::obj([("error", Value::Str(message))]);
                let _ = write_response(&mut stream, &Response::json(400, &body), false);
                return;
            }
            Err(ReadError::BodyTooLarge(length)) => {
                let _ = write_response(&mut stream, &payload_too_large(length), false);
                return;
            }
        }
    }
}

/// The shared `413` answer for a body over the cap (same bytes from
/// both servers).
pub fn payload_too_large(length: usize) -> Response {
    Response::json(
        413,
        &serde::json::obj([(
            "error",
            Value::Str(format!(
                "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )),
        )]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        // Push raw bytes through a real loopback socket so the parser
        // sees exactly what a client would send.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        drop(client);
        let (server_side, _) = listener.accept().unwrap();
        RequestReader::new(server_side).next_request()
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req =
            roundtrip(b"POST /solve?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.query.as_deref(), Some("debug=1"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
        assert_eq!(req.tenant(), "");
    }

    #[test]
    fn connection_close_is_honored() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(roundtrip(b""), Err(ReadError::Closed)));
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_distinguished_from_malformed() {
        // An announced body over the cap is a 413-class rejection, not
        // a 400: the head is perfectly well-formed.
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            roundtrip(huge.as_bytes()),
            Err(ReadError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn endless_head_without_newline_is_bounded() {
        // A newline-free request line must be rejected once it passes
        // the head budget — not buffered indefinitely.
        let mut raw = vec![b'A'; MAX_HEAD_BYTES + 64];
        raw.extend_from_slice(b" / HTTP/1.1\r\n\r\n");
        assert!(matches!(roundtrip(&raw), Err(ReadError::Malformed(_))));
        // Same for an oversized header section of many small lines.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2_000 {
            raw.extend_from_slice(format!("x-h{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(roundtrip(&raw), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn parse_request_is_incremental_and_pipelines() {
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
        // Every strict prefix that ends before the first request's last
        // byte parses to None (need more data), never to an error.
        let first_len = wire.iter().len() - b"GET /b HTTP/1.1\r\n\r\n".len();
        for cut in 0..first_len {
            assert!(
                matches!(
                    parse_request(&wire[..cut], MAX_HEAD_BYTES, MAX_BODY_BYTES),
                    Ok(None)
                ),
                "cut {cut}"
            );
        }
        // The full buffer yields the first request and its exact length;
        // the remainder parses as the pipelined second request.
        let (req, consumed) = parse_request(wire, MAX_HEAD_BYTES, MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(
            (req.path.as_str(), req.body.as_slice()),
            ("/a", &b"abc"[..])
        );
        assert_eq!(consumed, first_len);
        let (req2, consumed2) = parse_request(&wire[consumed..], MAX_HEAD_BYTES, MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn slow_clients_time_out_instead_of_pinning_the_thread() {
        // Half a request then silence: next_request must return
        // TimedOut once the socket deadline fires, not block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET /healthz HTT").unwrap();
        client.flush().unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let started = std::time::Instant::now();
        let result = RequestReader::new(server_side).next_request();
        assert!(matches!(result, Err(ReadError::TimedOut)), "{result:?}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        // Write through a loopback socket and read the raw bytes back.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let body = serde::json::obj([("ok", Value::Bool(true))]);
        write_response(&mut server_side, &Response::json(200, &body), false).unwrap();
        drop(server_side);
        let mut raw = String::new();
        let mut reader = BufReader::new(client);
        reader.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Content-Type: application/json\r\n"));
        assert!(raw.contains("Content-Length: 11\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("{\"ok\":true}"));
    }
}
