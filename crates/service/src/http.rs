//! A minimal HTTP/1.1 layer over [`std::net`]: request parsing,
//! response writing, and a threaded accept loop.
//!
//! This is deliberately not a general web server — it covers exactly
//! what the solve daemon needs: `GET`/`POST`, `Content-Length` bodies
//! (no chunked transfer encoding), persistent connections (HTTP/1.1
//! keep-alive, honoring `Connection: close`), and JSON response
//! helpers. Each accepted connection is served by its own thread; the
//! handler itself is shared behind an `Arc` and must be `Send + Sync`.
//!
//! Limits: request head (request line + headers) ≤ 16 KiB, body ≤
//! 8 MiB. Oversized or malformed requests terminate the connection
//! after a `400`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use serde::json::Value;

/// Maximum accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Maximum accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/solve`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Extra header `(name, value)` pairs (`Content-Length` and
    /// `Connection` are written automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with `Content-Type: application/json`.
    pub fn json(status: u16, value: &Value) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: value.to_body_bytes(),
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Why reading a request from a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The request was malformed or exceeded a limit; the message is
    /// safe to echo back in a 400 body.
    Malformed(String),
}

/// Reads one `\n`-terminated line, never buffering more than `budget`
/// bytes. `read_line` alone would accumulate an endless newline-free
/// request line unboundedly; this enforces the head limit *while*
/// reading, so a malicious peer cannot exhaust memory.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    budget: usize,
) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader
            .fill_buf()
            .map_err(|e| ReadError::Malformed(format!("read line: {e}")))?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Malformed("connection closed mid-line".into()));
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (&buf[..=i], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > budget {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if done {
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("request head is not valid UTF-8".into()));
        }
    }
}

/// Reads one request from the connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let line = read_line_limited(reader, MAX_HEAD_BYTES)?;
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => {
            return Err(ReadError::Malformed(format!(
                "malformed request line {:?}",
                line.trim_end()
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line_limited(reader, MAX_HEAD_BYTES - head_bytes) {
            Ok(line) => line,
            Err(ReadError::Closed) => {
                return Err(ReadError::Malformed("connection closed mid-headers".into()))
            }
            Err(e) => return Err(e),
        };
        head_bytes += line.len();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Malformed(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ReadError::Malformed(format!("read body: {e}")))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Writes `response`, announcing whether the connection stays open.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        status_text(response.status)
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    // Head and body go out in one write: with TCP_NODELAY this is one
    // segment, avoiding the Nagle + delayed-ACK ~40ms stall that two
    // writes would risk.
    let mut message = head.into_bytes();
    message.extend_from_slice(&response.body);
    stream.write_all(&message)?;
    stream.flush()
}

/// Reads one HTTP response from the client side of a connection:
/// `(status, headers, body)`, header names lower-cased. The
/// counterpart of [`write_response`] — test clients parse the wire
/// format through this one function instead of re-implementing it.
pub fn read_response(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    use std::io::{Error, ErrorKind};
    let bad = |message: String| Error::new(ErrorKind::InvalidData, message);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_string());
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| bad(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

/// A bound listener plus the shared request handler.
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (reports the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: accepts connections and hands each to its own
    /// thread running `handler` per request. Per-connection accept
    /// errors (client reset before accept, transient fd exhaustion
    /// under a spike) are logged and survived — a long-running daemon
    /// must not die because one accept failed — with a short backoff
    /// so an error storm cannot spin the loop hot.
    pub fn run<H>(self, handler: Arc<H>) -> std::io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let handler = Arc::clone(&handler);
                    std::thread::spawn(move || serve_connection(stream, handler.as_ref()));
                }
                Err(e) => {
                    eprintln!("[service] accept error (continuing): {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }
}

/// Serves requests on one connection until it closes.
fn serve_connection<H>(stream: TcpStream, handler: &H)
where
    H: Fn(&Request) -> Response,
{
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let keep_alive = !request.wants_close();
                let response = handler(&request);
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(message)) => {
                let body = serde::json::obj([("error", Value::Str(message))]);
                let _ = write_response(&mut stream, &Response::json(400, &body), false);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        // Push raw bytes through a real loopback socket so the parser
        // sees exactly what a client would send.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        drop(client);
        let (server_side, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(server_side);
        read_request(&mut reader)
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req =
            roundtrip(b"POST /solve?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.query.as_deref(), Some("debug=1"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_is_honored() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(roundtrip(b""), Err(ReadError::Closed)));
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            roundtrip(huge.as_bytes()),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn endless_head_without_newline_is_bounded() {
        // A newline-free request line must be rejected once it passes
        // the head budget — not buffered indefinitely.
        let mut raw = vec![b'A'; MAX_HEAD_BYTES + 64];
        raw.extend_from_slice(b" / HTTP/1.1\r\n\r\n");
        assert!(matches!(roundtrip(&raw), Err(ReadError::Malformed(_))));
        // Same for an oversized header section of many small lines.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2_000 {
            raw.extend_from_slice(format!("x-h{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(roundtrip(&raw), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        // Write through a loopback socket and read the raw bytes back.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let body = serde::json::obj([("ok", Value::Bool(true))]);
        write_response(&mut server_side, &Response::json(200, &body), false).unwrap();
        drop(server_side);
        let mut raw = String::new();
        let mut reader = BufReader::new(client);
        reader.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Content-Type: application/json\r\n"));
        assert!(raw.contains("Content-Length: 11\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("{\"ok\":true}"));
    }
}
