//! Degree and size statistics for Table-1-style dataset reports.

use crate::csr::Graph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (conventional count: arcs if directed).
    pub edges: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Fraction of isolated nodes (no in- or out-arcs).
    pub isolated_fraction: f64,
}

/// Computes [`GraphStats`].
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let n = graph.num_nodes();
    let mut max_out = 0usize;
    let mut isolated = 0usize;
    let mut total_out = 0usize;
    for v in 0..n as u32 {
        let d = graph.out_degree(v);
        total_out += d;
        max_out = max_out.max(d);
        if d == 0 && graph.in_degree(v) == 0 {
            isolated += 1;
        }
    }
    GraphStats {
        nodes: n,
        edges: graph.num_edges(),
        avg_out_degree: total_out as f64 / n.max(1) as f64,
        max_out_degree: max_out,
        isolated_fraction: isolated as f64 / n.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    #[test]
    fn stats_on_star() {
        let mut b = GraphBuilder::new(5, true);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.avg_out_degree - 0.8).abs() < 1e-12);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn isolated_nodes_are_counted() {
        let b = GraphBuilder::new(3, false);
        let g = b.build();
        let s = graph_stats(&g);
        assert_eq!(s.isolated_fraction, 1.0);
    }
}
