//! Compressed-sparse-row digraph.
//!
//! Nodes are `0..n`. Both out- and in-adjacency are stored: coverage
//! needs out-neighborhoods (dominating sets), reverse-reachable sampling
//! for influence maximization needs in-neighborhoods. Undirected graphs
//! are stored as symmetric digraphs (both arc directions).
//!
//! [`CsrSlice`] additionally supports **out-of-core spill**
//! (DESIGN.md §11): [`CsrSlice::spill`] writes a slice to a scratch
//! directory as length-prefixed little-endian sections and returns a
//! [`SpilledSlice`] handle whose [`SpilledSlice::load`] reproduces the
//! slice bit for bit; corrupt or truncated files are typed
//! [`SpillError`]s, never panics.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Node identifier.
pub type NodeId = u32;

/// Immutable CSR digraph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
    /// Number of stored arcs (for an undirected graph this is twice the
    /// number of edges).
    num_arcs: usize,
    directed: bool,
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of *edges* as conventionally reported: arcs for directed
    /// graphs, arc-pairs for undirected ones.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs
        } else {
            self.num_arcs / 2
        }
    }

    /// Number of stored arcs.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Whether the graph was built as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_targets[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Iterates over all arcs `(src, dst)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n as NodeId).flat_map(move |v| self.out_neighbors(v).iter().map(move |&w| (v, w)))
    }

    /// Index of the arc `(src, dst)` in global arc order (position inside
    /// the flattened out-target array). Used to address per-edge data
    /// such as propagation probabilities.
    pub fn arc_index(&self, src: NodeId, pos_in_src: usize) -> usize {
        self.out_offsets[src as usize] + pos_in_src
    }

    /// Copies the out-adjacency rows of `nodes` (strictly ascending
    /// global ids) into a standalone [`CsrSlice`]. Reference
    /// implementation for the streaming slice loader in
    /// [`crate::io::read_shard_slices`]: both must produce bitwise-equal
    /// slices from the same edge list.
    ///
    /// # Panics
    /// Panics if `nodes` is not strictly ascending or contains an id
    /// `≥ num_nodes()`.
    /// Reassembles a full graph from shard slices (the inverse of
    /// [`Self::slice_rows`] / [`crate::io::read_shard_slices`] over a
    /// node partition). Slice rows already obey the builder's row
    /// semantics (self-loops dropped, undirected arcs symmetrized,
    /// sorted, deduplicated), and [`GraphBuilder::build`] normalizes the
    /// same way, so the result is bitwise identical to the graph the
    /// slices were cut from: `Graph::from_slices(&slices, n, d)` equals
    /// the original whenever the slices jointly cover its rows.
    ///
    /// # Panics
    /// Panics if any slice row or target id is `>= n`.
    pub fn from_slices(slices: &[CsrSlice], n: usize, directed: bool) -> Graph {
        let total: usize = slices.iter().map(|s| s.num_arcs()).sum();
        let mut builder = GraphBuilder::new(n, directed);
        builder.edges.reserve(total);
        for slice in slices {
            for (local, &src) in slice.nodes().iter().enumerate() {
                assert!((src as usize) < n, "slice node out of range");
                for &dst in slice.neighbors(local) {
                    builder.add_edge(src, dst);
                }
            }
        }
        builder.build()
    }

    pub fn slice_rows(&self, nodes: &[NodeId]) -> CsrSlice {
        assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "slice nodes must be strictly ascending"
        );
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for &v in nodes {
            assert!((v as usize) < self.n, "slice node out of range");
            targets.extend_from_slice(self.out_neighbors(v));
            offsets.push(targets.len());
        }
        CsrSlice {
            nodes: nodes.to_vec(),
            offsets,
            targets,
        }
    }
}

/// A horizontal slice of a CSR graph: the out-adjacency rows of an
/// ascending subset of nodes, with targets kept as **global** node ids.
///
/// This is the unit of the sharded solve tier — each shard owns one
/// slice and never sees the rows of other shards, so a million-node
/// graph can be loaded shard by shard without ever materializing the
/// full [`Graph`] (in particular without its doubled in-adjacency).
/// Row semantics are identical to [`GraphBuilder::build`]: self-loops
/// dropped, undirected edges symmetrized before deduplication, each row
/// sorted ascending and deduplicated.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrSlice {
    nodes: Vec<NodeId>,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrSlice {
    /// Builds a slice from raw arcs `(local_row, global_target)`.
    /// `nodes` must be strictly ascending; self-loops must already have
    /// been dropped by the caller. Arcs are sorted and deduplicated per
    /// row, matching [`GraphBuilder::build`].
    pub(crate) fn from_arcs(nodes: Vec<NodeId>, mut arcs: Vec<(u32, NodeId)>) -> Self {
        assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "slice nodes must be strictly ascending"
        );
        arcs.sort_unstable();
        arcs.dedup();
        let mut offsets = vec![0usize; nodes.len() + 1];
        for &(row, _) in &arcs {
            offsets[row as usize + 1] += 1;
        }
        for i in 0..nodes.len() {
            offsets[i + 1] += offsets[i];
        }
        let targets = arcs.into_iter().map(|(_, t)| t).collect();
        Self {
            nodes,
            offsets,
            targets,
        }
    }

    /// Global node ids owned by this slice, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of rows (nodes) in the slice.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored arcs.
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors (global ids, sorted, deduplicated) of the slice's
    /// `local`-th node.
    #[inline]
    pub fn neighbors(&self, local: usize) -> &[NodeId] {
        &self.targets[self.offsets[local]..self.offsets[local + 1]]
    }

    /// Local row index of a global node id, if this slice owns it.
    pub fn position(&self, global: NodeId) -> Option<usize> {
        self.nodes.binary_search(&global).ok()
    }

    /// Out-neighbors of a global node id, if this slice owns it.
    pub fn neighbors_of(&self, global: NodeId) -> Option<&[NodeId]> {
        self.position(global).map(|local| self.neighbors(local))
    }

    /// Approximate resident footprint of the slice in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// Writes the slice into `dir` (created if missing) and returns a
    /// [`SpilledSlice`] handle for reloading it. The file is named after
    /// the slice's first node id (`slice-<id>.csrs`, or `slice-empty`
    /// for a node-less slice), so the slices of one shard partition —
    /// whose node sets are disjoint — never collide within one scratch
    /// dir; two empty slices alias the same file, which is harmless
    /// because they are equal.
    ///
    /// Format (DESIGN.md §11): an 8-byte magic + version header followed
    /// by three length-prefixed little-endian sections — nodes (`u32`),
    /// offsets (`u64`), targets (`u32`). [`SpilledSlice::load`] is the
    /// exact inverse: spill → load round-trips bit for bit.
    pub fn spill(&self, dir: &Path) -> Result<SpilledSlice, SpillError> {
        fs::create_dir_all(dir)?;
        let name = match self.nodes.first() {
            Some(first) => format!("slice-{first}.csrs"),
            None => "slice-empty.csrs".to_string(),
        };
        let path = dir.join(name);
        let mut out: Vec<u8> = Vec::with_capacity(
            SPILL_HEADER_LEN
                + 24
                + 4 * self.nodes.len()
                + 8 * self.offsets.len()
                + 4 * self.targets.len(),
        );
        out.extend_from_slice(SPILL_MAGIC);
        out.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for &v in &self.nodes {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.offsets.len() as u64).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&(o as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.targets.len() as u64).to_le_bytes());
        for &t in &self.targets {
            out.extend_from_slice(&t.to_le_bytes());
        }
        let mut file = fs::File::create(&path)?;
        file.write_all(&out)?;
        file.sync_data().ok();
        Ok(SpilledSlice {
            path,
            num_nodes: self.nodes.len(),
            num_arcs: self.targets.len(),
        })
    }

    /// Reads a slice previously written by [`CsrSlice::spill`].
    /// Truncated, oversized, or structurally inconsistent files (bad
    /// magic, non-monotone offsets, row/target length mismatch) are
    /// [`SpillError::Corrupt`]; I/O failures are [`SpillError::Io`].
    pub fn load(path: &Path) -> Result<CsrSlice, SpillError> {
        let corrupt = |detail: &str| SpillError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.to_string(),
        };
        let bytes = fs::read(path)?;
        let mut cur = 0usize;
        let take = |cur: &mut usize, len: usize| -> Result<std::ops::Range<usize>, SpillError> {
            let end = cur
                .checked_add(len)
                .ok_or_else(|| corrupt("length overflow"))?;
            if end > bytes.len() {
                return Err(corrupt("truncated file"));
            }
            let range = *cur..end;
            *cur = end;
            Ok(range)
        };
        let header = take(&mut cur, SPILL_HEADER_LEN)?;
        if &bytes[header.start..header.start + 8] != SPILL_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[header.start + 8..header.end].try_into().unwrap());
        if version != SPILL_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let read_u64 = |cur: &mut usize| -> Result<u64, SpillError> {
            let r = take(cur, 8)?;
            Ok(u64::from_le_bytes(bytes[r].try_into().unwrap()))
        };
        let read_u32s = |cur: &mut usize, len: u64| -> Result<Vec<u32>, SpillError> {
            let len = usize::try_from(len).map_err(|_| corrupt("section too large"))?;
            let r = take(
                cur,
                len.checked_mul(4)
                    .ok_or_else(|| corrupt("length overflow"))?,
            )?;
            Ok(bytes[r]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        };
        let n_nodes = read_u64(&mut cur)?;
        let nodes: Vec<NodeId> = read_u32s(&mut cur, n_nodes)?;
        let n_offsets = read_u64(&mut cur)?;
        let n_offsets = usize::try_from(n_offsets).map_err(|_| corrupt("section too large"))?;
        let r = take(
            &mut cur,
            n_offsets
                .checked_mul(8)
                .ok_or_else(|| corrupt("length overflow"))?,
        )?;
        let offsets: Vec<usize> = bytes[r]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect();
        let n_targets = read_u64(&mut cur)?;
        let targets: Vec<NodeId> = read_u32s(&mut cur, n_targets)?;
        if cur != bytes.len() {
            return Err(corrupt("trailing bytes after last section"));
        }
        // Structural validation: the same invariants `from_arcs`
        // establishes, so a loaded slice is indistinguishable from a
        // freshly built one.
        if !nodes.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("nodes not strictly ascending"));
        }
        if offsets.len() != nodes.len() + 1 || offsets.first() != Some(&0) {
            return Err(corrupt("offsets shape mismatch"));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(corrupt("offsets not monotone"));
        }
        if offsets.last() != Some(&targets.len()) {
            return Err(corrupt("targets length does not match final offset"));
        }
        Ok(CsrSlice {
            nodes,
            offsets,
            targets,
        })
    }
}

const SPILL_MAGIC: &[u8; 8] = b"FSUBCSR\0";
const SPILL_VERSION: u32 = 1;
/// Magic + version.
const SPILL_HEADER_LEN: usize = 12;

/// Error from [`CsrSlice::spill`] / [`SpilledSlice::load`].
#[derive(Debug)]
pub enum SpillError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a well-formed spilled slice (wrong
    /// magic, truncated section, inconsistent offsets…). Never a panic:
    /// out-of-core callers must survive scratch-dir corruption.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::Corrupt { path, detail } => {
                write!(f, "corrupt spill file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for SpillError {}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// Handle to a slice written by [`CsrSlice::spill`]: the path plus the
/// shape needed for scheduling, but none of the payload — holding a
/// `SpilledSlice` costs a few dozen bytes regardless of slice size. The
/// file is **not** removed on drop; scratch-dir lifetime belongs to the
/// caller (typically one solve), so a slice can be reloaded once per
/// GreeDi step.
#[derive(Clone, Debug)]
pub struct SpilledSlice {
    path: PathBuf,
    num_nodes: usize,
    num_arcs: usize,
}

impl SpilledSlice {
    /// The on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows in the spilled slice.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Arcs in the spilled slice.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Reads the slice back; bit-identical to the slice that was
    /// spilled. May be called any number of times.
    pub fn load(&self) -> Result<CsrSlice, SpillError> {
        CsrSlice::load(&self.path)
    }

    /// Deletes the backing file.
    pub fn remove(self) -> std::io::Result<()> {
        fs::remove_file(&self.path)
    }
}

/// Incremental builder deduplicating arcs and dropping self-loops.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes.
    pub fn new(n: usize, directed: bool) -> Self {
        Self {
            n,
            directed,
            edges: Vec::new(),
        }
    }

    /// Adds an edge (arc if directed). Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge out of range"
        );
        if u != v {
            self.edges.push((u, v));
        }
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of (pre-dedup) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into a CSR [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        if !self.directed {
            // Symmetrize before dedup.
            let sym: Vec<(NodeId, NodeId)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
            self.edges.extend(sym);
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        // In-adjacency via counting sort on destination.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_targets = vec![0 as NodeId; self.edges.len()];
        for &(u, v) in &self.edges {
            in_targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        let num_arcs = self.edges.len();
        Graph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            num_arcs,
            directed: self.directed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3, false);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn undirected_graph_symmetrizes() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[1, 2]);
    }

    #[test]
    fn directed_graph_keeps_direction() {
        let mut b = GraphBuilder::new(3, true);
        b.add_edge(0, 1).add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_neighbors(1), &[0]);
    }

    #[test]
    fn builder_dedups_and_drops_loops() {
        let mut b = GraphBuilder::new(4, true);
        b.add_edge(0, 1)
            .add_edge(0, 1)
            .add_edge(2, 2)
            .add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn arcs_iterator_is_complete() {
        let g = triangle();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 6);
        assert!(arcs.contains(&(0, 1)) && arcs.contains(&(1, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2, false);
        b.add_edge(0, 5);
    }

    #[test]
    fn slice_rows_copies_adjacency_with_global_targets() {
        let g = triangle();
        let slice = g.slice_rows(&[0, 2]);
        assert_eq!(slice.num_nodes(), 2);
        assert_eq!(slice.nodes(), &[0, 2]);
        assert_eq!(slice.neighbors(0), g.out_neighbors(0));
        assert_eq!(slice.neighbors(1), g.out_neighbors(2));
        assert_eq!(slice.neighbors_of(2), Some(g.out_neighbors(2)));
        assert_eq!(slice.neighbors_of(1), None);
        assert_eq!(slice.num_arcs(), 4);
    }

    #[test]
    fn slice_from_arcs_sorts_and_dedups_rows() {
        // Rows: node 5 -> {1, 7}, node 9 -> {0}. Duplicates collapse.
        let slice = CsrSlice::from_arcs(vec![5, 9], vec![(1, 0), (0, 7), (0, 1), (0, 7)]);
        assert_eq!(slice.neighbors(0), &[1, 7]);
        assert_eq!(slice.neighbors(1), &[0]);
        assert_eq!(slice.num_arcs(), 3);
    }

    #[test]
    fn from_slices_round_trips_partitioned_rows() {
        let mut b = GraphBuilder::new(6, false);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 0)
            .add_edge(1, 4);
        let g = b.build();
        let slices = vec![
            g.slice_rows(&[0, 3]),
            g.slice_rows(&[1, 2]),
            g.slice_rows(&[4, 5]),
        ];
        let rebuilt = Graph::from_slices(&slices, 6, false);
        for v in 0..6u32 {
            assert_eq!(rebuilt.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(rebuilt.in_neighbors(v), g.in_neighbors(v));
        }
        assert_eq!(rebuilt.num_arcs(), g.num_arcs());

        let mut bd = GraphBuilder::new(4, true);
        bd.add_edge(0, 1)
            .add_edge(2, 1)
            .add_edge(3, 0)
            .add_edge(1, 3);
        let gd = bd.build();
        let slices = vec![gd.slice_rows(&[0, 1]), gd.slice_rows(&[2, 3])];
        let rebuilt = Graph::from_slices(&slices, 4, true);
        for v in 0..4u32 {
            assert_eq!(rebuilt.out_neighbors(v), gd.out_neighbors(v));
            assert_eq!(rebuilt.in_neighbors(v), gd.in_neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_slice_nodes_panic() {
        let g = triangle();
        let _ = g.slice_rows(&[2, 0]);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fair-submod-csr-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_load_round_trips_bitwise() {
        let g = triangle();
        let slice = g.slice_rows(&[0, 2]);
        let dir = scratch_dir("roundtrip");
        let handle = slice.spill(&dir).expect("spill");
        assert_eq!(handle.num_nodes(), 2);
        assert_eq!(handle.num_arcs(), 4);
        let back = handle.load().expect("load");
        assert_eq!(back, slice);
        // Reload works more than once.
        assert_eq!(handle.load().expect("reload"), slice);
        handle.remove().expect("remove");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_spill_file_is_a_typed_error() {
        let g = triangle();
        let slice = g.slice_rows(&[0, 1, 2]);
        let dir = scratch_dir("truncate");
        let handle = slice.spill(&dir).expect("spill");
        let full = fs::read(handle.path()).expect("read back");
        // Every proper prefix must fail with Corrupt, never panic.
        for cut in [0, 4, SPILL_HEADER_LEN, SPILL_HEADER_LEN + 9, full.len() - 1] {
            fs::write(handle.path(), &full[..cut]).expect("truncate");
            match CsrSlice::load(handle.path()) {
                Err(SpillError::Corrupt { .. }) => {}
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
        // Garbage magic is Corrupt; a missing file is Io.
        fs::write(handle.path(), b"not a slice at all").expect("garbage");
        assert!(matches!(
            CsrSlice::load(handle.path()),
            Err(SpillError::Corrupt { .. })
        ));
        let path = handle.path().to_path_buf();
        handle.remove().expect("remove");
        assert!(matches!(CsrSlice::load(&path), Err(SpillError::Io(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
