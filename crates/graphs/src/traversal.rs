//! BFS and connected components.

use crate::csr::{Graph, NodeId};

/// Result of a connected-components computation (undirected sense: both
/// arc directions are followed).
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per node.
    pub component_of: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Breadth-first search from `source` following out-arcs; returns the
/// visit order.
pub fn bfs(graph: &Graph, source: NodeId) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Weakly connected components (follows arcs in both directions).
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.num_nodes();
    let mut component_of = vec![u32::MAX; n];
    let mut num_components = 0usize;
    let mut largest = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if component_of[s] != u32::MAX {
            continue;
        }
        let id = num_components as u32;
        num_components += 1;
        let mut size = 0usize;
        component_of[s] = id;
        queue.push_back(s as NodeId);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if component_of[v as usize] == u32::MAX {
                    component_of[v as usize] = id;
                    queue.push_back(v);
                }
            }
        }
        largest = largest.max(size);
    }
    Components {
        component_of,
        num_components,
        largest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    #[test]
    fn bfs_visits_reachable_nodes() {
        let mut b = GraphBuilder::new(5, true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
        let g = b.build();
        let order = bfs(&g, 0);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn components_counts_islands() {
        let mut b = GraphBuilder::new(6, true);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(c.largest, 2);
        assert_eq!(c.component_of[0], c.component_of[1]);
        assert_ne!(c.component_of[0], c.component_of[2]);
    }
}
