//! Demographic group assignment for users/nodes.
//!
//! The paper partitions users by a sensitive attribute (gender, age,
//! continent, …) into `c` disjoint groups; the experiments are
//! parameterized by the group percentages of Tables 1–2. [`Groups`]
//! stores the assignment plus human-readable labels and guarantees every
//! group is non-empty.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A partition of `m` users into `c` labelled, non-empty groups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Groups {
    assignment: Vec<u32>,
    sizes: Vec<usize>,
    labels: Vec<String>,
}

impl Groups {
    /// Builds from an explicit assignment (labels default to `G0, G1, …`).
    ///
    /// # Panics
    /// Panics if any group in `0..=max(assignment)` is empty.
    pub fn from_assignment(assignment: Vec<u32>) -> Self {
        let c = assignment
            .iter()
            .map(|&g| g as usize + 1)
            .max()
            .unwrap_or(0);
        assert!(c > 0, "empty assignment");
        let mut sizes = vec![0usize; c];
        for &g in &assignment {
            sizes[g as usize] += 1;
        }
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every group must be non-empty"
        );
        let labels = (0..c).map(|i| format!("G{i}")).collect();
        Self {
            assignment,
            sizes,
            labels,
        }
    }

    /// Builds from an explicit assignment with custom labels.
    ///
    /// # Panics
    /// Panics if the label count differs from the group count or any
    /// group is empty.
    pub fn from_assignment_with_labels(assignment: Vec<u32>, labels: &[&str]) -> Self {
        let mut g = Self::from_assignment(assignment);
        assert_eq!(g.sizes.len(), labels.len(), "label count mismatch");
        g.labels = labels.iter().map(|l| l.to_string()).collect();
        g
    }

    /// Assigns `m` users to groups with (approximately) the given
    /// `ratios`, shuffled by `seed`. Ratios are normalized; rounding
    /// remainders go to the largest groups first, and every group gets at
    /// least one user.
    ///
    /// # Panics
    /// Panics if `m < ratios.len()` or any ratio is non-positive.
    pub fn from_ratios(m: usize, ratios: &[(&str, f64)], seed: u64) -> Self {
        let c = ratios.len();
        assert!(c >= 1 && m >= c, "need at least one user per group");
        assert!(
            ratios.iter().all(|&(_, r)| r > 0.0),
            "ratios must be positive"
        );
        let total: f64 = ratios.iter().map(|&(_, r)| r).sum();

        // Largest-remainder apportionment with a 1-user floor.
        let mut sizes: Vec<usize> = ratios
            .iter()
            .map(|&(_, r)| ((r / total) * m as f64).floor().max(1.0) as usize)
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        // Trim overshoot from the largest groups.
        while assigned > m {
            let i = (0..c).max_by_key(|&i| sizes[i]).unwrap();
            assert!(sizes[i] > 1, "cannot honor 1-user floors");
            sizes[i] -= 1;
            assigned -= 1;
        }
        // Distribute leftover by largest fractional remainder.
        let mut order: Vec<usize> = (0..c).collect();
        order.sort_by(|&a, &b| {
            let fa = (ratios[a].1 / total) * m as f64 - sizes[a] as f64;
            let fb = (ratios[b].1 / total) * m as f64 - sizes[b] as f64;
            fb.partial_cmp(&fa).unwrap()
        });
        let mut i = 0;
        while assigned < m {
            sizes[order[i % c]] += 1;
            assigned += 1;
            i += 1;
        }

        let mut assignment = Vec::with_capacity(m);
        for (g, &s) in sizes.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(g as u32, s));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        assignment.shuffle(&mut rng);

        Self {
            assignment,
            sizes,
            labels: ratios.iter().map(|&(l, _)| l.to_string()).collect(),
        }
    }

    /// One group per user (`c = m`), as in the FourSquare experiments.
    pub fn singletons(m: usize) -> Self {
        Self {
            assignment: (0..m as u32).collect(),
            sizes: vec![1; m],
            labels: (0..m).map(|i| format!("u{i}")).collect(),
        }
    }

    /// Group index of user `u`.
    #[inline]
    pub fn group_of(&self, u: usize) -> u32 {
        self.assignment[u]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Group sizes `m_i`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of groups `c`.
    pub fn num_groups(&self) -> usize {
        self.sizes.len()
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.assignment.len()
    }

    /// Group labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Percentage of users in each group (for Table 1/2 style reports).
    pub fn percentages(&self) -> Vec<f64> {
        let m = self.num_users() as f64;
        self.sizes.iter().map(|&s| 100.0 * s as f64 / m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_produce_expected_sizes() {
        let g = Groups::from_ratios(500, &[("U0", 0.2), ("U1", 0.8)], 1);
        assert_eq!(g.sizes(), &[100, 400]);
        assert_eq!(g.num_users(), 500);
        assert_eq!(g.labels(), &["U0".to_string(), "U1".to_string()]);
    }

    #[test]
    fn ratios_honor_one_user_floor() {
        // 1% group of 100 users → exactly 1 user.
        let g = Groups::from_ratios(100, &[("tiny", 0.01), ("big", 0.99)], 2);
        assert_eq!(g.sizes()[0], 1);
        assert_eq!(g.sizes()[1], 99);
    }

    #[test]
    fn ratios_are_deterministic_and_shuffled() {
        let a = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 7);
        let b = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 7);
        assert_eq!(a.assignment(), b.assignment());
        let c = Groups::from_ratios(50, &[("a", 0.5), ("b", 0.5)], 8);
        assert_ne!(a.assignment(), c.assignment());
    }

    #[test]
    fn paper_table1_percentages() {
        // RAND (c=4): 8/12/20/60.
        let g = Groups::from_ratios(
            500,
            &[("U0", 0.08), ("U1", 0.12), ("U2", 0.2), ("U3", 0.6)],
            3,
        );
        assert_eq!(g.sizes(), &[40, 60, 100, 300]);
        let p = g.percentages();
        assert!((p[3] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn singletons_one_group_per_user() {
        let g = Groups::singletons(5);
        assert_eq!(g.num_groups(), 5);
        assert_eq!(g.sizes(), &[1, 1, 1, 1, 1]);
        assert_eq!(g.group_of(3), 3);
    }

    #[test]
    fn from_assignment_counts_sizes() {
        let g = Groups::from_assignment(vec![0, 1, 1, 0, 2]);
        assert_eq!(g.sizes(), &[2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_assignment_rejects_empty_group() {
        let _ = Groups::from_assignment(vec![0, 2, 2]);
    }
}
