//! # fair-submod-graphs
//!
//! Graph substrate for the fair-submod workspace: a compact CSR digraph,
//! deterministic random-graph generators (stochastic block model,
//! Erdős–Rényi, Chung–Lu power-law, Barabási–Albert, overlapping
//! community/clique graphs), demographic group assignment, traversal
//! helpers, simple statistics, and edge-list I/O.
//!
//! The maximum-coverage and influence-maximization experiments of the
//! paper both run on graphs; this crate produces the paper's synthetic
//! RAND datasets exactly (SBM, 500/100 nodes, `p_in = 0.1`,
//! `p_out = 0.02`) and the documented stand-ins for Facebook, DBLP, and
//! Pokec (see DESIGN.md §4).

pub mod csr;
pub mod generators;
pub mod groups;
pub mod io;
pub mod stats;
pub mod traversal;

pub use csr::{CsrSlice, Graph, GraphBuilder, SpillError, SpilledSlice};
pub use groups::Groups;
