//! Edge-list and group-assignment I/O.
//!
//! Plain whitespace-separated text: one `src dst` pair per line for
//! edges, one group index per line for assignments. Lines starting with
//! `#` are comments. This is the format of the SNAP datasets the paper
//! uses, so real data can be dropped in when available.
//!
//! Two reading paths share one line parser:
//!
//! * [`read_edge_list`] — whole-file, builds a full [`Graph`].
//! * [`for_each_edge_chunked`] — streams the byte stream in bounded
//!   chunks with partial-line carry-over, feeding a sink per edge.
//!   [`read_edge_list_chunked`] (same `Graph`, bounded read buffer) and
//!   [`read_shard_slices`] (per-shard [`CsrSlice`]s for the sharded
//!   solve tier, no full graph ever materialized) are built on it.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::csr::{CsrSlice, Graph, GraphBuilder, NodeId};
use crate::groups::Groups;

/// Parses one edge-list line: `None` for blanks and `#` comments,
/// `Some((u, v))` for an edge. `lineno` is 1-based and only used for
/// error messages, which are byte-identical between the whole-file and
/// chunked readers.
fn parse_edge_line(
    line: &str,
    lineno: usize,
    n: usize,
) -> std::io::Result<Option<(NodeId, NodeId)>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let parse = |s: Option<&str>| -> std::io::Result<NodeId> {
        s.and_then(|x| x.parse().ok()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed edge at line {lineno}"),
            )
        })
    };
    let u = parse(parts.next())?;
    let v = parse(parts.next())?;
    if (u as usize) >= n || (v as usize) >= n {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("node id out of range at line {lineno}"),
        ));
    }
    Ok(Some((u, v)))
}

/// Reads an edge list; node ids must be `< n`.
pub fn read_edge_list<R: Read>(reader: R, n: usize, directed: bool) -> std::io::Result<Graph> {
    let mut builder = GraphBuilder::new(n, directed);
    let reader = BufReader::new(reader);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some((u, v)) = parse_edge_line(&line, lineno + 1, n)? {
            builder.add_edge(u, v);
        }
    }
    Ok(builder.build())
}

/// Streams an edge list in chunks of at most `chunk_bytes` bytes,
/// carrying partial lines across chunk boundaries, and calls `sink` for
/// every parsed edge in file order. Skip rules, error messages, and
/// line numbering are identical to [`read_edge_list`]; a final line
/// without a trailing newline (a ragged last chunk) is parsed too.
///
/// Peak memory is `chunk_bytes` plus the longest single line —
/// independent of the file size — which is what lets the sharded tier
/// route a million-node graph's edges straight into per-shard slices.
pub fn for_each_edge_chunked<R: Read>(
    mut reader: R,
    n: usize,
    chunk_bytes: usize,
    mut sink: impl FnMut(NodeId, NodeId),
) -> std::io::Result<()> {
    let chunk_bytes = chunk_bytes.max(1);
    let mut chunk = vec![0u8; chunk_bytes];
    let mut carry: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    let emit = |bytes: &[u8], lineno: usize, sink: &mut dyn FnMut(NodeId, NodeId)| {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            )
        })?;
        if let Some((u, v)) = parse_edge_line(text, lineno, n)? {
            sink(u, v);
        }
        Ok::<(), std::io::Error>(())
    };
    loop {
        let got = reader.read(&mut chunk)?;
        if got == 0 {
            break;
        }
        let data = &chunk[..got];
        let mut start = 0usize;
        while let Some(pos) = data[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            lineno += 1;
            if carry.is_empty() {
                emit(&data[start..end], lineno, &mut sink)?;
            } else {
                carry.extend_from_slice(&data[start..end]);
                emit(&carry, lineno, &mut sink)?;
                carry.clear();
            }
            start = end + 1;
        }
        carry.extend_from_slice(&data[start..]);
    }
    if !carry.is_empty() {
        lineno += 1;
        emit(&carry, lineno, &mut sink)?;
    }
    Ok(())
}

/// Chunk-loading counterpart of [`read_edge_list`]: same [`Graph`],
/// built through [`for_each_edge_chunked`] with a bounded read buffer.
pub fn read_edge_list_chunked<R: Read>(
    reader: R,
    n: usize,
    directed: bool,
    chunk_bytes: usize,
) -> std::io::Result<Graph> {
    let mut builder = GraphBuilder::new(n, directed);
    for_each_edge_chunked(reader, n, chunk_bytes, |u, v| {
        builder.add_edge(u, v);
    })?;
    Ok(builder.build())
}

/// Streams an edge list directly into per-shard [`CsrSlice`]s without
/// materializing the full [`Graph`].
///
/// `owner[v]` assigns node `v` to a shard in `0..num_shards` (the
/// sharded tier derives it from `shard_partition`); each arc is routed
/// to the shard owning its source — for undirected graphs both
/// orientations are routed, mirroring [`GraphBuilder::build`]'s
/// symmetrize-before-dedup. Every slice is bitwise equal to
/// [`Graph::slice_rows`] over the same nodes: self-loops dropped, rows
/// sorted and deduplicated, targets global.
///
/// # Panics
/// Panics if `num_shards == 0`, `owner.len() != n`, or an owner index
/// is `≥ num_shards`.
pub fn read_shard_slices<R: Read>(
    reader: R,
    n: usize,
    directed: bool,
    owner: &[u32],
    num_shards: usize,
    chunk_bytes: usize,
) -> std::io::Result<Vec<CsrSlice>> {
    assert!(num_shards >= 1, "num_shards must be >= 1");
    assert_eq!(owner.len(), n, "owner must assign every node");
    assert!(
        owner.iter().all(|&s| (s as usize) < num_shards),
        "owner index out of range"
    );
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
    let mut local_of = vec![0u32; n];
    for v in 0..n {
        let s = owner[v] as usize;
        local_of[v] = nodes[s].len() as u32;
        nodes[s].push(v as NodeId);
    }
    let mut arcs: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); num_shards];
    for_each_edge_chunked(reader, n, chunk_bytes, |u, v| {
        if u == v {
            return; // GraphBuilder drops self-loops on add
        }
        arcs[owner[u as usize] as usize].push((local_of[u as usize], v));
        if !directed {
            arcs[owner[v as usize] as usize].push((local_of[v as usize], u));
        }
    })?;
    Ok(nodes
        .into_iter()
        .zip(arcs)
        .map(|(ns, ar)| CsrSlice::from_arcs(ns, ar))
        .collect())
}

/// Out-of-core counterpart of [`read_shard_slices`]: streams the edge
/// list once **per shard**, materializing only that shard's slice in
/// memory before spilling it to `dir` and dropping it — peak memory is
/// one shard's arcs plus the read buffer, never the whole partition.
///
/// `open` must return a fresh reader over the same byte stream on every
/// call (`num_shards` passes are made). Each spilled slice is bitwise
/// equal to the corresponding [`read_shard_slices`] slice: the per-shard
/// pass collects exactly the arcs routed to that shard, and
/// `CsrSlice::from_arcs` normalizes identically regardless of arrival
/// order.
///
/// # Panics
/// Panics if `num_shards == 0`, `owner.len() != n`, or an owner index
/// is `≥ num_shards` — the same contract as [`read_shard_slices`].
pub fn spill_shard_slices<R: Read>(
    mut open: impl FnMut() -> std::io::Result<R>,
    n: usize,
    directed: bool,
    owner: &[u32],
    num_shards: usize,
    chunk_bytes: usize,
    dir: &std::path::Path,
) -> Result<Vec<crate::csr::SpilledSlice>, crate::csr::SpillError> {
    assert!(num_shards >= 1, "num_shards must be >= 1");
    assert_eq!(owner.len(), n, "owner must assign every node");
    assert!(
        owner.iter().all(|&s| (s as usize) < num_shards),
        "owner index out of range"
    );
    // Shard-local ids, assigned in ascending global order — the same
    // numbering `read_shard_slices` uses.
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
    let mut local_of = vec![0u32; n];
    for v in 0..n {
        let s = owner[v] as usize;
        local_of[v] = nodes[s].len() as u32;
        nodes[s].push(v as NodeId);
    }
    let mut spilled = Vec::with_capacity(num_shards);
    for (s, ns) in nodes.into_iter().enumerate() {
        let mut arcs: Vec<(u32, NodeId)> = Vec::new();
        for_each_edge_chunked(open()?, n, chunk_bytes, |u, v| {
            if u == v {
                return; // GraphBuilder drops self-loops on add
            }
            if owner[u as usize] as usize == s {
                arcs.push((local_of[u as usize], v));
            }
            if !directed && owner[v as usize] as usize == s {
                arcs.push((local_of[v as usize], u));
            }
        })?;
        let slice = CsrSlice::from_arcs(ns, arcs);
        spilled.push(slice.spill(dir)?);
    }
    Ok(spilled)
}

/// Writes an edge list (arcs for directed graphs; each undirected edge
/// once, with `src < dst`).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (u, v) in graph.arcs() {
        if graph.is_directed() || u < v {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()
}

/// Reads a group assignment (one index per line).
pub fn read_groups<R: Read>(reader: R) -> std::io::Result<Groups> {
    let reader = BufReader::new(reader);
    let mut assignment = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let g: u32 = line.parse().map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed group index")
        })?;
        assignment.push(g);
    }
    Ok(Groups::from_assignment(assignment))
}

/// Writes a group assignment.
pub fn write_groups<W: Write>(groups: &Groups, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &g in groups.assignment() {
        writeln!(w, "{g}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let mut b = GraphBuilder::new(4, false);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], 4, false).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..4 {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 3, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_edges_error() {
        assert!(read_edge_list("0 x\n".as_bytes(), 3, true).is_err());
        assert!(read_edge_list("0 9\n".as_bytes(), 3, true).is_err());
    }

    #[test]
    fn groups_roundtrip() {
        let g = Groups::from_assignment(vec![0, 1, 0, 2]);
        let mut buf = Vec::new();
        write_groups(&g, &mut buf).unwrap();
        let g2 = read_groups(&buf[..]).unwrap();
        assert_eq!(g.assignment(), g2.assignment());
    }

    /// Chunked and whole-file reads must agree for every chunk size,
    /// including sizes that split lines mid-number and a file with no
    /// trailing newline.
    #[test]
    fn chunked_read_matches_whole_file_at_every_chunk_size() {
        let text = "# header\n0 1\n\n1 2\n2 3\n3 0\n0 2"; // ragged last line
        let whole = read_edge_list(text.as_bytes(), 4, false).unwrap();
        for chunk_bytes in 1..=text.len() + 3 {
            let chunked = read_edge_list_chunked(text.as_bytes(), 4, false, chunk_bytes).unwrap();
            assert_eq!(whole.num_arcs(), chunked.num_arcs(), "chunk {chunk_bytes}");
            for v in 0..4 {
                assert_eq!(
                    whole.out_neighbors(v),
                    chunked.out_neighbors(v),
                    "chunk {chunk_bytes}, node {v}"
                );
            }
        }
    }

    #[test]
    fn chunked_errors_carry_the_same_line_numbers() {
        let text = "0 1\n# fine\n0 x\n";
        let whole = read_edge_list(text.as_bytes(), 3, true).unwrap_err();
        let chunked = read_edge_list_chunked(text.as_bytes(), 3, true, 4).unwrap_err();
        assert_eq!(whole.to_string(), chunked.to_string());
        assert!(whole.to_string().contains("line 3"), "{whole}");

        let text = "0 1\n9 0\n";
        let whole = read_edge_list(text.as_bytes(), 3, true).unwrap_err();
        let chunked = read_edge_list_chunked(text.as_bytes(), 3, true, 2).unwrap_err();
        assert_eq!(whole.to_string(), chunked.to_string());
        assert!(
            whole.to_string().contains("out of range at line 2"),
            "{whole}"
        );
    }

    #[test]
    fn shard_slices_match_full_graph_rows() {
        let text = "0 1\n1 2\n2 3\n3 0\n1 1\n0 2\n0 1\n"; // dup + self-loop
        for directed in [false, true] {
            let whole = read_edge_list(text.as_bytes(), 4, directed).unwrap();
            let owner = [0u32, 1, 0, 1];
            let slices = read_shard_slices(text.as_bytes(), 4, directed, &owner, 2, 5).unwrap();
            assert_eq!(slices.len(), 2);
            assert_eq!(
                slices[0],
                whole.slice_rows(&[0, 2]),
                "directed = {directed}"
            );
            assert_eq!(
                slices[1],
                whole.slice_rows(&[1, 3]),
                "directed = {directed}"
            );
        }
    }

    #[test]
    fn spilled_shard_slices_match_in_core_slices() {
        let text = "0 1\n1 2\n2 3\n3 0\n1 1\n0 2\n0 1\n";
        let owner = [0u32, 1, 0, 1];
        let dir = std::env::temp_dir().join(format!("fair-submod-io-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for directed in [false, true] {
            let in_core = read_shard_slices(text.as_bytes(), 4, directed, &owner, 2, 5).unwrap();
            let spilled =
                spill_shard_slices(|| Ok(text.as_bytes()), 4, directed, &owner, 2, 5, &dir)
                    .unwrap();
            assert_eq!(spilled.len(), in_core.len());
            for (handle, expect) in spilled.iter().zip(&in_core) {
                assert_eq!(&handle.load().unwrap(), expect, "directed = {directed}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_shards_produce_empty_slices() {
        let text = "0 1\n";
        let owner = [0u32, 0, 0];
        let slices = read_shard_slices(text.as_bytes(), 3, false, &owner, 3, 64).unwrap();
        assert_eq!(slices[0].num_nodes(), 3);
        assert_eq!(slices[1].num_nodes(), 0);
        assert_eq!(slices[1].num_arcs(), 0);
        assert_eq!(slices[2].num_nodes(), 0);
    }
}
