//! Edge-list and group-assignment I/O.
//!
//! Plain whitespace-separated text: one `src dst` pair per line for
//! edges, one group index per line for assignments. Lines starting with
//! `#` are comments. This is the format of the SNAP datasets the paper
//! uses, so real data can be dropped in when available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::csr::{Graph, GraphBuilder, NodeId};
use crate::groups::Groups;

/// Reads an edge list; node ids must be `< n`.
pub fn read_edge_list<R: Read>(reader: R, n: usize, directed: bool) -> std::io::Result<Graph> {
    let mut builder = GraphBuilder::new(n, directed);
    let reader = BufReader::new(reader);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>| -> std::io::Result<NodeId> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed edge at line {}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if (u as usize) >= n || (v as usize) >= n {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("node id out of range at line {}", lineno + 1),
            ));
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Writes an edge list (arcs for directed graphs; each undirected edge
/// once, with `src < dst`).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (u, v) in graph.arcs() {
        if graph.is_directed() || u < v {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()
}

/// Reads a group assignment (one index per line).
pub fn read_groups<R: Read>(reader: R) -> std::io::Result<Groups> {
    let reader = BufReader::new(reader);
    let mut assignment = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let g: u32 = line.parse().map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed group index")
        })?;
        assignment.push(g);
    }
    Ok(Groups::from_assignment(assignment))
}

/// Writes a group assignment.
pub fn write_groups<W: Write>(groups: &Groups, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &g in groups.assignment() {
        writeln!(w, "{g}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let mut b = GraphBuilder::new(4, false);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], 4, false).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..4 {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 3, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_edges_error() {
        assert!(read_edge_list("0 x\n".as_bytes(), 3, true).is_err());
        assert!(read_edge_list("0 9\n".as_bytes(), 3, true).is_err());
    }

    #[test]
    fn groups_roundtrip() {
        let g = Groups::from_assignment(vec![0, 1, 0, 2]);
        let mut buf = Vec::new();
        write_groups(&g, &mut buf).unwrap();
        let g2 = read_groups(&buf[..]).unwrap();
        assert_eq!(g.assignment(), g2.assignment());
    }
}
