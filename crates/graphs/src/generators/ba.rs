//! Barabási–Albert preferential attachment.
//!
//! An alternative heavy-tailed generator used by the ablation benches
//! (growth + preferential attachment instead of Chung–Lu's configuration
//! model). Undirected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, GraphBuilder, NodeId};

/// Samples a Barabási–Albert graph: starts from a clique of `m0 = m + 1`
/// nodes, then each new node attaches to `m` existing nodes chosen
/// proportionally to their current degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "each node must attach at least one edge");
    assert!(n > m, "need n > m");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, false);

    // Repeated-endpoint list: sampling a uniform element of `ends` is
    // degree-proportional sampling.
    let mut ends: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let m0 = m + 1;
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            builder.add_edge(u as NodeId, v as NodeId);
            ends.push(u as NodeId);
            ends.push(v as NodeId);
        }
    }

    for u in m0..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let v = ends[rng.gen_range(0..ends.len())];
            if v as usize != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            builder.add_edge(u as NodeId, v);
            ends.push(u as NodeId);
            ends.push(v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_has_expected_edge_count() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 1);
        let m0 = m + 1;
        let expected = m0 * (m0 - 1) / 2 + (n - m0) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn ba_produces_hubs() {
        let g = barabasi_albert(1000, 2, 3);
        let max_deg = (0..1000).map(|v| g.out_degree(v)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / 1000.0;
        assert!(max_deg as f64 > 5.0 * avg);
    }

    #[test]
    fn ba_is_connected() {
        let g = barabasi_albert(200, 1, 9);
        let comp = crate::traversal::connected_components(&g);
        assert_eq!(comp.num_components, 1);
    }
}
