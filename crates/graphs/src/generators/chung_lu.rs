//! Chung–Lu random graphs with prescribed expected degrees, and
//! power-law weight sequences.
//!
//! The Pokec stand-in (DESIGN.md §4) is a directed Chung–Lu graph with a
//! power-law out-degree sequence: large, sparse, heavy-tailed — the
//! regime where the paper's Figure 4/6 scalability curves live.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, GraphBuilder, NodeId};

/// Power-law weight sequence `w_i ∝ (i + i0)^(−1/(γ−1))` scaled so the
/// mean weight equals `avg_degree`. Exponent `γ > 2` gives a finite-mean
/// tail like real social networks (Pokec's is ≈ 2.5).
pub fn power_law_weights(n: usize, avg_degree: f64, gamma: f64) -> Vec<f64> {
    assert!(gamma > 2.0, "need γ > 2 for a finite mean");
    assert!(n > 0);
    let alpha = 1.0 / (gamma - 1.0);
    let i0 = 1.0f64;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    for x in w.iter_mut() {
        *x *= scale;
    }
    w
}

/// Samples a Chung–Lu graph: arc `(u, v)` appears with probability
/// `min(1, w_u·w_v / W)` where `W = Σ w`. Implemented by sampling
/// `⌈W/2⌉`-ish endpoint pairs proportional to weight (the standard
/// fast approximation that preserves expected degrees), then
/// deduplicating.
///
/// For `directed = true`, `weights` drive out-degrees and in-endpoints
/// are drawn from the same distribution.
pub fn chung_lu(weights: &[f64], directed: bool, seed: u64) -> Graph {
    let n = weights.len();
    assert!(n > 1);
    let total: f64 = weights.iter().sum();
    let m_target = if directed { total } else { total / 2.0 };
    let m_target = m_target.round().max(0.0) as usize;

    // Cumulative table for O(log n) weighted sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in weights {
        assert!(w >= 0.0, "negative weight");
        acc += w;
        cum.push(acc);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| -> NodeId {
        let x = rng.gen::<f64>() * acc;
        cum.partition_point(|&c| c <= x).min(n - 1) as NodeId
    };

    let mut builder = GraphBuilder::new(n, directed);
    // Oversample slightly to compensate for dedup/self-loop losses.
    let attempts = (m_target as f64 * 1.05).ceil() as usize;
    for _ in 0..attempts {
        let u = draw(&mut rng);
        let v = draw(&mut rng);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_have_requested_mean() {
        let w = power_law_weights(1000, 12.0, 2.5);
        let mean = w.iter().sum::<f64>() / 1000.0;
        assert!((mean - 12.0).abs() < 1e-9);
        // Heavy head: the top node has far more than the mean.
        assert!(w[0] > 5.0 * mean);
        // Monotone decreasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn chung_lu_hits_edge_target_approximately() {
        let w = power_law_weights(2000, 10.0, 2.6);
        let g = chung_lu(&w, true, 9);
        let m = g.num_edges() as f64;
        let target = w.iter().sum::<f64>();
        assert!(
            (m - target).abs() < 0.2 * target,
            "m = {m}, target ≈ {target}"
        );
    }

    #[test]
    fn chung_lu_degrees_follow_weights() {
        let mut w = vec![1.0; 500];
        w[0] = 200.0; // one hub
        let g = chung_lu(&w, true, 4);
        let hub_deg = g.out_degree(0) + g.in_degree(0);
        let typical: usize = (1..100)
            .map(|v| g.out_degree(v) + g.in_degree(v))
            .sum::<usize>()
            / 99;
        assert!(hub_deg > 10 * typical.max(1));
    }

    #[test]
    fn chung_lu_is_deterministic() {
        let w = power_law_weights(300, 8.0, 2.5);
        let a = chung_lu(&w, false, 11);
        let b = chung_lu(&w, false, 11);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
