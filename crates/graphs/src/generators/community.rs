//! Overlapping-clique community graphs (DBLP-like co-authorship).
//!
//! Real co-authorship graphs are unions of small cliques (papers) that
//! overlap on shared authors, giving very sparse graphs with tiny dense
//! pockets — DBLP in the paper has 3,980 nodes and only 6,966 edges. This
//! generator reproduces that texture: it repeatedly samples a "paper"
//! as a clique of 2–`max_clique` nodes, reusing a previous author with
//! probability `p_reuse`, until an edge budget is met.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, GraphBuilder, NodeId};

/// Samples a community/clique graph over `n` nodes with roughly
/// `target_edges` edges.
pub fn community_graph(
    n: usize,
    target_edges: usize,
    max_clique: usize,
    p_reuse: f64,
    seed: u64,
) -> Graph {
    assert!(n >= 2 && max_clique >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, false);
    let mut active: Vec<NodeId> = Vec::new();
    let mut edges = 0usize;
    let mut next_fresh: NodeId = 0;

    while edges < target_edges {
        let size = rng.gen_range(2..=max_clique);
        let mut clique: Vec<NodeId> = Vec::with_capacity(size);
        for _ in 0..size {
            let reuse = !active.is_empty() && rng.gen::<f64>() < p_reuse;
            let v = if reuse || next_fresh as usize >= n {
                if active.is_empty() {
                    rng.gen_range(0..n as NodeId)
                } else {
                    active[rng.gen_range(0..active.len())]
                }
            } else {
                let v = next_fresh;
                next_fresh += 1;
                active.push(v);
                v
            };
            if !clique.contains(&v) {
                clique.push(v);
            }
        }
        for i in 0..clique.len() {
            for j in (i + 1)..clique.len() {
                builder.add_edge(clique[i], clique[j]);
                edges += 1;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_graph_is_sparse_like_dblp() {
        // DBLP shape: n ≈ 4000, m ≈ 7000 → average degree ≈ 3.5.
        let g = community_graph(3980, 6966, 5, 0.35, 13);
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg_deg > 1.5 && avg_deg < 6.0, "avg degree {avg_deg}");
    }

    #[test]
    fn community_graph_determinism() {
        let a = community_graph(200, 400, 4, 0.3, 2);
        let b = community_graph(200, 400, 4, 0.3, 2);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn community_graph_contains_triangles() {
        let g = community_graph(300, 800, 5, 0.2, 6);
        // Cliques of size ≥ 3 ⇒ triangles exist: find one by scanning.
        let mut found = false;
        'outer: for u in 0..300u32 {
            let nu = g.out_neighbors(u);
            for &v in nu {
                if v <= u {
                    continue;
                }
                for &w in g.out_neighbors(v) {
                    if w > v && nu.contains(&w) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no triangle in a clique-based graph");
    }
}
