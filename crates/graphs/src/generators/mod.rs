//! Deterministic random-graph generators.
//!
//! All generators are seeded and reproducible across runs and platforms
//! (they use `StdRng`, a portable PRNG). The paper's synthetic RAND
//! datasets come from [`sbm()`](sbm::sbm); the stand-ins for the real datasets use
//! `chung_lu`/`power_law_weights` (Pokec-like), `sbm` with a density
//! boost (Facebook-like) and `community_graph` (DBLP-like) — see the `datasets`
//! crate for the concrete recipes.

pub mod ba;
pub mod chung_lu;
pub mod community;
pub mod sbm;

pub use ba::barabasi_albert;
pub use chung_lu::{chung_lu, power_law_weights};
pub use community::community_graph;
pub use sbm::{erdos_renyi, sbm};
