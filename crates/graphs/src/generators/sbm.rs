//! Stochastic block model (Holland et al., 1983) and Erdős–Rényi graphs.
//!
//! The paper's RAND datasets are undirected SBM graphs with intra-group
//! probability 0.1 and inter-group probability 0.02 (Section 5.1).
//!
//! Sampling uses geometric skipping (Batagelj & Brandes, 2005): for a
//! Bernoulli(p) sequence, the distance to the next success is geometric,
//! so generation costs `O(n + m)` rather than `O(n²)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Graph, GraphBuilder, NodeId};

/// Samples an undirected stochastic block model.
///
/// `block_sizes[i]` nodes belong to block `i` (nodes are numbered block
/// by block); `p_in` is the within-block and `p_out` the between-block
/// connection probability.
pub fn sbm(block_sizes: &[usize], p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = block_sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (b, &s) in block_sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, s));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, false);

    // Enumerate candidate pairs (u < v) with geometric skipping per
    // probability class. Simpler: one pass per class over the strictly
    // upper-triangular pair index space.
    sample_pairs(n, &mut rng, |u, v| {
        if block_of[u] == block_of[v] {
            p_in
        } else {
            p_out
        }
    })
    .into_iter()
    .for_each(|(u, v)| {
        builder.add_edge(u as NodeId, v as NodeId);
    });
    builder.build()
}

/// Samples an undirected Erdős–Rényi graph `G(n, p)`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    sbm(&[n], p, p, seed)
}

/// Bernoulli sampling over the upper-triangular pair space with a
/// per-pair probability function. Uses geometric skipping at the maximum
/// probability and thins to the pair's own probability, which is exact
/// and `O(n + m/p_max)` in expectation.
fn sample_pairs(
    n: usize,
    rng: &mut StdRng,
    prob: impl Fn(usize, usize) -> f64,
) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    if n < 2 {
        return edges;
    }
    // Determine the maximum probability for the skipping envelope.
    // (Both class probabilities are known to the caller; probing the two
    // canonical pairs is enough because `prob` only depends on the
    // block-equality of its arguments.)
    let mut p_max = 0.0f64;
    for u in 0..n.min(64) {
        for v in (u + 1)..n.min(64) {
            p_max = p_max.max(prob(u, v));
        }
    }
    p_max = p_max.max(1e-12);
    if p_max >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < prob(u, v) {
                    edges.push((u, v));
                }
            }
        }
        return edges;
    }

    let total_pairs = n * (n - 1) / 2;
    let log_q = (1.0 - p_max).ln();
    let mut idx: i64 = -1;
    loop {
        // Geometric skip to the next envelope success.
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        idx += skip.max(1);
        if idx as usize >= total_pairs {
            break;
        }
        let (u, v) = unrank_pair(idx as usize, n);
        let p = prob(u, v);
        if p >= p_max || rng.gen::<f64>() < p / p_max {
            edges.push((u, v));
        }
    }
    edges
}

/// Maps a linear index to the `idx`-th pair `(u, v)` with `u < v` in
/// row-major upper-triangular order.
fn unrank_pair(idx: usize, n: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... solve incrementally.
    let mut u = 0usize;
    let mut remaining = idx;
    loop {
        let row_len = n - u - 1;
        if remaining < row_len {
            return (u, u + 1 + remaining);
        }
        remaining -= row_len;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_enumerates_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn sbm_is_deterministic() {
        let a = sbm(&[30, 70], 0.1, 0.02, 42);
        let b = sbm(&[30, 70], 0.1, 0.02, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..100 {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn sbm_edge_count_matches_expectation() {
        // E[m] = p_in·Σ C(s_i,2) + p_out·Σ_{i<j} s_i·s_j.
        let g = sbm(&[100, 400], 0.1, 0.02, 7);
        let expected = 0.1 * (100.0 * 99.0 / 2.0 + 400.0 * 399.0 / 2.0) + 0.02 * (100.0 * 400.0);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 0.15 * expected,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn dense_blocks_are_denser() {
        let g = sbm(&[50, 50], 0.3, 0.01, 5);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.arcs() {
            if (u < 50) == (v < 50) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 3);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(20, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
    }
}
