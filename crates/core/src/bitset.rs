//! A packed `u64` bitset for cache-efficient incremental oracle state.
//!
//! Coverage-style oracles track "is user/RR-set `i` already served?"
//! flags. A `Vec<bool>` spends one byte (and one cache line per 64
//! flags) per entry and forces element-at-a-time gain counting; packing
//! 64 flags per word lets kernels AND a candidate's element mask against
//! the complement of the covered words and `popcount` whole words at a
//! time — the classic word-parallel coverage kernel.

use serde::{Deserialize, Serialize};

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// A fixed-capacity bitset backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedBitset {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitset {
    /// An all-zero bitset over `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Number of set bits, via the SIMD-width unrolled kernel
    /// ([`popcount_words`]).
    pub fn count_ones(&self) -> usize {
        popcount_words(&self.words)
    }

    /// The backing words (little-endian bit order within each word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// Width (in `u64` words) of the unrolled popcount kernels: 8 words =
/// one 64-byte cache line per step, and enough independent `popcnt`
/// chains for the CPU to retire several per cycle.
pub const KERNEL_WORDS: usize = 8;

/// Word-parallel population count over a word slice, processed in
/// [`KERNEL_WORDS`]-wide chunks with the per-chunk sums accumulated in
/// independent lanes (so the adds, like the popcounts, don't serialize
/// on one dependency chain). Exact same integer as the scalar
/// fold — popcounts are associative — just faster.
#[inline]
pub fn popcount_words(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(KERNEL_WORDS);
    let mut total = 0usize;
    for c in &mut chunks {
        let a = c[0].count_ones() + c[1].count_ones();
        let b = c[2].count_ones() + c[3].count_ones();
        let d = c[4].count_ones() + c[5].count_ones();
        let e = c[6].count_ones() + c[7].count_ones();
        total += ((a + b) + (d + e)) as usize;
    }
    total + scalar_popcount(chunks.remainder())
}

/// The pre-unrolling scalar popcount fold, kept `pub` so the
/// `bitset_kernel_unrolled` perfbase scenario can pit the unrolled
/// kernel against the exact code it replaced.
#[inline]
pub fn scalar_popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Complement-masked population count: number of bits set in `a` but
/// **not** in `covered` — the coverage-style "how many of these users
/// are still free" kernel, unrolled [`KERNEL_WORDS`] words at a time.
///
/// The slices must have equal lengths (checked in debug builds only —
/// a release-mode `assert_eq!` here measurably pessimizes the unrolled
/// loop; a length mismatch truncates to the shorter slice).
#[inline]
pub fn popcount_andnot(a: &[u64], covered: &[u64]) -> usize {
    debug_assert_eq!(a.len(), covered.len(), "andnot kernel length mismatch");
    let mut ac = a.chunks_exact(KERNEL_WORDS);
    let mut cc = covered.chunks_exact(KERNEL_WORDS);
    let mut total = 0u32;
    for (x, y) in (&mut ac).zip(&mut cc) {
        let a0 = (x[0] & !y[0]).count_ones() + (x[1] & !y[1]).count_ones();
        let a1 = (x[2] & !y[2]).count_ones() + (x[3] & !y[3]).count_ones();
        let a2 = (x[4] & !y[4]).count_ones() + (x[5] & !y[5]).count_ones();
        let a3 = (x[6] & !y[6]).count_ones() + (x[7] & !y[7]).count_ones();
        total += (a0 + a1) + (a2 + a3);
    }
    total as usize + scalar_popcount_andnot(ac.remainder(), cc.remainder())
}

/// Scalar reference for [`popcount_andnot`] (and its benchmark "before"
/// side).
#[inline]
pub fn scalar_popcount_andnot(a: &[u64], covered: &[u64]) -> usize {
    a.iter()
        .zip(covered)
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum()
}

/// Packs an index list into sparse `(word, mask)` pairs, merged per
/// word and sorted by word index — the precomputed per-item masks the
/// word-at-a-time kernels scan.
pub fn pack_sparse(indices: &[u32]) -> Vec<(u32, u64)> {
    let mut pairs: Vec<(u32, u64)> = Vec::new();
    for &i in indices {
        let w = i / WORD_BITS as u32;
        let bit = 1u64 << (i % WORD_BITS as u32);
        match pairs.last_mut() {
            Some((lw, mask)) if *lw == w => *mask |= bit,
            _ => match pairs.iter_mut().find(|(pw, _)| *pw == w) {
                Some((_, mask)) => *mask |= bit,
                None => pairs.push((w, bit)),
            },
        }
    }
    pairs.sort_unstable_by_key(|&(w, _)| w);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_roundtrip() {
        let mut b = FixedBitset::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.words().len(), 3);
        for i in [0usize, 63, 64, 129] {
            assert!(!b.contains(i));
            b.insert(i);
            assert!(b.contains(i));
        }
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn unrolled_popcounts_match_scalar_reference() {
        // Lengths straddling the 8-word chunk boundary, including the
        // empty and remainder-only cases.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for len in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            let a: Vec<u64> = (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            let b: Vec<u64> = a.iter().map(|w| w.rotate_left(11)).collect();
            assert_eq!(popcount_words(&a), scalar_popcount(&a), "len {len}");
            assert_eq!(
                popcount_andnot(&a, &b),
                scalar_popcount_andnot(&a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn pack_sparse_merges_words() {
        // Unsorted input with two indices in word 0 and one in word 2.
        let pairs = pack_sparse(&[130, 3, 0]);
        assert_eq!(pairs, vec![(0, 0b1001), (2, 1u64 << 2)]);
    }

    #[test]
    fn pack_sparse_equals_dense_bitmap() {
        let indices: Vec<u32> = (0..200).filter(|i| i % 7 == 0).collect();
        let pairs = pack_sparse(&indices);
        let mut dense = FixedBitset::zeros(200);
        for &i in &indices {
            dense.insert(i as usize);
        }
        let mut rebuilt = FixedBitset::zeros(200);
        for (w, mask) in pairs {
            rebuilt.words_mut()[w as usize] |= mask;
        }
        assert_eq!(dense, rebuilt);
    }
}
