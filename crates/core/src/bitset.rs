//! A packed `u64` bitset for cache-efficient incremental oracle state.
//!
//! Coverage-style oracles track "is user/RR-set `i` already served?"
//! flags. A `Vec<bool>` spends one byte (and one cache line per 64
//! flags) per entry and forces element-at-a-time gain counting; packing
//! 64 flags per word lets kernels AND a candidate's element mask against
//! the complement of the covered words and `popcount` whole words at a
//! time — the classic word-parallel coverage kernel.

use serde::{Deserialize, Serialize};

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// A fixed-capacity bitset backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedBitset {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitset {
    /// An all-zero bitset over `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (little-endian bit order within each word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// Packs an index list into sparse `(word, mask)` pairs, merged per
/// word and sorted by word index — the precomputed per-item masks the
/// word-at-a-time kernels scan.
pub fn pack_sparse(indices: &[u32]) -> Vec<(u32, u64)> {
    let mut pairs: Vec<(u32, u64)> = Vec::new();
    for &i in indices {
        let w = i / WORD_BITS as u32;
        let bit = 1u64 << (i % WORD_BITS as u32);
        match pairs.last_mut() {
            Some((lw, mask)) if *lw == w => *mask |= bit,
            _ => match pairs.iter_mut().find(|(pw, _)| *pw == w) {
                Some((_, mask)) => *mask |= bit,
                None => pairs.push((w, bit)),
            },
        }
    }
    pairs.sort_unstable_by_key(|&(w, _)| w);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_roundtrip() {
        let mut b = FixedBitset::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.words().len(), 3);
        for i in [0usize, 63, 64, 129] {
            assert!(!b.contains(i));
            b.insert(i);
            assert!(b.contains(i));
        }
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn pack_sparse_merges_words() {
        // Unsorted input with two indices in word 0 and one in word 2.
        let pairs = pack_sparse(&[130, 3, 0]);
        assert_eq!(pairs, vec![(0, 0b1001), (2, 1u64 << 2)]);
    }

    #[test]
    fn pack_sparse_equals_dense_bitmap() {
        let indices: Vec<u32> = (0..200).filter(|i| i % 7 == 0).collect();
        let pairs = pack_sparse(&indices);
        let mut dense = FixedBitset::zeros(200);
        for &i in &indices {
            dense.insert(i as usize);
        }
        let mut rebuilt = FixedBitset::zeros(200);
        for (w, mask) in pairs {
            rebuilt.words_mut()[w as usize] |= mask;
        }
        assert_eq!(dense, rebuilt);
    }
}
