//! SMSC baseline — submodular maximization under submodular cover
//! (Ohsaka & Matsuoka, UAI 2021), applicable to BSM only when `c = 2`.
//!
//! The paper compares against SMSC "by maximizing two submodular functions
//! `f_1` and `f_2` simultaneously"; the reference implementation is not
//! public, so this is a documented reconstruction (see DESIGN.md §5): a
//! Saturate-style bisection over a common fraction `β` of the two groups'
//! individually achievable optima. Level `β` is feasible when greedy
//! reaches
//!
//! ```text
//! (1/2) [ min{1, f_1(S)/(β·OPT'_1)} + min{1, f_2(S)/(β·OPT'_2)} ] = 1
//! ```
//!
//! within `k` items, where `OPT'_i` is the greedy estimate of
//! `max_{|S|=k} f_i(S)`. The output is the witness of the largest
//! feasible `β` — a single, `τ`-independent solution that balances the
//! two groups, exactly the flat reference curve of the paper's figures.

use crate::aggregate::{GroupMeanUtility, TruncatedMean};
use crate::metrics::evaluate;
use crate::system::UtilitySystem;

use super::greedy::{greedy, GreedyConfig, GreedyVariant};
use super::BsmOutcome;

/// Configuration for [`smsc`].
#[derive(Clone, Debug)]
pub struct SmscConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Relative bisection tolerance on `β`.
    pub tolerance: f64,
    /// Hard cap on bisection rounds.
    pub max_rounds: usize,
    /// Greedy evaluation strategy.
    pub variant: GreedyVariant,
}

impl SmscConfig {
    /// Defaults matching the experiment harness.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            tolerance: 1e-3,
            max_rounds: 40,
            variant: GreedyVariant::Lazy,
        }
    }
}

/// Runs the SMSC baseline.
///
/// # Panics
/// Panics if the system does not have exactly two groups — the paper
/// evaluates SMSC only for `c = 2` ("it does not provide any valid
/// solution when `c > 2`").
pub fn smsc<S: UtilitySystem>(system: &S, cfg: &SmscConfig) -> BsmOutcome {
    let sizes = system.group_sizes().to_vec();
    assert_eq!(
        sizes.len(),
        2,
        "SMSC is defined for exactly two groups (got {})",
        sizes.len()
    );
    let mut oracle_calls = 0u64;

    // Per-group achievable optima OPT'_i by greedy on each f_i alone.
    let mut opts = [0.0f64; 2];
    for i in 0..2 {
        let fi = GroupMeanUtility::new(i, sizes[i]);
        let run = greedy(
            system,
            &fi,
            &GreedyConfig {
                variant: cfg.variant.clone(),
                ..GreedyConfig::lazy(cfg.k)
            },
        );
        oracle_calls += run.oracle_calls;
        opts[i] = run.value;
    }

    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut best: Option<Vec<_>> = None;
    let mut rounds = 0usize;
    while rounds < cfg.max_rounds && (hi - lo) > cfg.tolerance {
        rounds += 1;
        let beta = 0.5 * (lo + hi);
        let thresholds = [beta * opts[0], beta * opts[1]];
        let panel = TruncatedMean::per_group(&sizes, &thresholds);
        let run = greedy(
            system,
            &panel,
            &GreedyConfig::cover_with(1.0, cfg.k, cfg.variant.clone()),
        );
        oracle_calls += run.oracle_calls;
        if run.reached_target {
            lo = beta;
            best = Some(run.items);
        } else {
            hi = beta;
        }
    }

    let (items, fell_back) = match best {
        Some(items) => (items, false),
        None => (Vec::new(), true),
    };
    let eval = evaluate(system, &items);
    BsmOutcome {
        items,
        eval,
        opt_f_estimate: 0.0,
        opt_g_estimate: 0.0,
        fell_back,
        oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn smsc_balances_figure1_groups() {
        let sys = toy::figure1();
        let out = smsc(&sys, &SmscConfig::new(2));
        assert!(out.items.len() <= 2);
        // Both groups must be served at a positive level.
        assert!(out.eval.g > 0.0);
    }

    #[test]
    fn smsc_is_tau_independent_by_construction() {
        // Trivially true (no τ in the API); assert determinism instead.
        let sys = toy::random_coverage(20, 60, 2, 0.12, 4);
        let a = smsc(&sys, &SmscConfig::new(4));
        let b = smsc(&sys, &SmscConfig::new(4));
        assert_eq!(a.items, b.items);
    }

    #[test]
    #[should_panic(expected = "exactly two groups")]
    fn smsc_rejects_more_than_two_groups() {
        let sys = toy::random_coverage(10, 30, 3, 0.2, 1);
        let _ = smsc(&sys, &SmscConfig::new(2));
    }

    #[test]
    fn smsc_fairness_is_competitive_with_saturate() {
        use crate::algorithms::saturate::{saturate, SaturateConfig};
        let sys = toy::random_coverage(25, 80, 2, 0.1, 8);
        let out = smsc(&sys, &SmscConfig::new(5));
        let sat = saturate(&sys, &SaturateConfig::new(5).approximate_only());
        // SMSC balances groups relative to their own optima, so its g is
        // in the same ballpark as Saturate's (not necessarily equal).
        assert!(out.eval.g >= 0.25 * sat.opt_g_estimate);
    }
}
