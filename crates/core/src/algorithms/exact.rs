//! Exact BSM solvers: brute-force enumeration and submodular
//! branch-and-bound (**BSM-Optimal** in the experiments).
//!
//! The paper obtains optima on small MC/FL instances via ILP (Gurobi,
//! Appendix A); we provide two self-contained exact routes:
//!
//! 1. [`brute_force_bsm`] — full `C(n,k)` enumeration, the ground truth
//!    for everything else (tiny instances only).
//! 2. [`branch_and_bound_bsm`] — DFS over include/exclude decisions with
//!    submodular upper bounds: at a node with solution `S` and `r` slots
//!    left, `f` is bounded by `f(S)` plus the top-`r` singleton marginal
//!    gains (valid by submodularity and monotonicity), and `g`'s
//!    reachability by the per-group analogue. A greedy warm start makes
//!    the `f`-bound prune aggressively.
//!
//! The BSM pipeline solves two exact problems, mirroring Appendix A:
//! first `OPT_g = max_{|S|=k} g(S)`, then `max f(S)` subject to
//! `g(S) ≥ τ·OPT_g`. An independent ILP formulation (crate
//! `fair-submod-lp`) is cross-validated against these in the integration
//! tests.

use crate::aggregate::{MeanUtility, MinGroupUtility};
use crate::items::{for_each_subset, ItemId};
use crate::metrics::{evaluate, Evaluation};
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::{greedy, GreedyConfig};

/// Configuration for the exact solvers.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ`.
    pub tau: f64,
    /// Branch-and-bound node budget (an *include-node* is counted each
    /// time an item is added along the DFS). Exceeding it aborts with
    /// [`BsmOptimal::complete`] `= false`.
    pub node_limit: u64,
}

impl ExactConfig {
    /// Defaults: 5 million include-nodes.
    pub fn new(k: usize, tau: f64) -> Self {
        Self {
            k,
            tau,
            node_limit: 5_000_000,
        }
    }
}

/// Result of an exact BSM solve.
#[derive(Clone, Debug)]
pub struct BsmOptimal {
    /// Optimal (or best-found, if `!complete`) solution.
    pub items: Vec<ItemId>,
    /// Evaluation of `items`.
    pub eval: Evaluation,
    /// Exact `OPT_g` (optimal maximin value at cardinality `k`).
    pub opt_g: f64,
    /// Whether a feasible solution exists for the constraint
    /// `g(S) ≥ τ·OPT_g` (always true when `OPT_g` is exact: its argmax
    /// is feasible).
    pub feasible: bool,
    /// Whether the search ran to completion (false = node budget hit;
    /// the result is then only a lower bound).
    pub complete: bool,
    /// Include-nodes explored across both phases.
    pub nodes: u64,
}

/// Maximizes an aggregate exactly over all size-`k` subsets by brute
/// force. Returns `(best_items, best_value)`.
pub fn brute_force_max<S: UtilitySystem, A: crate::aggregate::Aggregate>(
    system: &S,
    aggregate: &A,
    k: usize,
) -> (Vec<ItemId>, f64) {
    let n = system.num_items();
    let k = k.min(n);
    let mut best_items = Vec::new();
    let mut best_value = f64::NEG_INFINITY;
    for_each_subset(n, k, |subset| {
        let mut st = SolutionState::new(system);
        st.insert_all(subset);
        let value = st.value(aggregate);
        if value > best_value + 1e-15 {
            best_value = value;
            best_items = subset.to_vec();
        }
        true
    });
    (best_items, best_value)
}

/// Brute-force BSM: exact `OPT_g`, then exact constrained `f`-maximum.
///
/// Only for tiny instances (`C(n,k)` subsets are enumerated twice).
pub fn brute_force_bsm<S: UtilitySystem>(system: &S, k: usize, tau: f64) -> BsmOptimal {
    let g = MinGroupUtility::new(system.group_sizes());
    let f = MeanUtility::new(system.num_users());
    let (_, opt_g) = brute_force_max(system, &g, k);
    let bound = tau * opt_g - 1e-9;

    let n = system.num_items();
    let mut best_items = Vec::new();
    let mut best_f = f64::NEG_INFINITY;
    for_each_subset(n, k.min(n), |subset| {
        let mut st = SolutionState::new(system);
        st.insert_all(subset);
        if st.value(&g) >= bound {
            let value = st.value(&f);
            if value > best_f + 1e-15 {
                best_f = value;
                best_items = subset.to_vec();
            }
        }
        true
    });
    let feasible = best_f > f64::NEG_INFINITY;
    let eval = evaluate(system, &best_items);
    BsmOptimal {
        items: best_items,
        eval,
        opt_g,
        feasible,
        complete: true,
        nodes: 0,
    }
}

/// What the branch-and-bound is maximizing.
enum Target {
    /// `f(S)` subject to `g(S) ≥ g_floor`.
    Utility { g_floor: f64 },
    /// `g(S)` (maximin), unconstrained.
    Fairness,
}

struct Search<'a, S: UtilitySystem> {
    _marker: std::marker::PhantomData<&'a S>,
    order: Vec<ItemId>,
    k: usize,
    inv_m: f64,
    inv_sizes: Vec<f64>,
    target: Target,
    best_value: f64,
    best_items: Vec<ItemId>,
    nodes: u64,
    node_limit: u64,
    aborted: bool,
}

impl<'a, S: UtilitySystem> Search<'a, S> {
    fn g_of(&self, sums: &[f64]) -> f64 {
        sums.iter()
            .zip(&self.inv_sizes)
            .map(|(&s, &w)| s * w)
            .fold(f64::INFINITY, f64::min)
    }

    fn f_of(&self, sums: &[f64]) -> f64 {
        sums.iter().sum::<f64>() * self.inv_m
    }

    /// DFS from `start` over `self.order`, with `state` holding the
    /// current partial solution and `gains[i]` the per-group gain vectors
    /// of all candidates (refreshed after every include).
    fn dfs(&mut self, state: &mut SolutionState<'a, S>, start: usize, gains: &[Vec<f64>]) {
        if self.aborted {
            return;
        }
        let r = self.k - state.len();
        if r == 0 {
            self.offer(state);
            return;
        }
        let n_rem = self.order.len() - start;
        if n_rem < r {
            return; // cannot reach |S| = k
        }

        // Upper bounds from the current (valid, possibly stale) gains.
        if !self.bounds_admit(state, start, r, gains) {
            return;
        }

        for i in start..self.order.len() {
            if self.order.len() - i < r {
                break;
            }
            if self.aborted {
                return;
            }
            let v = self.order[i];
            // Include v.
            self.nodes += 1;
            if self.nodes > self.node_limit {
                self.aborted = true;
                return;
            }
            let mut child = state.clone();
            child.insert(v);
            // Refresh gains for the child's deeper candidates.
            let child_gains: Vec<Vec<f64>> = self
                .order
                .iter()
                .enumerate()
                .map(|(j, &u)| {
                    if j > i {
                        let mut out = vec![0.0; child.group_sums().len()];
                        child.gains_into(u, &mut out);
                        out
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            if self.k == child.len() {
                self.offer(&child);
            } else if self.bounds_admit(&child, i + 1, self.k - child.len(), &child_gains) {
                self.dfs(&mut child, i + 1, &child_gains);
            }
            // Exclude v: continue the loop (same state, same gains).
            // Re-check the bound without v in the pool.
        }
    }

    /// Checks the submodular upper bounds at a node; returns false if the
    /// node can be pruned.
    fn bounds_admit(
        &self,
        state: &SolutionState<'a, S>,
        start: usize,
        r: usize,
        gains: &[Vec<f64>],
    ) -> bool {
        let sums = state.group_sums();
        let c = sums.len();

        // Top-r total gains for the f bound.
        let mut totals: Vec<f64> = (start..self.order.len())
            .map(|j| gains[j].iter().sum::<f64>())
            .collect();
        totals.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        let f_ub = self.f_of(sums) + totals.iter().take(r).sum::<f64>() * self.inv_m;

        // Per-group top-r gains for the g bound.
        let mut g_ub = f64::INFINITY;
        let mut buf: Vec<f64> = Vec::with_capacity(self.order.len() - start);
        for gi in 0..c {
            buf.clear();
            buf.extend((start..self.order.len()).map(|j| gains[j][gi]));
            buf.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
            let reach = sums[gi] + buf.iter().take(r).sum::<f64>();
            g_ub = g_ub.min(reach * self.inv_sizes[gi]);
        }

        match &self.target {
            Target::Utility { g_floor } => {
                if g_ub < *g_floor - 1e-9 {
                    return false; // constraint unreachable
                }
                f_ub > self.best_value + 1e-12
            }
            Target::Fairness => g_ub > self.best_value + 1e-12,
        }
    }

    fn offer(&mut self, state: &SolutionState<'a, S>) {
        let sums = state.group_sums();
        match &self.target {
            Target::Utility { g_floor } => {
                if self.g_of(sums) >= *g_floor - 1e-9 {
                    let value = self.f_of(sums);
                    if value > self.best_value + 1e-12 {
                        self.best_value = value;
                        self.best_items = state.items().to_vec();
                    }
                }
            }
            Target::Fairness => {
                let value = self.g_of(sums);
                if value > self.best_value + 1e-12 {
                    self.best_value = value;
                    self.best_items = state.items().to_vec();
                }
            }
        }
    }
}

fn run_search<S: UtilitySystem>(
    system: &S,
    k: usize,
    target: Target,
    warm_value: f64,
    warm_items: Vec<ItemId>,
    node_limit: u64,
) -> (Vec<ItemId>, f64, u64, bool) {
    // Order items by singleton total gain, descending — greedy-like order
    // tightens the bounds early.
    let c = system.num_groups();
    let mut state = SolutionState::new(system);
    let mut singles: Vec<(f64, ItemId)> = (0..system.num_items() as ItemId)
        .map(|v| {
            let mut out = vec![0.0; c];
            state.gains_into(v, &mut out);
            (out.iter().sum::<f64>(), v)
        })
        .collect();
    singles.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let order: Vec<ItemId> = singles.into_iter().map(|(_, v)| v).collect();

    let root_gains: Vec<Vec<f64>> = order
        .iter()
        .map(|&v| {
            let mut out = vec![0.0; c];
            state.gains_into(v, &mut out);
            out
        })
        .collect();

    let mut search = Search {
        _marker: std::marker::PhantomData,
        order,
        k,
        inv_m: 1.0 / system.num_users() as f64,
        inv_sizes: system
            .group_sizes()
            .iter()
            .map(|&s| 1.0 / s as f64)
            .collect(),
        target,
        best_value: warm_value,
        best_items: warm_items,
        nodes: 0,
        node_limit,
        aborted: false,
    };
    let mut root = SolutionState::new(system);
    search.dfs(&mut root, 0, &root_gains);
    (
        search.best_items,
        search.best_value,
        search.nodes,
        !search.aborted,
    )
}

/// Exact BSM via submodular branch-and-bound (`BSM-Optimal`).
///
/// Phase 1 computes `OPT_g` exactly; phase 2 maximizes `f` under
/// `g ≥ τ·OPT_g`. Warm starts come from Saturate-like greedy runs so the
/// bounds prune from the first node.
pub fn branch_and_bound_bsm<S: UtilitySystem>(system: &S, cfg: &ExactConfig) -> BsmOptimal {
    let k = cfg.k.min(system.num_items());
    let f = MeanUtility::new(system.num_users());
    let g = MinGroupUtility::new(system.group_sizes());

    // Phase 1: OPT_g. Warm start from Saturate (approximate path, cheap).
    let sat = super::saturate::saturate(
        system,
        &super::saturate::SaturateConfig::new(k).approximate_only(),
    );
    let sat_eval = evaluate(system, &sat.items);
    let warm_g_items = if sat.items.len() == k {
        sat.items.clone()
    } else {
        Vec::new()
    };
    let warm_g = if sat.items.len() == k {
        sat_eval.g - 1e-12
    } else {
        f64::NEG_INFINITY
    };
    let (g_items, opt_g, nodes_g, complete_g) = run_search(
        system,
        k,
        Target::Fairness,
        warm_g,
        warm_g_items,
        cfg.node_limit,
    );
    let opt_g = opt_g.max(0.0);

    // Phase 2: max f subject to g ≥ τ·OPT_g.
    let g_floor = cfg.tau * opt_g;
    // Warm start: the greedy-for-f solution if feasible, else the OPT_g set.
    let greedy_f = greedy(system, &f, &GreedyConfig::lazy(k));
    let greedy_eval = evaluate(system, &greedy_f.items);
    let (warm_items, warm_f) = if greedy_f.items.len() == k && greedy_eval.g >= g_floor - 1e-9 {
        (greedy_f.items.clone(), greedy_eval.f - 1e-12)
    } else if g_items.len() == k {
        let e = evaluate(system, &g_items);
        (g_items.clone(), e.f - 1e-12)
    } else {
        (Vec::new(), f64::NEG_INFINITY)
    };
    let (items, best_f, nodes_f, complete_f) = run_search(
        system,
        k,
        Target::Utility { g_floor },
        warm_f,
        warm_items,
        cfg.node_limit,
    );
    let feasible = best_f > f64::NEG_INFINITY && !items.is_empty();
    let eval = evaluate(system, &items);
    let _ = g;
    BsmOptimal {
        items,
        eval,
        opt_g,
        feasible,
        complete: complete_g && complete_f,
        nodes: nodes_g + nodes_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn figure1_bsm_optimal_matches_example() {
        // Example 3.1: τ ∈ (0, 0.6] → S13 = {v1, v3}; τ ∈ (0.6, 1] → S14.
        let sys = toy::figure1();
        let low = branch_and_bound_bsm(&sys, &ExactConfig::new(2, 0.3));
        assert_eq!(low.eval.size, 2);
        let mut items = low.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert!((low.opt_g - 5.0 / 9.0).abs() < 1e-9);

        let high = branch_and_bound_bsm(&sys, &ExactConfig::new(2, 0.8));
        let mut items = high.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);

        let free = branch_and_bound_bsm(&sys, &ExactConfig::new(2, 0.0));
        let mut items = free.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1]);
        assert!((free.eval.f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn branch_and_bound_agrees_with_brute_force() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(12, 40, 3, 0.15, seed);
            for tau in [0.0, 0.4, 0.8, 1.0] {
                let bf = brute_force_bsm(&sys, 4, tau);
                let bb = branch_and_bound_bsm(&sys, &ExactConfig::new(4, tau));
                assert!(bb.complete);
                assert!(
                    (bf.opt_g - bb.opt_g).abs() < 1e-9,
                    "seed {seed} tau {tau}: OPT_g {} vs {}",
                    bf.opt_g,
                    bb.opt_g
                );
                assert!(
                    (bf.eval.f - bb.eval.f).abs() < 1e-9,
                    "seed {seed} tau {tau}: f {} vs {}",
                    bf.eval.f,
                    bb.eval.f
                );
            }
        }
    }

    #[test]
    fn optimum_dominates_greedy_algorithms() {
        use crate::algorithms::bsm_saturate::{bsm_saturate, BsmSaturateConfig};
        use crate::algorithms::tsgreedy::{bsm_tsgreedy, TsGreedyConfig};
        let sys = toy::random_coverage(14, 50, 2, 0.12, 9);
        let tau = 0.6;
        let opt = branch_and_bound_bsm(&sys, &ExactConfig::new(4, tau));
        assert!(opt.complete && opt.feasible);
        let ts = bsm_tsgreedy(&sys, &TsGreedyConfig::new(4, tau));
        let sat = bsm_saturate(&sys, &BsmSaturateConfig::new(4, tau));
        // Any approximate solution that satisfies the *true* constraint
        // cannot beat the optimum.
        if ts.eval.g >= tau * opt.opt_g - 1e-9 {
            assert!(ts.eval.f <= opt.eval.f + 1e-9);
        }
        if sat.eval.g >= tau * opt.opt_g - 1e-9 {
            assert!(sat.eval.f <= opt.eval.f + 1e-9);
        }
    }

    #[test]
    fn node_limit_aborts_gracefully() {
        let sys = toy::random_coverage(20, 60, 2, 0.1, 4);
        let mut cfg = ExactConfig::new(6, 0.5);
        cfg.node_limit = 3;
        let out = branch_and_bound_bsm(&sys, &cfg);
        assert!(!out.complete);
        // Warm starts guarantee a usable solution even on abort.
        assert_eq!(out.items.len(), 6);
    }
}
