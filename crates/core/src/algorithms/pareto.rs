//! Utility–fairness Pareto frontier extraction.
//!
//! The BSM framework answers one `(k, τ)` query at a time; practitioners
//! usually want the whole trade-off curve (the paper's Figures 3/5/7 are
//! exactly that). This module sweeps τ over a grid with a chosen BSM
//! solver, collects `(f, g)` outcomes, extracts the non-dominated
//! frontier, and computes the dominated-area (hypervolume) indicator so
//! that solvers can be compared by a single scalar.

use crate::items::ItemId;
use crate::system::UtilitySystem;

use super::bsm_saturate::{bsm_saturate, BsmSaturateConfig};
use super::tsgreedy::{bsm_tsgreedy, TsGreedyConfig};

/// Which BSM solver drives the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierSolver {
    /// BSM-TSGreedy (Algorithm 1) — faster.
    TsGreedy,
    /// BSM-Saturate (Algorithm 2) — better trade-offs.
    BsmSaturate,
}

/// Configuration for [`pareto_frontier`].
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// τ grid (deduplicated, clamped to `\[0, 1\]`).
    pub taus: Vec<f64>,
    /// Solver choice.
    pub solver: FrontierSolver,
}

impl FrontierConfig {
    /// Default grid τ ∈ {0.0, 0.1, …, 1.0} with BSM-Saturate.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            taus: (0..=10).map(|i| i as f64 / 10.0).collect(),
            solver: FrontierSolver::BsmSaturate,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Debug)]
pub struct FrontierPoint {
    /// τ that produced this point.
    pub tau: f64,
    /// Utility value.
    pub f: f64,
    /// Fairness value.
    pub g: f64,
    /// The solution.
    pub items: Vec<ItemId>,
    /// Whether the point survives Pareto filtering.
    pub on_frontier: bool,
}

/// Result of [`pareto_frontier`].
#[derive(Clone, Debug)]
pub struct Frontier {
    /// All swept points, in τ order.
    pub points: Vec<FrontierPoint>,
    /// Dominated-area indicator (w.r.t. the origin reference point):
    /// the area of `∪_{p on frontier} [0, f_p] × [0, g_p]`.
    pub hypervolume: f64,
}

impl Frontier {
    /// The non-dominated points, sorted by ascending `g`.
    pub fn frontier_points(&self) -> Vec<&FrontierPoint> {
        let mut pts: Vec<&FrontierPoint> = self.points.iter().filter(|p| p.on_frontier).collect();
        pts.sort_by(|a, b| a.g.partial_cmp(&b.g).unwrap());
        pts
    }
}

/// Sweeps τ and extracts the utility–fairness Pareto frontier.
pub fn pareto_frontier<S: UtilitySystem>(system: &S, cfg: &FrontierConfig) -> Frontier {
    let mut taus: Vec<f64> = cfg.taus.iter().map(|t| t.clamp(0.0, 1.0)).collect();
    taus.sort_by(|a, b| a.partial_cmp(b).unwrap());
    taus.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut points: Vec<FrontierPoint> = taus
        .into_iter()
        .map(|tau| {
            let (items, f, g) = match cfg.solver {
                FrontierSolver::TsGreedy => {
                    let out = bsm_tsgreedy(system, &TsGreedyConfig::new(cfg.k, tau));
                    (out.items, out.eval.f, out.eval.g)
                }
                FrontierSolver::BsmSaturate => {
                    let out = bsm_saturate(system, &BsmSaturateConfig::new(cfg.k, tau));
                    (out.items, out.eval.f, out.eval.g)
                }
            };
            FrontierPoint {
                tau,
                f,
                g,
                items,
                on_frontier: true,
            }
        })
        .collect();

    let flags = pareto_filter(&points.iter().map(|p| (p.f, p.g)).collect::<Vec<_>>());
    for (p, on) in points.iter_mut().zip(flags) {
        p.on_frontier = on;
    }

    let hypervolume = hypervolume(
        &points
            .iter()
            .filter(|p| p.on_frontier)
            .map(|p| (p.f, p.g))
            .collect::<Vec<_>>(),
    );
    Frontier {
        points,
        hypervolume,
    }
}

/// Marks the non-dominated points of a set of `(f, g)` pairs: entry `i`
/// is `true` iff no other point is ≥ in both coordinates and > in one.
pub fn pareto_filter(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(fi, gi))| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.0 >= fi - 1e-12
                    && q.1 >= gi - 1e-12
                    && (q.0 > fi + 1e-12 || q.1 > gi + 1e-12)
            })
        })
        .collect()
}

/// Dominated-area indicator of a frontier of `(f, g)` pairs w.r.t. the
/// origin: the area of `∪_p [0, f_p] × [0, g_p]`, computed as a
/// staircase integral.
pub fn hypervolume(points: &[(f64, f64)]) -> f64 {
    let mut frontier: Vec<(f64, f64)> = points.iter().map(|&(f, g)| (g, f)).collect();
    frontier.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut volume = 0.0;
    let mut prev_g = 0.0;
    // Descending-f staircase from left (low g, high f) to right; the
    // block before the first point uses the overall max f
    // (f_at_or_right(0)) via prev_g = 0.
    for &(g, _) in &frontier {
        volume += (g - prev_g).max(0.0) * f_at_or_right(&frontier, g);
        prev_g = g;
    }
    volume
}

/// The best `f` among frontier points with `g ≥ g0` (staircase height).
fn f_at_or_right(frontier: &[(f64, f64)], g0: f64) -> f64 {
    frontier
        .iter()
        .filter(|&&(g, _)| g >= g0 - 1e-12)
        .map(|&(_, f)| f)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn frontier_on_figure1_has_the_three_regimes() {
        let sys = toy::figure1();
        let cfg = FrontierConfig {
            k: 2,
            taus: vec![0.0, 0.3, 0.8],
            solver: FrontierSolver::BsmSaturate,
        };
        let frontier = pareto_frontier(&sys, &cfg);
        assert_eq!(frontier.points.len(), 3);
        // Example 3.1's optimal regimes give three distinct trade-offs:
        // (0.75, 0), (2/3, 1/3), (7/12, 5/9) — all non-dominated.
        let on: Vec<_> = frontier.frontier_points();
        assert!(on.len() >= 2, "frontier collapsed: {on:?}");
        assert!(frontier.hypervolume > 0.0);
    }

    #[test]
    fn dominated_points_are_filtered() {
        let sys = toy::random_coverage(20, 60, 2, 0.15, 3);
        let frontier = pareto_frontier(&sys, &FrontierConfig::new(4));
        // Frontier must be an antichain: no point dominates another.
        let pts = frontier.frontier_points();
        for a in &pts {
            for b in &pts {
                let dominates = a.f > b.f + 1e-12 && a.g > b.g + 1e-12;
                assert!(!dominates, "frontier contains dominated points");
            }
        }
    }

    #[test]
    fn frontier_f_decreases_as_g_increases() {
        let sys = toy::random_coverage(25, 80, 2, 0.1, 5);
        let frontier = pareto_frontier(&sys, &FrontierConfig::new(5));
        let pts = frontier.frontier_points();
        for w in pts.windows(2) {
            assert!(w[0].g <= w[1].g + 1e-12);
            assert!(w[0].f + 1e-9 >= w[1].f, "staircase must fall in f");
        }
    }

    #[test]
    fn hypervolume_bounded_by_anchor_product() {
        let sys = toy::random_coverage(25, 80, 2, 0.1, 7);
        let frontier = pareto_frontier(&sys, &FrontierConfig::new(5));
        let max_f = frontier.points.iter().map(|p| p.f).fold(0.0, f64::max);
        let max_g = frontier.points.iter().map(|p| p.g).fold(0.0, f64::max);
        assert!(frontier.hypervolume <= max_f * max_g + 1e-9);
        assert!(frontier.hypervolume >= 0.0);
    }

    #[test]
    fn tsgreedy_solver_works_too() {
        let sys = toy::figure1();
        let cfg = FrontierConfig {
            k: 2,
            taus: vec![0.1, 0.9],
            solver: FrontierSolver::TsGreedy,
        };
        let frontier = pareto_frontier(&sys, &cfg);
        assert_eq!(frontier.points.len(), 2);
    }
}
